"""Streaming E-join inside a classic operator pipeline.

Run with:  python examples/streaming_pipeline.py

Places the context-enhanced join where it belongs in an analytical engine:
as a batch-at-a-time physical operator composed with scans, filters, sorts
and aggregation — the "extended relational operators + algebra" picture of
the paper's Figure 4.  Also demonstrates plan-level cost estimation and the
IVF-Flat index as an alternative access path.
"""

from __future__ import annotations

from repro import HashingEmbedder, TopKCondition
from repro.core import index_join
from repro.index import IVFFlatIndex
from repro.relational import Col
from repro.relational.operators import (
    AggSpec,
    Aggregate,
    EJoinOperator,
    Filter,
    Limit,
    Scan,
    Sort,
)
from repro.workloads import generate_dirty_strings


def main() -> None:
    workload = generate_dirty_strings(n_feed=400, seed=33)
    model = HashingEmbedder(dim=48, seed=33)

    # A full physical pipeline: scan -> relational filter -> streaming
    # E-join -> sort by similarity -> limit.
    pipeline = Limit(
        Sort(
            EJoinOperator(
                Filter(Scan(workload.feed, batch_size=64), Col("views") > 1000),
                Scan(workload.catalog),
                "text",
                "word",
                model,
                TopKCondition(1),
            ),
            "similarity",
            descending=True,
        ),
        10,
    )
    print("physical plan:")
    print(pipeline.explain())

    out = pipeline.execute()
    print("\ntop-10 most confident integrations:")
    for row in out.to_dicts():
        print(f"  {row['text']:>16} -> {row['word']:<14} "
              f"sim={row['similarity']:.3f} views={row['views']}")

    # Aggregate over the joined stream: how many feed rows map onto each
    # catalog word?
    counts = Aggregate(
        EJoinOperator(
            Scan(workload.feed, batch_size=64),
            Scan(workload.catalog),
            "text",
            "word",
            model,
            TopKCondition(1),
        ),
        ["word"],
        [AggSpec("count", None, "n"), AggSpec("mean", "similarity", "avg_sim")],
    ).execute()
    top = counts.sort_by("n", descending=True).head(5)
    print("\nmost-referenced catalog words:")
    for row in top.to_dicts():
        print(f"  {row['word']:<14} n={row['n']:<4} avg_sim={row['avg_sim']:.2f}")

    # The same join through an IVF-Flat index (the coarse-quantizer cousin
    # of HNSW): cheap to build, exhaustive within probed clusters.
    words = workload.catalog.array("word").tolist()
    index = IVFFlatIndex(model.dim, nlist=8, nprobe=4, seed=33)
    index.add(model.embed_batch(words))
    probes = model.embed_batch(workload.feed.array("text").tolist())
    via_index = index_join(probes, index, TopKCondition(1))
    print(f"\nIVF-Flat index join: {len(via_index)} matches, "
          f"{index.stats.distance_computations} distance computations "
          f"(vs {len(probes) * len(words)} for a full scan)")


if __name__ == "__main__":
    main()
