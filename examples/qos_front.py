"""Asyncio QoS serving: deadlines, priorities, degraded responses.

Many coroutine clients share one engine through ``AsyncQueryService``:
idle connections cost a heap entry each (not a thread), a bounded
dispatcher pool drains them in priority order, and each query carries a
deadline and a recall floor.  Under pressure the service degrades
deadline-pressed queries to a quantized prescreen (explicitly flagged)
or sheds provably-unmeetable ones with ``DeadlineExceededError`` —
everything else comes back bit-identical to serial execution.
"""

from __future__ import annotations

import asyncio

import numpy as np

import repro
from repro.errors import DeadlineExceededError
from repro.relational.column import Column
from repro.service import AsyncQueryService
from repro.workloads import unit_vectors

N_ROWS, DIM = 20_000, 64
N_CLIENTS, QUERIES_PER_CLIENT = 32, 4


def build_engine() -> repro.Engine:
    vectors = unit_vectors(N_ROWS, DIM, stream="qos_example/corpus")
    table = repro.Table.from_columns(
        [
            Column(repro.Field("doc_id", repro.DataType.INT64), np.arange(N_ROWS)),
            Column(repro.Field("emb", repro.DataType.TENSOR, dim=DIM), vectors),
        ]
    )
    catalog = repro.Catalog()
    catalog.register("docs", table)
    engine = repro.Engine(catalog)
    engine.models.register("encoder", repro.HashingEmbedder(dim=DIM))
    return engine


async def client(engine, front, worker: int, outcomes: dict) -> None:
    queries = unit_vectors(QUERIES_PER_CLIENT, DIM, stream=f"qos_example/{worker}")
    for qvec in queries:
        query = (
            engine.query("docs")
            .esimilar("emb", qvec, model="encoder", top_k=5)
            .select(["doc_id", "similarity"])
        )
        try:
            response = await front.submit(
                query,
                deadline_s=0.25,
                priority=worker % 3,  # a few service classes
                min_recall=0.9,  # allows int8/PQ degradation under pressure
            )
        except DeadlineExceededError:
            outcomes["shed"] += 1
            continue
        if response.degraded:
            outcomes["degraded"] += 1  # flagged, never silent
        elif response.deadline_met:
            outcomes["ok"] += 1
        else:
            outcomes["late"] += 1


async def serve() -> dict:
    engine = build_engine()
    # Few execution slots relative to the client count: the front's
    # queue, not a thread per connection, absorbs the difference.
    service = engine.serve(max_inflight=4)
    outcomes = {"ok": 0, "degraded": 0, "late": 0, "shed": 0}
    async with AsyncQueryService(service, workers=4) as front:
        await asyncio.gather(
            *(client(engine, front, w, outcomes) for w in range(N_CLIENTS))
        )
        print(f"front stats: {front.stats.snapshot()}")
    # The async front is drained; now drain the service itself.
    service.shutdown(drain=True, timeout_s=30.0)
    return outcomes


def main() -> None:
    outcomes = asyncio.run(serve())
    total = sum(outcomes.values())
    print(f"{N_CLIENTS} coroutine clients, {total} queries: {outcomes}")
    assert total == N_CLIENTS * QUERIES_PER_CLIENT


if __name__ == "__main__":
    main()
