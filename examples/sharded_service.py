"""Sharded query service: the coalesced scan fanned out past the GIL.

Demonstrates `shard_procs`: the service publishes the scan-ready column
representations into shared memory once, keeps a pool of persistent
worker processes (one contiguous row range each), and fans every
fan-out-worthy coalesced scan across them.  Workers return bounded
candidate heaps; the front door merges them under a total order and
exact-rescores the merged superset, so sharded results stay
bit-identical to one-at-a-time serial execution on the bare engine.
At the end the service shuts down gracefully and the example asserts
that every shared-memory segment the pool published has been unlinked.
"""

from __future__ import annotations

import json
import threading

import numpy as np

import repro
from repro.relational.column import Column
from repro.shard import leaked_segments
from repro.workloads import unit_vectors

# Large enough that the cost model fans single-query scans across two
# worker processes under the production row floor — no knobs pinned.
N_ROWS, DIM = 20_000, 64
N_CLIENTS, QUERIES_PER_CLIENT = 8, 6
SHARD_PROCS = 2


def build_engine() -> repro.Engine:
    vectors = unit_vectors(N_ROWS, DIM, stream="example/corpus")
    table = repro.Table.from_columns(
        [
            Column(repro.Field("doc_id", repro.DataType.INT64), np.arange(N_ROWS)),
            Column(repro.Field("emb", repro.DataType.TENSOR, dim=DIM), vectors),
        ]
    )
    catalog = repro.Catalog()
    catalog.register("docs", table)
    engine = repro.Engine(catalog)
    engine.models.register("encoder", repro.HashingEmbedder(dim=DIM))
    return engine


def main() -> None:
    engine = build_engine()
    # shard_procs is all it takes; REPRO_SHARD_PROCS=2 does the same.
    service = engine.serve(max_inflight=16, coalesce=True, shard_procs=SHARD_PROCS)
    segment_prefix = service.shard_pool.segment_prefix

    hot = unit_vectors(4, DIM, stream="example/hot")

    def client(worker: int, results: list) -> None:
        # One deterministic stream per worker: numpy Generators are not
        # thread-safe, so threads must not share one.
        rng = repro.rng(f"example/traffic/{worker}")
        with service.session(f"user-{worker}") as session:
            for _ in range(QUERIES_PER_CLIENT):
                qvec = hot[int(rng.integers(len(hot)))]
                out = session.execute(
                    session.query("docs")
                    .esimilar("emb", qvec, model="encoder", top_k=5)
                    .select(["doc_id", "similarity"])
                )
                results.append(out)

    results: list = []
    threads = [
        threading.Thread(target=client, args=(w, results)) for w in range(N_CLIENTS)
    ]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        print(f"served {len(results)} queries from {N_CLIENTS} concurrent clients")
        snap = service.stats_snapshot()
        print("\nshard pool counters:")
        print(json.dumps(snap["shard"], indent=2))
        assert snap["shard"]["scans"] >= 1, "no scan fanned out to the workers"

        health = service.health().as_dict()
        print("\nworker health:")
        print(json.dumps(health["shard"], indent=2))
        assert health["shard"]["alive"] == SHARD_PROCS

        # The service contract survives sharding: identical to serial.
        serial = (
            engine.query("docs")
            .esimilar("emb", hot[0], model="encoder", top_k=5)
            .select(["doc_id", "similarity"])
            .execute()
        )
        via_service = service.submit(
            engine.query("docs")
            .esimilar("emb", hot[0], model="encoder", top_k=5)
            .select(["doc_id", "similarity"])
        )
        assert np.array_equal(serial.array("doc_id"), via_service.array("doc_id"))
        assert np.array_equal(
            serial.array("similarity"), via_service.array("similarity")
        )
        print("\nsharded results are bit-identical to serial execution ✓")
    finally:
        # Graceful shutdown closes the pool, which unlinks every published
        # segment; the spawn-shared resource_tracker is only the backstop
        # for crashed owners, so a clean exit must leave nothing behind.
        drained = service.shutdown(drain=True, timeout_s=30.0)
        print(f"service shut down (drained={drained})")
        leaked = leaked_segments(segment_prefix)
        assert leaked == [], f"leaked shared-memory segments: {leaked}"
        print("no shared-memory segments leaked ✓")


# spawn-safe: shard workers re-import this module, so nothing above may
# run at import time in a child process.
if __name__ == "__main__":
    main()
