"""Quickstart: a context-enhanced similarity join in five steps.

Run with:  python examples/quickstart.py

Joins a feed of dirty strings (misspellings, plurals) against a clean
catalog using the E-join — no manual cleaning rules, just an embedding
model and a join condition, exactly the declarative contract of the paper.
"""

from __future__ import annotations

from repro import HashingEmbedder, TopKCondition, ejoin
from repro.workloads import generate_dirty_strings


def main() -> None:
    # 1. Generate a dirty feed + clean catalog with known ground truth.
    workload = generate_dirty_strings(n_feed=200, seed=42)
    feed_texts = workload.feed.array("text").tolist()
    catalog_words = workload.catalog.array("word").tolist()
    print(f"feed: {len(feed_texts)} dirty strings, "
          f"catalog: {len(catalog_words)} clean words")
    print("sample feed strings:", feed_texts[:8])

    # 2. Pick an embedding model (mu). The hashing embedder needs no
    #    training and handles misspellings via shared character n-grams.
    model = HashingEmbedder(dim=64)

    # 3. Run the E-join: each feed string matches its most similar word.
    #    The operator embeds each input ONCE (prefetch optimization) and
    #    runs the scan-based tensor formulation.
    result = ejoin(
        feed_texts,
        catalog_words,
        TopKCondition(1),
        model=model,
        strategy="tensor",
    )

    # 4. Inspect: the result is a compact set of offset pairs; materialize
    #    them lazily against the original tables.
    table = result.materialize(workload.feed, workload.catalog)
    print("\nsample matches (text -> word, similarity):")
    for row in table.head(10).to_dicts():
        print(f"  {row['text']:>14} -> {row['word']:<14} {row['similarity']:.3f}")

    # 5. Score against ground truth.
    best = dict(zip(result.left_ids.tolist(), result.right_ids.tolist()))
    hits = sum(1 for f, src in workload.truth.items() if best.get(f) == src)
    print(f"\nrecovered {hits}/{len(workload.truth)} ground-truth mappings")
    print(f"model calls: {model.usage.calls} "
          f"(= {len(set(feed_texts))} unique feed strings "
          f"+ {len(catalog_words)} catalog words — linear, not quadratic)")


if __name__ == "__main__":
    main()
