"""Online data cleaning and integration (paper Section II-A-2).

Run with:  python examples/online_data_cleaning.py

The scenario from the paper's motivation: a social-media-like feed with
dates and view counts arrives dirty (misspellings, plurals, synonyms).
Instead of cleaning ahead of time, the analyst writes one declarative
query: filter by date, semantically join against the product catalog, and
report — the engine handles prefetching, pushdown, and physical strategy.

This example uses the *trained* FastText-style model so synonyms
(bbq ~ barbecue) match too, which pure subword hashing cannot do.
"""

from __future__ import annotations

from datetime import date

from repro import Engine, FastTextModel
from repro.embedding import generate_corpus
from repro.relational import Catalog, Col
from repro.workloads import generate_dirty_strings


def main() -> None:
    # --- data ----------------------------------------------------------
    workload = generate_dirty_strings(
        n_feed=400, misspelling_rate=0.25, plural_rate=0.2, synonym_rate=0.25,
        seed=7,
    )
    catalog = Catalog()
    catalog.register("catalog_words", workload.catalog)
    catalog.register("feed", workload.feed)

    # --- model: train a subword skip-gram on a topical corpus ----------
    corpus = generate_corpus(n_sentences=2000, sentence_length=(5, 9), seed=7)
    model = FastTextModel(dim=48, window=3, negatives=4, seed=7)
    print("training subword model on synthetic corpus ...")
    model.fit(corpus.sentences, epochs=2)

    engine = Engine(catalog)
    engine.models.register("semantic", model)

    # --- the declarative hybrid query (paper Figure 5 shape) -----------
    query = (
        engine.query("feed")
        .where(Col("day") > date(2023, 6, 1))          # relational filter
        .ejoin(
            "catalog_words",
            left_on="text",
            right_on="word",
            model="semantic",
            top_k=1,
        )
        .select(["text", "word", "day", "views", "similarity"])
    )

    print("\noptimized plan:")
    print(query.explain())

    out = query.execute()
    print(f"\n{out.num_rows} feed rows integrated after the date filter")
    print("sample integrations:")
    for row in out.head(12).to_dicts():
        print(f"  {row['text']:>16} -> {row['word']:<14} "
              f"sim={row['similarity']:.2f}")

    # --- accuracy by corruption kind ------------------------------------
    words = workload.catalog.array("word").tolist()
    word_to_id = {w: i for i, w in enumerate(words)}
    feed_ids = {
        (r["text"], r["day"]): word_to_id[r["word"]]
        for r in out.to_dicts()
    }
    per_kind: dict[str, list[bool]] = {}
    feed_rows = workload.feed.to_dicts()
    for feed_id, kind in workload.kinds.items():
        row = feed_rows[feed_id]
        key = (row["text"], row["day"])
        if key not in feed_ids:
            continue  # filtered out by date
        per_kind.setdefault(kind, []).append(
            feed_ids[key] == workload.truth[feed_id]
        )
    print("\nrecovery rate by corruption kind:")
    for kind, outcomes in sorted(per_kind.items()):
        rate = sum(outcomes) / len(outcomes)
        print(f"  {kind:>11}: {rate:5.1%}  ({sum(outcomes)}/{len(outcomes)})")


if __name__ == "__main__":
    main()
