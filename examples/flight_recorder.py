"""Flight recorder end to end: capture, scrape, replay, verify.

Demonstrates (and asserts) the capture→replay→diff loop the flight
recorder exists for:

1. serve a concurrent workload with JSONL capture enabled and the live
   introspection endpoint up;
2. scrape ``/metrics`` (Prometheus exposition with HELP+TYPE), ``/health``
   and ``/slow`` (critical-path summaries of the slowest queries) over
   plain HTTP while traffic runs;
3. replay the captured workload against a *fresh* service on a fresh
   engine and verify every result digest bit-identical to the capture —
   the exactness proof a perf-affecting change should publish.

Flags make it CI-friendly: ``--port`` pins the endpoint, ``--hold-s``
keeps the server up after the workload so an external ``curl`` can probe
it, ``--capture`` writes the workload somewhere inspectable.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import threading
import urllib.request
from pathlib import Path

import numpy as np

import repro
from repro.obs.replay import WorkloadReplayer
from repro.relational.column import Column
from repro.workloads import unit_vectors

N_ROWS, DIM = 20_000, 64


def build_engine() -> repro.Engine:
    vectors = unit_vectors(N_ROWS, DIM, stream="example/fr-corpus")
    table = repro.Table.from_columns(
        [
            Column(repro.Field("doc_id", repro.DataType.INT64), np.arange(N_ROWS)),
            Column(repro.Field("emb", repro.DataType.TENSOR, dim=DIM), vectors),
        ]
    )
    catalog = repro.Catalog()
    catalog.register("docs", table)
    engine = repro.Engine(catalog)
    engine.models.register("encoder", repro.HashingEmbedder(dim=DIM))
    return engine


def drive_workload(service, *, clients: int, queries: int) -> None:
    qvecs = unit_vectors(queries, DIM, stream="example/fr-queries")
    per_client = queries // clients
    errors: list = []

    def client(c: int) -> None:
        try:
            with service.session(f"client-{c}") as session:
                for qvec in qvecs[c * per_client : (c + 1) * per_client]:
                    session.execute(
                        session.query("docs").esimilar(
                            "emb", qvec, model="encoder", top_k=10
                        )
                    )
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(c,)) for c in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def scrape(url: str, route: str) -> str:
    with urllib.request.urlopen(url + route, timeout=10) as response:
        return response.read().decode()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=0, help="endpoint port (0: free)")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--queries", type=int, default=64)
    parser.add_argument(
        "--capture", default=None, help="capture file (default: a temp file)"
    )
    parser.add_argument(
        "--hold-s",
        type=float,
        default=0.0,
        help="keep the endpoint alive this long after the workload (for curl)",
    )
    args = parser.parse_args()

    capture = Path(
        args.capture
        or Path(tempfile.mkdtemp(prefix="repro-fr-")) / "workload.jsonl"
    )

    # --- 1. capture a concurrent workload with the endpoint live -------
    engine = build_engine()
    service = engine.serve(
        capture_path=str(capture),
        obs_enabled=True,
        obs_sample_rate=1.0,
        http_port=args.port,
    )
    url = service.serve_http().url
    print(f"endpoint up at {url}")
    drive_workload(service, clients=args.clients, queries=args.queries)

    # --- 2. scrape the introspection routes over real HTTP -------------
    metrics = scrape(url, "/metrics")
    assert "# HELP repro_queries_total" in metrics
    assert "# TYPE repro_queries_total counter" in metrics
    health = json.loads(scrape(url, "/health"))
    slow = json.loads(scrape(url, "/slow"))
    assert slow and slow[0]["critical_path"][0]["name"] == "query"
    print(
        f"scraped: {len(metrics.splitlines())} metric lines, "
        f"health={health['status']}, {len(slow)} slow-log entries"
    )
    worst = slow[0]
    path_names = " -> ".join(p["name"] for p in worst["critical_path"])
    print(
        f"slowest query {worst['query_id']} ({worst['wall_s'] * 1e3:.2f} ms): "
        f"{path_names}"
    )

    if args.hold_s > 0:
        print(f"holding endpoint for {args.hold_s:.0f}s (scrape it now)...")
        threading.Event().wait(args.hold_s)

    service.shutdown()
    print(f"captured {args.queries} queries to {capture}")

    # --- 3. replay against a fresh engine; digests must match ----------
    fresh = repro.QueryService(build_engine(), result_cache_size=0)
    report = WorkloadReplayer(capture, mode="closed", clients=args.clients).run(
        fresh
    )
    fresh.shutdown()
    digests = report["digests"]
    print(
        f"replay: {digests['matched']}/{digests['verified']} digests "
        f"bit-identical "
        f"(capture p50 {report['capture']['latency']['p50'] * 1e3:.2f} ms, "
        f"replay p50 {report['replay']['latency']['p50'] * 1e3:.2f} ms)"
    )
    assert report["ok"], report["mismatches"]
    assert digests["matched"] == args.queries
    assert digests["mismatched"] == 0
    print("flight recorder example OK")


if __name__ == "__main__":
    main()
