"""Concurrent query service: many clients, one engine, shared scans.

Demonstrates the serving layer added on top of the declarative engine:
admission control bounds in-flight work, concurrently-submitted top-k
selections against the same column coalesce into one shared batched scan,
and repeated queries are answered from the semantic result cache — all
while every result stays bit-identical to serial execution.  At the end
the service is shut down gracefully: in-flight queries drain before the
service stops accepting work for good.
"""

from __future__ import annotations

import json
import threading

import numpy as np

import repro
from repro.relational.column import Column
from repro.workloads import unit_vectors

N_ROWS, DIM = 20_000, 64
N_CLIENTS, QUERIES_PER_CLIENT = 8, 6


def build_engine() -> repro.Engine:
    vectors = unit_vectors(N_ROWS, DIM, stream="example/corpus")
    table = repro.Table.from_columns(
        [
            Column(repro.Field("doc_id", repro.DataType.INT64), np.arange(N_ROWS)),
            Column(repro.Field("emb", repro.DataType.TENSOR, dim=DIM), vectors),
        ]
    )
    catalog = repro.Catalog()
    catalog.register("docs", table)
    engine = repro.Engine(catalog)
    engine.models.register("encoder", repro.HashingEmbedder(dim=DIM))
    return engine


def main() -> None:
    engine = build_engine()
    service = engine.serve(max_inflight=16, coalesce=True)

    # A hot pool of query vectors: concurrent clients often ask the same
    # question, which the coalescer dedups and the result cache absorbs.
    hot = unit_vectors(4, DIM, stream="example/hot")

    def client(worker: int, results: list) -> None:
        # One deterministic stream per worker: numpy Generators are not
        # thread-safe, so threads must not share one.
        rng = repro.rng(f"example/traffic/{worker}")
        with service.session(f"user-{worker}") as session:
            for _ in range(QUERIES_PER_CLIENT):
                qvec = hot[int(rng.integers(len(hot)))]
                out = session.execute(
                    session.query("docs")
                    .esimilar("emb", qvec, model="encoder", top_k=5)
                    .select(["doc_id", "similarity"])
                )
                results.append(out)

    results: list = []
    threads = [
        threading.Thread(target=client, args=(w, results)) for w in range(N_CLIENTS)
    ]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        print(f"served {len(results)} queries from {N_CLIENTS} concurrent clients")
        print("first result:")
        print(results[0])
        print("\nservice counters:")
        print(json.dumps(service.stats_snapshot(), indent=2))

        # The service contract: identical to one-at-a-time serial execution.
        serial = (
            engine.query("docs")
            .esimilar("emb", hot[0], model="encoder", top_k=5)
            .select(["doc_id", "similarity"])
            .execute()
        )
        via_service = service.submit(
            engine.query("docs")
            .esimilar("emb", hot[0], model="encoder", top_k=5)
            .select(["doc_id", "similarity"])
        )
        assert np.array_equal(serial.array("doc_id"), via_service.array("doc_id"))
        print("\nservice results are bit-identical to serial execution ✓")
    finally:
        # Graceful shutdown: stop accepting new work, then wait for every
        # in-flight query to release its execution slot before exiting.
        drained = service.shutdown(drain=True, timeout_s=30.0)
        print(f"service shut down (drained={drained})")


if __name__ == "__main__":
    main()
