"""Access-path selection under relational selectivity (paper Section VI-E).

Run with:  python examples/access_path_selection.py

The paper's key systems insight: whether to drive a vector join through a
scan or a vector index is a *selectivity-driven* decision, like the classic
scan-vs-B-tree choice.  This example sweeps the relational selectivity of a
hybrid query and shows measured scan/index times against the cost model's
prediction.
"""

from __future__ import annotations

import time

import numpy as np

from repro import HNSWIndex, TopKCondition
from repro.core import choose_access_path, index_join, tensor_join
from repro.workloads import unit_vectors

DIM = 128
N_BASE = 6_000
N_PROBE = 100
SELECTIVITIES = (2, 10, 30, 60, 100)


def main() -> None:
    base = unit_vectors(N_BASE, DIM, stream="apx/base")
    probes = unit_vectors(N_PROBE, DIM, stream="apx/probe")

    print(f"building HNSW over {N_BASE} x {DIM}-D vectors ...")
    index = HNSWIndex(DIM, m=8, ef_construction=64, ef_search=24, seed=3)
    index.add(base)

    rng = np.random.default_rng(4)
    rank = rng.permutation(N_BASE)
    condition = TopKCondition(1)

    print(f"\n{'sel%':>5} {'scan ms':>9} {'index ms':>9} "
          f"{'measured winner':>16} {'model says':>11}")
    for pct in SELECTIVITIES:
        bitmap = rank < int(N_BASE * pct / 100)
        kept = np.nonzero(bitmap)[0]

        t0 = time.perf_counter()
        tensor_join(probes, base[kept], condition, assume_normalized=True)
        scan_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        index_join(probes, index, condition, allowed=bitmap)
        index_s = time.perf_counter() - t0

        decision = choose_access_path(
            N_PROBE, N_BASE, k=1, dim=DIM, selectivity=pct / 100,
            ef_search=index.ef_search,
        )
        measured = "scan" if scan_s < index_s else "index"
        print(f"{pct:>5} {scan_s * 1e3:>9.1f} {index_s * 1e3:>9.1f} "
              f"{measured:>16} {decision.choice:>11}")

    print("\nshape to observe (paper Figures 15-17): the scan wins at low "
          "selectivity because relational filtering shrinks its input, "
          "while index probes pay graph traversal regardless — and pay "
          "*extra* under a pre-filter.")


if __name__ == "__main__":
    main()
