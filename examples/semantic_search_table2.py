"""Semantic matching demo: reproduce the paper's Table II interactively.

Run with:  python examples/semantic_search_table2.py

Trains the from-scratch FastText-style subword model on the synthetic
semantic corpus and prints the top-15 model matches for the paper's probe
words (dbms, postgres, clothes) — topical neighbours, plural forms, and
misspellings, with no rules specified by the user.
"""

from __future__ import annotations

from repro import FastTextModel
from repro.embedding import generate_corpus

PROBES = ["dbms", "postgres", "clothes"]


def main() -> None:
    corpus = generate_corpus(n_sentences=3000, sentence_length=(5, 9), seed=23)
    print(
        f"corpus: {len(corpus.sentences)} sentences over "
        f"{len(corpus.topics)} topics, vocab {len(corpus.vocabulary)}"
    )

    model = FastTextModel(dim=64, window=4, negatives=5, seed=23)
    print("training (skip-gram + negative sampling over hashed subwords) ...")
    model.fit(corpus.sentences, epochs=3, verbose=True)

    print("\n=== Table II analogue: top-15 model matches ===")
    for word in PROBES:
        neighbors = model.nearest_neighbors(word, k=15)
        related = corpus.related_words(word)
        formatted = ", ".join(
            (w if w in related else f"{w}?") for w, _ in neighbors
        )
        hits = sum(1 for w, _ in neighbors if w in related)
        print(f"\n{word}  ({hits}/15 ground-truth related)")
        print(f"  {formatted}")

    print("\nout-of-vocabulary robustness (misspellings never seen in "
          "training):")
    for typo in ["postgrse", "dmbs", "clothse"]:
        neighbors = model.nearest_neighbors(typo, k=3)
        print(f"  {typo:>10} -> {[w for w, _ in neighbors]}")


if __name__ == "__main__":
    main()
