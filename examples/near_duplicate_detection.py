"""Multi-modal near-duplicate detection (paper Section II-A-3).

Run with:  python examples/near_duplicate_detection.py

An unlabeled batch of embeddings (e.g. images embedded by a vision model —
the engine never sees the modality, only context-free tensors) is checked
against a reference database for near-duplicates, the misinformation-
detection / document-tagging workload the paper motivates.

Shows the access-path decision in action: a threshold E-join on a scan is
exact; the HNSW index probe is faster per query at high selectivity but
approximate and capped at top-k.
"""

from __future__ import annotations

import time

from repro import HNSWIndex, ThresholdCondition, TopKCondition
from repro.core import choose_access_path, index_join, tensor_join
from repro.workloads import paired_relations

DIM = 64
N_BATCH = 300        # new, unlabeled items
N_REFERENCE = 5_000  # reference database
DUP_RATE = 0.12


def main() -> None:
    # paired_relations plants near-duplicates with known ground truth —
    # standing in for "the same image re-uploaded with slight edits".
    batch, reference, truth = paired_relations(
        N_BATCH, N_REFERENCE, DIM, overlap=DUP_RATE, noise=0.03, seed=11
    )
    print(f"batch: {N_BATCH} items, reference DB: {N_REFERENCE}, "
          f"planted duplicates: {len(truth)}")

    # --- exact scan-based detection -------------------------------------
    condition = ThresholdCondition(0.93)
    t0 = time.perf_counter()
    scan = tensor_join(batch, reference, condition, assume_normalized=True)
    scan_s = time.perf_counter() - t0
    found = scan.pairs()
    recall = len(found & truth) / len(truth)
    precision = len(found & truth) / max(len(found), 1)
    print(f"\nscan (tensor join, exact): {scan_s * 1000:.1f} ms")
    print(f"  found {len(found)} pairs, recall={recall:.1%}, "
          f"precision={precision:.1%}")

    # --- index-based detection ------------------------------------------
    print("\nbuilding HNSW index over the reference DB ...")
    index = HNSWIndex(DIM, m=12, ef_construction=96, ef_search=64, seed=11)
    t0 = time.perf_counter()
    index.add(reference)
    print(f"  build: {time.perf_counter() - t0:.1f} s "
          f"(amortized across future batches)")

    t0 = time.perf_counter()
    probe = index_join(batch, index, TopKCondition(1, min_similarity=0.93))
    probe_s = time.perf_counter() - t0
    pfound = probe.pairs()
    precall = len(pfound & truth) / len(truth)
    print(f"index probe (approximate): {probe_s * 1000:.1f} ms")
    print(f"  found {len(pfound)} pairs, recall={precall:.1%}")

    # --- what would the cost model have chosen? -------------------------
    decision = choose_access_path(
        N_BATCH, N_REFERENCE, k=1, dim=DIM, selectivity=1.0
    )
    print(f"\naccess-path selector: {decision.choice} "
          f"(scan={decision.scan_cost:.3g}, index={decision.index_cost:.3g})")
    print("paper Table I in action: the scan is exact and expression-"
          "flexible; the index trades accuracy for probe speed and needs "
          "its build cost amortized.")


if __name__ == "__main__":
    main()
