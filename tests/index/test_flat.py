"""Unit tests for the flat exact index."""

import numpy as np
import pytest

from repro.errors import DimensionalityError, IndexNotBuiltError
from repro.index import FlatIndex
from repro.workloads import unit_vectors


@pytest.fixture()
def index():
    idx = FlatIndex(8)
    idx.add(unit_vectors(50, 8, seed=31))
    return idx


class TestBuild:
    def test_add_normalizes(self):
        idx = FlatIndex(4)
        idx.add(np.full((3, 4), 5.0, dtype=np.float32))
        assert np.allclose(np.linalg.norm(idx.vectors, axis=1), 1.0, atol=1e-5)

    def test_add_accumulates(self, index):
        index.add(unit_vectors(10, 8, seed=32))
        assert len(index) == 60
        assert index.stats.n_inserted == 60

    def test_dim_checks(self):
        idx = FlatIndex(4)
        with pytest.raises(DimensionalityError):
            idx.add(np.ones((2, 5)))
        with pytest.raises(DimensionalityError):
            FlatIndex(0)

    def test_search_empty_raises(self):
        with pytest.raises(IndexNotBuiltError):
            FlatIndex(4).search(np.ones(4), 1)


class TestSearch:
    def test_exact_vs_numpy(self, index):
        query = unit_vectors(1, 8, seed=33)[0]
        result = index.search(query, 5)
        sims = index.vectors @ query
        expected = np.argsort(-sims, kind="stable")[:5]
        assert result.ids.tolist() == expected.tolist()

    def test_scores_descending(self, index):
        query = unit_vectors(1, 8, seed=34)[0]
        scores = index.search(query, 10).scores
        assert all(scores[i] >= scores[i + 1] for i in range(len(scores) - 1))

    def test_self_query_returns_self_first(self, index):
        result = index.search(index.vectors[7], 1)
        assert result.ids[0] == 7
        assert result.scores[0] == pytest.approx(1.0, abs=1e-5)

    def test_k_exceeds_size(self, index):
        assert len(index.search(unit_vectors(1, 8, seed=35)[0], 200)) == 50

    def test_distance_computation_counter(self, index):
        before = index.stats.distance_computations
        index.search(unit_vectors(1, 8, seed=36)[0], 3)
        assert index.stats.distance_computations == before + 50

    def test_batch_search(self, index):
        queries = unit_vectors(4, 8, seed=37)
        results = index.search_batch(queries, 2)
        assert len(results) == 4
        assert all(len(r) == 2 for r in results)


class TestPreFilter:
    def test_only_allowed_returned(self, index):
        allowed = np.zeros(50, dtype=bool)
        allowed[[3, 8, 20]] = True
        result = index.search(unit_vectors(1, 8, seed=38)[0], 10, allowed=allowed)
        assert set(result.ids.tolist()) <= {3, 8, 20}

    def test_empty_filter_empty_result(self, index):
        allowed = np.zeros(50, dtype=bool)
        result = index.search(unit_vectors(1, 8, seed=39)[0], 5, allowed=allowed)
        assert len(result) == 0

    def test_filtered_matches_manual(self, index):
        allowed = np.zeros(50, dtype=bool)
        allowed[:25] = True
        query = unit_vectors(1, 8, seed=40)[0]
        result = index.search(query, 5, allowed=allowed)
        sims = index.vectors[:25] @ query
        expected = np.argsort(-sims, kind="stable")[:5]
        assert result.ids.tolist() == expected.tolist()
