"""Unit tests for the from-scratch HNSW index."""

import numpy as np
import pytest

from repro.errors import IndexError_, IndexNotBuiltError
from repro.index import FlatIndex, HNSWIndex
from repro.workloads import unit_vectors

DIM = 16


@pytest.fixture(scope="module")
def base():
    return unit_vectors(800, DIM, seed=41)


@pytest.fixture(scope="module")
def hnsw(base):
    idx = HNSWIndex(DIM, m=8, ef_construction=64, ef_search=48, seed=42)
    idx.add(base)
    return idx


@pytest.fixture(scope="module")
def flat(base):
    idx = FlatIndex(DIM)
    idx.add(base)
    return idx


class TestValidation:
    def test_param_checks(self):
        with pytest.raises(IndexError_):
            HNSWIndex(DIM, m=1)
        with pytest.raises(IndexError_):
            HNSWIndex(DIM, ef_construction=0)
        with pytest.raises(IndexError_):
            HNSWIndex(DIM, ef_search=0)

    def test_search_before_build(self):
        with pytest.raises(IndexNotBuiltError):
            HNSWIndex(DIM).search(np.ones(DIM), 1)

    def test_bad_bitmap_shape(self, hnsw):
        with pytest.raises(IndexError_, match="bitmap shape"):
            hnsw.search(np.ones(DIM), 1, allowed=np.ones(3, dtype=bool))


class TestStructure:
    def test_level_sizes_decreasing(self, hnsw):
        sizes = hnsw.level_sizes()
        assert sizes[0] == 800
        assert all(sizes[i] >= sizes[i + 1] for i in range(len(sizes) - 1))

    def test_degree_bounds(self, hnsw):
        for level, layer in enumerate(hnsw._links):
            bound = hnsw.m_max0 if level == 0 else hnsw.m
            for node, links in layer.items():
                assert len(links) <= bound, f"node {node} level {level}"

    def test_links_are_valid_ids(self, hnsw):
        for layer in hnsw._links:
            for links in layer.values():
                assert all(0 <= n < 800 for n in links)

    def test_describe(self, hnsw):
        assert "M=8" in hnsw.describe()

    def test_deterministic_given_seed(self, base):
        a = HNSWIndex(DIM, m=4, ef_construction=32, seed=5)
        a.add(base[:100])
        b = HNSWIndex(DIM, m=4, ef_construction=32, seed=5)
        b.add(base[:100])
        q = unit_vectors(1, DIM, seed=6)[0]
        assert a.search(q, 5).ids.tolist() == b.search(q, 5).ids.tolist()


class TestSearchQuality:
    def test_tiny_index_is_exact(self):
        vectors = unit_vectors(10, DIM, seed=43)
        hnsw = HNSWIndex(DIM, m=4, ef_construction=32, ef_search=16, seed=44)
        hnsw.add(vectors)
        flat = FlatIndex(DIM)
        flat.add(vectors)
        q = unit_vectors(1, DIM, seed=45)[0]
        assert hnsw.search(q, 3).ids.tolist() == flat.search(q, 3).ids.tolist()

    def test_recall_floor_vs_flat(self, hnsw, flat):
        queries = unit_vectors(30, DIM, seed=46)
        k = 10
        hits = total = 0
        for q in queries:
            expected = set(flat.search(q, k).ids.tolist())
            got = set(hnsw.search(q, k).ids.tolist())
            hits += len(expected & got)
            total += len(expected)
        recall = hits / total
        assert recall >= 0.8, f"HNSW recall@{k} too low: {recall:.2f}"

    def test_self_query(self, hnsw, base):
        result = hnsw.search(base[123], 1)
        assert result.ids[0] == 123

    def test_scores_descending(self, hnsw):
        q = unit_vectors(1, DIM, seed=47)[0]
        scores = hnsw.search(q, 10).scores
        assert all(scores[i] >= scores[i + 1] for i in range(len(scores) - 1))

    def test_higher_ef_at_least_as_good(self, base):
        lo = HNSWIndex(DIM, m=8, ef_construction=32, ef_search=8, seed=48)
        hi = HNSWIndex(DIM, m=8, ef_construction=128, ef_search=128, seed=48)
        lo.add(base[:400])
        hi.add(base[:400])
        flat = FlatIndex(DIM)
        flat.add(base[:400])
        queries = unit_vectors(20, DIM, seed=49)
        k = 5

        def recall(idx):
            hits = 0
            for q in queries:
                expected = set(flat.search(q, k).ids.tolist())
                hits += len(expected & set(idx.search(q, k).ids.tolist()))
            return hits / (k * len(queries))

        assert recall(hi) >= recall(lo)


class TestPreFilter:
    def test_only_allowed_ids(self, hnsw):
        allowed = np.zeros(800, dtype=bool)
        allowed[100:200] = True
        q = unit_vectors(1, DIM, seed=50)[0]
        result = hnsw.search(q, 10, allowed=allowed)
        assert len(result) > 0
        assert all(100 <= i < 200 for i in result.ids.tolist())

    def test_traversal_cost_still_paid(self, hnsw):
        """Pre-filtering excludes results on the fly but pays traversal
        (paper Section IV-B)."""
        q = unit_vectors(1, DIM, seed=51)[0]
        allowed = np.zeros(800, dtype=bool)
        allowed[:40] = True  # 5% selectivity
        before = hnsw.stats.distance_computations
        hnsw.search(q, 5, allowed=allowed)
        filtered_cost = hnsw.stats.distance_computations - before
        before = hnsw.stats.distance_computations
        hnsw.search(q, 5)
        unfiltered_cost = hnsw.stats.distance_computations - before
        assert filtered_cost >= unfiltered_cost

    def test_counters_advance(self, hnsw):
        q = unit_vectors(1, DIM, seed=52)[0]
        probes_before = hnsw.stats.n_probes
        hnsw.search(q, 3)
        assert hnsw.stats.n_probes == probes_before + 1
        assert hnsw.stats.hops > 0
        assert hnsw.stats.build_seconds > 0
