"""Unit tests for pre-filter bitmap helpers."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.index import (
    bitmap_from_indices,
    bitmap_from_predicate,
    bitmap_selectivity,
    combine_and,
)
from repro.relational import Col


class TestBitmapFromPredicate:
    def test_evaluates_over_table(self, people_table):
        bitmap = bitmap_from_predicate(people_table, Col("age") > 36)
        assert bitmap.tolist() == [False, True, False, False, True]


class TestBitmapFromIndices:
    def test_basic(self):
        bm = bitmap_from_indices(5, np.asarray([0, 3]))
        assert bm.tolist() == [True, False, False, True, False]

    def test_empty_indices(self):
        assert not bitmap_from_indices(4, np.asarray([], dtype=np.int64)).any()

    def test_out_of_range(self):
        with pytest.raises(IndexError_):
            bitmap_from_indices(3, np.asarray([5]))
        with pytest.raises(IndexError_):
            bitmap_from_indices(-1, np.asarray([0]))


class TestCombine:
    def test_and(self):
        a = np.asarray([True, True, False])
        b = np.asarray([True, False, False])
        assert combine_and(a, b).tolist() == [True, False, False]

    def test_and_does_not_mutate(self):
        a = np.asarray([True, True])
        combine_and(a, np.asarray([False, False]))
        assert a.tolist() == [True, True]

    def test_shape_mismatch(self):
        with pytest.raises(IndexError_):
            combine_and(np.ones(2, dtype=bool), np.ones(3, dtype=bool))

    def test_requires_input(self):
        with pytest.raises(IndexError_):
            combine_and()


class TestSelectivity:
    def test_fraction(self):
        assert bitmap_selectivity(np.asarray([True, False, True, False])) == 0.5

    def test_empty(self):
        assert bitmap_selectivity(np.asarray([], dtype=bool)) == 0.0
