"""Unit tests for the IVF-PQ index."""

import numpy as np
import pytest

from repro.errors import IndexError_, IndexNotBuiltError
from repro.index import FlatIndex, IVFPQIndex
from repro.workloads import embedding_like_vectors, unit_vectors

pytestmark = pytest.mark.quant


@pytest.fixture(scope="module")
def base() -> np.ndarray:
    data, _ = embedding_like_vectors(
        2000, 32, rank=12, n_clusters=32, noise=0.8, seed=55
    )
    return data


@pytest.fixture(scope="module")
def queries(base) -> np.ndarray:
    return unit_vectors(30, 32, seed=56)


@pytest.fixture(scope="module")
def index(base) -> IVFPQIndex:
    idx = IVFPQIndex(
        32, nlist=16, nprobe=16, m=4, ks=64, rerank_multiple=16, seed=57
    )
    idx.add(base)
    return idx


@pytest.fixture(scope="module")
def flat(base) -> FlatIndex:
    idx = FlatIndex(32)
    idx.add(base)
    return idx


class TestSearch:
    def test_recall_against_flat(self, index, flat, queries):
        hits = total = 0
        for q in queries:
            ref = flat.search(q, 10)
            got = index.search(q, 10)
            hits += len(set(ref.ids.tolist()) & set(got.ids.tolist()))
            total += len(ref.ids)
        assert hits / total >= 0.9

    def test_exact_when_everything_reranked(self, base, flat, queries):
        idx = IVFPQIndex(
            32, nlist=4, nprobe=4, m=4, ks=64,
            rerank_multiple=len(base), seed=58,
        )
        idx.add(base)
        for q in queries[:5]:
            ref = flat.search(q, 5)
            got = idx.search(q, 5)
            assert got.ids.tolist() == ref.ids.tolist()
            np.testing.assert_allclose(got.scores, ref.scores, atol=1e-5)

    def test_scores_are_exact_fp32(self, index, base, queries):
        got = index.search(queries[0], 5)
        expected = base[got.ids] @ queries[0]
        np.testing.assert_allclose(got.scores, expected, atol=1e-5)

    def test_prefilter_respected(self, index, base, queries):
        allowed = np.zeros(len(base), dtype=bool)
        allowed[:100] = True
        got = index.search(queries[0], 5, allowed=allowed)
        assert (got.ids < 100).all()

    def test_prefilter_shape_validated(self, index, queries):
        with pytest.raises(IndexError_, match="bitmap shape"):
            index.search(queries[0], 3, allowed=np.ones(7, dtype=bool))

    def test_assume_normalized_skips_renormalization(self, index, queries):
        a = index.search(queries[0], 5)
        b = index.search(queries[0], 5, assume_normalized=True)
        assert a.ids.tolist() == b.ids.tolist()

    def test_search_batch(self, index, queries):
        results = index.search_batch(queries[:4], 3)
        assert len(results) == 4
        assert all(len(r) == 3 for r in results)


class TestStructure:
    def test_code_compression(self, index, base):
        assert index.code_bytes == len(base) * 4
        assert index.code_bytes * 32 == base.nbytes  # 4B*32d vs 4 codes

    def test_lists_partition_everything(self, index, base):
        assert sum(index.list_sizes()) == len(base)

    def test_probe_counters(self, base, queries):
        idx = IVFPQIndex(32, nlist=8, nprobe=2, m=4, ks=16, seed=59)
        idx.add(base)
        before = idx.stats.n_probes
        idx.search(queries[0], 3)
        assert idx.stats.n_probes == before + 1
        assert idx.stats.distance_computations > 0

    def test_describe(self, index):
        text = index.describe()
        assert "IVFPQ" in text and "m=4" in text

    def test_requires_build(self):
        with pytest.raises(IndexNotBuiltError):
            IVFPQIndex(8).search(np.ones(8, np.float32), 1)

    def test_invalid_params(self):
        with pytest.raises(IndexError_):
            IVFPQIndex(8, nlist=0)
        with pytest.raises(IndexError_):
            IVFPQIndex(8, nprobe=0)
        with pytest.raises(IndexError_):
            IVFPQIndex(8, rerank_multiple=0)
