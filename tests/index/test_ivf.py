"""Unit tests for the IVF-Flat index."""

import numpy as np
import pytest

from repro.errors import IndexError_, IndexNotBuiltError
from repro.index import FlatIndex, IVFFlatIndex, kmeans
from repro.vector import normalize_rows
from repro.workloads import clustered_vectors, unit_vectors

DIM = 16


@pytest.fixture(scope="module")
def base():
    vectors, _ = clustered_vectors(600, DIM, n_clusters=12, noise=0.15, seed=61)
    return vectors


@pytest.fixture(scope="module")
def ivf(base):
    idx = IVFFlatIndex(DIM, nlist=12, nprobe=4, seed=62)
    idx.add(base)
    return idx


class TestKMeans:
    def test_centroids_unit_norm(self, base):
        centroids = kmeans(base, 8, rng=np.random.default_rng(63))
        assert np.allclose(np.linalg.norm(centroids, axis=1), 1.0, atol=1e-4)

    def test_clusters_capped_at_n(self):
        data = normalize_rows(np.random.default_rng(64).standard_normal((3, 4)))
        centroids = kmeans(data, 10, rng=np.random.default_rng(65))
        assert centroids.shape[0] == 3

    def test_invalid_clusters(self, base):
        with pytest.raises(IndexError_):
            kmeans(base, 0)

    def test_recovers_planted_clusters(self):
        vectors, labels = clustered_vectors(
            300, DIM, n_clusters=4, noise=0.05, seed=66
        )
        centroids = kmeans(vectors, 4, rng=np.random.default_rng(67))
        assign = np.argmax(vectors @ centroids.T, axis=1)
        # Same-label points should mostly share an assigned centroid.
        agreement = 0
        for lbl in range(4):
            members = assign[labels == lbl]
            agreement += np.bincount(members).max()
        # k-means may locally split one planted cluster; gross recovery is
        # the property under test, not global optimality.
        assert agreement / len(vectors) > 0.8


class TestIVFIndex:
    def test_validation(self):
        with pytest.raises(IndexError_):
            IVFFlatIndex(DIM, nlist=0)
        with pytest.raises(IndexError_):
            IVFFlatIndex(DIM, nprobe=0)

    def test_search_before_build(self):
        with pytest.raises(IndexNotBuiltError):
            IVFFlatIndex(DIM).search(np.ones(DIM), 1)

    def test_lists_partition_collection(self, ivf, base):
        assert sum(ivf.list_sizes()) == len(base)

    def test_self_query(self, ivf, base):
        result = ivf.search(base[42], 1)
        assert result.ids[0] == 42

    def test_recall_vs_flat(self, ivf, base):
        flat = FlatIndex(DIM)
        flat.add(base)
        queries = unit_vectors(25, DIM, seed=68)
        k = 5
        hits = 0
        for q in queries:
            expected = set(flat.search(q, k).ids.tolist())
            hits += len(expected & set(ivf.search(q, k).ids.tolist()))
        recall = hits / (k * len(queries))
        assert recall >= 0.6, f"IVF recall too low: {recall:.2f}"

    def test_full_nprobe_is_exact(self, base):
        """Probing every list degenerates to an exhaustive scan."""
        idx = IVFFlatIndex(DIM, nlist=8, nprobe=8, seed=69)
        idx.add(base)
        flat = FlatIndex(DIM)
        flat.add(base)
        q = unit_vectors(1, DIM, seed=70)[0]
        assert idx.search(q, 5).ids.tolist() == flat.search(q, 5).ids.tolist()

    def test_higher_nprobe_at_least_as_good(self, base):
        narrow = IVFFlatIndex(DIM, nlist=12, nprobe=1, seed=71)
        wide = IVFFlatIndex(DIM, nlist=12, nprobe=12, seed=71)
        narrow.add(base)
        wide.add(base)
        flat = FlatIndex(DIM)
        flat.add(base)
        queries = unit_vectors(20, DIM, seed=72)
        k = 5

        def recall(idx):
            hits = 0
            for q in queries:
                expected = set(flat.search(q, k).ids.tolist())
                hits += len(expected & set(idx.search(q, k).ids.tolist()))
            return hits / (k * len(queries))

        assert recall(wide) >= recall(narrow)

    def test_prefilter(self, ivf, base):
        allowed = np.zeros(len(base), dtype=bool)
        allowed[:50] = True
        result = ivf.search(unit_vectors(1, DIM, seed=73)[0], 10, allowed=allowed)
        assert all(i < 50 for i in result.ids.tolist())

    def test_prefilter_shape_check(self, ivf):
        with pytest.raises(IndexError_, match="bitmap"):
            ivf.search(np.ones(DIM), 1, allowed=np.ones(3, dtype=bool))

    def test_counters(self, ivf):
        before = ivf.stats.n_probes
        ivf.search(unit_vectors(1, DIM, seed=74)[0], 2)
        assert ivf.stats.n_probes == before + 1
        assert ivf.stats.build_seconds > 0

    def test_works_with_index_join(self, base):
        from repro.core import TopKCondition, index_join, tensor_join

        idx = IVFFlatIndex(DIM, nlist=8, nprobe=8, seed=75)
        idx.add(base)
        probes = unit_vectors(20, DIM, seed=76)
        got = index_join(probes, idx, TopKCondition(2)).pairs()
        expected = tensor_join(probes, base, TopKCondition(2)).pairs()
        assert len(got & expected) / len(expected) >= 0.95

    def test_describe(self, ivf):
        assert "nlist=12" in ivf.describe()
