"""QueryService end to end: sessions, mixed concurrent traffic, stats."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ServiceError, ServiceOverloadError, SessionClosedError
from repro.query import Engine
from repro.service import QueryService

from _service_utils import MODEL, assert_tables_equal, make_engine

pytestmark = pytest.mark.service


def _mixed_builders(engine: Engine, qvecs) -> list:
    """A mixed bag of eselect/ejoin queries over the shared catalog."""
    builders = []
    for i, q in enumerate(qvecs):
        kind = i % 4
        if kind == 0:
            builders.append(
                engine.query("corpus").esimilar("emb", q, model=MODEL, top_k=3)
            )
        elif kind == 1:
            builders.append(
                engine.query("corpus").esimilar(
                    "emb", q, model=MODEL, threshold=0.25
                )
            )
        elif kind == 2:
            builders.append(
                engine.query("corpus")
                .esimilar("emb", q, model=MODEL, top_k=5)
                .select(["id", "similarity"])
            )
        else:
            builders.append(
                engine.query("other").ejoin(
                    "corpus",
                    left_on="emb",
                    right_on="emb",
                    model=MODEL,
                    top_k=2,
                )
            )
    return builders


def test_mixed_concurrent_traffic_matches_serial(query_vectors):
    serial_engine = make_engine()
    serial = [
        b.execute() for b in _mixed_builders(serial_engine, query_vectors[:16])
    ]

    engine = make_engine()
    service = QueryService(engine, coalesce=True, coalesce_window_s=0.02)
    builders = _mixed_builders(engine, query_vectors[:16])
    results = [None] * len(builders)
    errors = []
    barrier = threading.Barrier(8)

    def client(worker: int):
        try:
            with service.session(f"client-{worker}") as session:
                barrier.wait()
                for i in range(worker, len(builders), 8):
                    results[i] = session.execute(builders[i])
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(w,), daemon=True)
        for w in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    for i, (a, b) in enumerate(zip(serial, results)):
        assert_tables_equal(a, b, context=f"query {i}")
    snapshot = service.stats_snapshot()
    assert snapshot["service"]["completed"] == 16
    assert snapshot["admission"]["peak_inflight"] <= 8


def test_repeated_traffic_hits_caches(query_vectors):
    engine = make_engine()
    service = QueryService(engine, coalesce=False)
    builder = lambda: engine.query("corpus").esimilar(
        "emb", query_vectors[0], model=MODEL, top_k=3
    )
    first = service.submit(builder())
    again = service.submit(builder())
    assert again is first  # exact semantic-cache hit returns the cached table
    assert service.stats.result_cache_hits == 1
    assert service.plans.stats.hits >= 1


def test_singleflight_suppresses_concurrent_duplicates(
    query_vectors, monkeypatch
):
    import repro.service.service as svc_mod

    engine = make_engine()
    service = QueryService(
        engine, coalesce=False, result_cache_size=0  # force execution path
    )
    q = query_vectors[0]
    release = threading.Event()
    entered = threading.Event()
    original = svc_mod.QueryService._execute

    def gated(self, optimized, tag):
        entered.set()
        release.wait(timeout=5.0)
        return original(self, optimized, tag)

    monkeypatch.setattr(svc_mod.QueryService, "_execute", gated)
    builder = lambda: engine.query("corpus").esimilar(
        "emb", q, model=MODEL, top_k=3
    )
    results: dict = {}
    owner = threading.Thread(
        target=lambda: results.__setitem__("owner", service.submit(builder())),
        daemon=True,
    )
    owner.start()
    assert entered.wait(timeout=5.0)  # owner holds the singleflight slot
    follower = threading.Thread(
        target=lambda: results.__setitem__("dup", service.submit(builder())),
        daemon=True,
    )
    follower.start()
    time.sleep(0.05)  # follower parks on the in-flight slot
    assert "dup" not in results
    release.set()
    owner.join(timeout=5.0)
    follower.join(timeout=5.0)
    assert results["dup"] is results["owner"]
    assert service.stats.singleflight_hits == 1


def test_admission_backpressure_rejects(query_vectors):
    engine = make_engine()
    service = QueryService(
        engine,
        max_inflight=1,
        admission_timeout_s=0.02,
        coalesce=False,
    )
    release = threading.Event()
    entered = threading.Event()

    import repro.service.service as svc_mod

    original = svc_mod.QueryService._execute

    def slow_execute(self, optimized, tag):
        entered.set()
        release.wait(timeout=5.0)
        return original(self, optimized, tag)

    svc_mod.QueryService._execute = slow_execute
    try:
        t = threading.Thread(
            target=lambda: service.submit(
                engine.query("corpus").esimilar(
                    "emb", query_vectors[0], model=MODEL, top_k=2
                )
            ),
            daemon=True,
        )
        t.start()
        assert entered.wait(timeout=5.0)
        with pytest.raises(ServiceOverloadError):
            service.submit(
                engine.query("corpus").esimilar(
                    "emb", query_vectors[1], model=MODEL, top_k=2
                )
            )
    finally:
        release.set()
        t.join(timeout=5.0)
        svc_mod.QueryService._execute = original
    assert service.admission.stats.rejected == 1


def test_session_lifecycle(query_vectors):
    engine = make_engine()
    service = QueryService(engine, coalesce=False)
    session = service.session("s1")
    session.execute(
        session.query("corpus").esimilar(
            "emb", query_vectors[0], model=MODEL, top_k=2
        )
    )
    session.close()
    with pytest.raises(SessionClosedError):
        session.execute(
            session.query("corpus").esimilar(
                "emb", query_vectors[1], model=MODEL, top_k=2
            )
        )
    assert session.queries == 1  # closed submissions are not counted
    assert session.errors == 0

    service.shutdown()
    with pytest.raises(ServiceError):
        service.submit(
            engine.query("corpus").esimilar(
                "emb", query_vectors[2], model=MODEL, top_k=2
            )
        )


def test_per_query_morsel_tagging(query_vectors):
    from repro.engine import ExecutionEngine

    engine = make_engine()
    # The physical operators only schedule on the engine when it has
    # workers; pin two so tagging is exercised regardless of host CPUs.
    engine.executor = ExecutionEngine(n_threads=2)
    service = QueryService(engine, coalesce=False)
    with service.session("tagged") as session:
        session.execute(
            session.query("other").ejoin(
                "corpus", left_on="emb", right_on="emb", model=MODEL, top_k=2
            )
        )
    tags = engine.executor.stats.by_tag
    assert any(tag.startswith("tagged/q") for tag in tags), tags
