"""AsyncQueryService: asyncio submission front over the blocking service."""

from __future__ import annotations

import asyncio
import time

import pytest

from _service_utils import DIM, MODEL, assert_tables_equal, make_engine
from repro.errors import DeadlineExceededError, ServiceError
from repro.service import AsyncQueryService, QueryService
from repro.workloads import unit_vectors

pytestmark = [pytest.mark.service, pytest.mark.qos]


def _topk(engine, qvec, k=5):
    return engine.query("corpus").esimilar("emb", qvec, model=MODEL, top_k=k)


def _run(coro):
    return asyncio.run(coro)


def test_submit_returns_exact_response():
    engine = make_engine()
    service = QueryService(engine)
    qvec = unit_vectors(1, DIM, stream="front/exact")[0]

    async def go():
        async with AsyncQueryService(service) as front:
            return await front.submit(_topk(engine, qvec))

    response = _run(go())
    assert not response.degraded
    serial = _topk(engine, qvec).execute()
    assert_tables_equal(serial, response.table, context="async front")
    assert front_stats(service)["completed"] == 1


def front_stats(service):
    # Helper for the test above: the front is gone after the context
    # exits, so stash its stats on the service for inspection.
    return service.extra_front_stats


@pytest.fixture(autouse=True)
def _stash_front_stats(monkeypatch):
    """Record every front's stats on its service as it closes."""
    original = AsyncQueryService.close

    async def close(self, *, drain: bool = True) -> None:
        await original(self, drain=drain)
        self.service.extra_front_stats = self.stats.snapshot()

    monkeypatch.setattr(AsyncQueryService, "close", close)


def test_many_idle_connections_over_bounded_dispatch():
    """Far more concurrent coroutines than dispatcher threads or slots."""
    engine = make_engine()
    service = QueryService(engine, max_inflight=2)
    vecs = unit_vectors(40, DIM, stream="front/many")

    async def go():
        async with AsyncQueryService(service, workers=2) as front:
            responses = await asyncio.gather(
                *(front.submit(_topk(engine, v)) for v in vecs)
            )
        return responses

    responses = _run(go())
    assert len(responses) == 40
    assert all(r.table.num_rows == 5 for r in responses)
    stats = front_stats(service)
    assert stats["completed"] == 40
    assert stats["queued_peak"] >= 30  # coroutines queued, not threaded


def test_priority_order_drains_high_first():
    engine = make_engine()
    service = QueryService(engine, max_inflight=1, coalesce=False)
    vecs = unit_vectors(5, DIM, stream="front/prio")
    order: list[int] = []

    async def go():
        front = AsyncQueryService(service, workers=1)
        # Fill the queue before starting workers so dispatch order is
        # purely the heap's: highest priority first, FIFO within a level.
        front._threads = [None]  # allow submits pre-start
        tasks = []

        async def one(i, prio):
            response = await front.submit(_topk(engine, vecs[i]), priority=prio)
            order.append(i)
            return response

        async with asyncio.TaskGroup() as tg:
            for i, prio in enumerate((0, 5, 0, 9, 5)):
                tasks.append(tg.create_task(one(i, prio)))
                await asyncio.sleep(0)  # let the submit enqueue
            front._threads = []
            front.start()
        await front.close()

    _run(go())
    assert order == [3, 1, 4, 0, 2]


def test_deadline_expired_in_front_queue_is_shed():
    engine = make_engine()
    service = QueryService(engine)
    vecs = unit_vectors(2, DIM, stream="front/shed")

    async def go():
        async with AsyncQueryService(service, workers=1) as front:
            blocker = asyncio.ensure_future(
                front.submit(_topk(engine, vecs[0]))
            )
            # The only worker is busy (or about to be); this entry's
            # deadline lapses before any dispatcher reaches it.
            with pytest.raises(DeadlineExceededError, match="queued"):
                task = asyncio.ensure_future(
                    front.submit(_topk(engine, vecs[1]), deadline_s=1e-4)
                )
                await asyncio.sleep(0.05)
                await task
            await blocker

    _run(go())
    assert front_stats(service)["shed_expired"] >= 1


def test_residual_deadline_forwarded_to_service():
    engine = make_engine()
    service = QueryService(engine)
    seen: dict = {}
    original = service.submit_qos

    def spy(query, **kwargs):
        seen.update(kwargs)
        return original(query, **kwargs)

    service.submit_qos = spy
    qvec = unit_vectors(1, DIM, stream="front/residual")[0]

    async def go():
        async with AsyncQueryService(service, workers=1) as front:
            await front.submit(
                _topk(engine, qvec), deadline_s=30.0, min_recall=0.5, priority=3
            )

    _run(go())
    assert 0 < seen["deadline_s"] <= 30.0
    assert seen["min_recall"] == 0.5
    assert seen["priority"] == 3


def test_close_drain_false_rejects_queued():
    engine = make_engine()
    service = QueryService(engine, max_inflight=1)
    vecs = unit_vectors(8, DIM, stream="front/reject")
    # Pin the single dispatcher inside the first query long enough for
    # close() to reach the still-queued rest.
    real_execute = service._execute

    def slow_execute(plan, tag):
        time.sleep(0.1)
        return real_execute(plan, tag)

    service._execute = slow_execute

    async def go():
        front = AsyncQueryService(service, workers=1).start()
        tasks = [
            asyncio.ensure_future(front.submit(_topk(engine, v)))
            for v in vecs
        ]
        await asyncio.sleep(0.02)  # let the worker pick up the first entry
        await front.close(drain=False)
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        errors = [o for o in outcomes if isinstance(o, ServiceError)]
        ok = [o for o in outcomes if not isinstance(o, BaseException)]
        # In-flight work finishes; everything still queued is rejected.
        assert len(ok) >= 1
        assert len(errors) == len(vecs) - len(ok)
        with pytest.raises(ServiceError, match="closed"):
            await front.submit(_topk(engine, vecs[0]))

    _run(go())
    assert front_stats(service)["rejected_on_close"] >= 1


def test_close_drain_completes_all_queued():
    engine = make_engine()
    service = QueryService(engine, max_inflight=1)
    vecs = unit_vectors(6, DIM, stream="front/drain")

    async def go():
        front = AsyncQueryService(service, workers=2).start()
        tasks = [
            asyncio.ensure_future(front.submit(_topk(engine, v)))
            for v in vecs
        ]
        await asyncio.sleep(0)
        start = time.perf_counter()
        await front.close(drain=True)
        drained = time.perf_counter() - start
        responses = await asyncio.gather(*tasks)
        return responses, drained

    responses, _ = _run(go())
    assert len(responses) == 6
    assert all(r.table.num_rows == 5 for r in responses)
    stats = front_stats(service)
    assert stats["completed"] == 6
    assert stats["rejected_on_close"] == 0


def test_submit_before_start_raises():
    engine = make_engine()
    service = QueryService(engine)
    qvec = unit_vectors(1, DIM, stream="front/unstarted")[0]

    async def go():
        front = AsyncQueryService(service)
        with pytest.raises(ServiceError, match="not started"):
            await front.submit(_topk(engine, qvec))

    _run(go())
