"""QoS primitives: estimators, sketch, priority admission, degradation."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from _service_utils import DIM, MODEL, assert_tables_equal, make_engine
from repro.errors import DeadlineExceededError, ServiceOverloadError
from repro.service import (
    AdmissionController,
    ArrivalRateEstimator,
    CoalescingScheduler,
    EWMA,
    ExecTimeTracker,
    FrequencySketch,
    QoSParams,
    QueryService,
    SemanticResultCache,
)
from repro.workloads import unit_vectors

pytestmark = [pytest.mark.service, pytest.mark.qos]


# ----------------------------------------------------------------------
# Estimators
# ----------------------------------------------------------------------
def test_ewma_seeds_and_converges():
    ewma = EWMA(alpha=0.5)
    assert ewma.value is None and ewma.n == 0
    assert ewma.update(10.0) == 10.0
    assert ewma.update(0.0) == 5.0
    assert ewma.n == 2


def test_ewma_rejects_bad_alpha():
    with pytest.raises(ValueError):
        EWMA(alpha=0.0)
    with pytest.raises(ValueError):
        EWMA(alpha=1.5)


def test_exec_tracker_cold_never_estimates():
    tracker = ExecTimeTracker(min_samples=3)
    assert tracker.estimate("full") is None
    tracker.observe("full", 0.1)
    tracker.observe("full", 0.1)
    assert tracker.estimate("full") is None  # still below min_samples
    tracker.observe("full", 0.1)
    estimate = tracker.estimate("full")
    assert estimate == pytest.approx(0.1 * tracker.safety)


def test_exec_tracker_modes_are_independent():
    tracker = ExecTimeTracker(min_samples=1, safety=1.0)
    tracker.observe("full", 1.0)
    tracker.observe("degraded", 0.01)
    assert tracker.estimate("full") == pytest.approx(1.0)
    assert tracker.estimate("degraded") == pytest.approx(0.01)
    snap = tracker.snapshot()
    assert snap["full"]["n"] == 1 and snap["degraded"]["n"] == 1


def test_arrival_estimator_windows():
    est = ArrivalRateEstimator(alpha=1.0)
    # No arrivals yet: fall back to the max window.
    assert est.window(7, 0.002) == 0.002
    est.observe(now=0.0)
    est.observe(now=0.0001)  # 100 us gaps
    # 7 more arrivals at 100 us each: 0.7 ms, under the 2 ms cap.
    assert est.window(7, 0.002) == pytest.approx(0.0007)
    # The floor binds from below while gaps are tiny.
    assert est.window(0, 0.002, 0.0005) == 0.0005
    # The cap still binds when arrivals are slow.
    est.observe(now=1.0)
    assert est.window(7, 0.002) == 0.002


def test_qos_params_relative_deadline():
    params = QoSParams.from_relative(0.5, now=100.0)
    assert params.deadline == pytest.approx(100.5)
    assert params.remaining(now=100.2) == pytest.approx(0.3)
    assert QoSParams.from_relative(None).deadline is None
    assert QoSParams().remaining() is None


# ----------------------------------------------------------------------
# Frequency sketch + TinyLFU cache admission
# ----------------------------------------------------------------------
def test_sketch_counts_and_decays():
    sketch = FrequencySketch(width=64, depth=4, sample_multiple=1)
    h = FrequencySketch.key_hash(("hot", 1))
    for _ in range(10):
        sketch.record(h)
    assert sketch.estimate(h) >= 5  # halving may have fired once
    cold = FrequencySketch.key_hash(("cold", 2))
    assert sketch.estimate(cold) <= sketch.estimate(h)


def test_sketch_estimate_is_overcount_only():
    sketch = FrequencySketch(width=256, depth=4)
    keys = [FrequencySketch.key_hash(i) for i in range(50)]
    for h in keys:
        sketch.record(h)
    for h in keys:
        assert sketch.estimate(h) >= 1


def test_tinylfu_protects_hot_entry_from_one_off_scan():
    cache = SemanticResultCache(capacity=1, ttl_s=60.0, tinylfu=True)
    hot_params = [np.ones(4, dtype=np.float32)]
    cold_params = [np.zeros(4, dtype=np.float32)]
    sentinel_hot = object()
    cache.store("fp", ("v",), hot_params, sentinel_hot, cost=1.0)
    for _ in range(8):  # the workload keeps asking for the hot entry
        assert cache.lookup("fp", ("v",), hot_params) is sentinel_hot
    # A one-off insert must not displace it: its frequency*cost loses.
    cache.store("fp", ("v",), cold_params, object(), cost=1.0)
    assert cache.lookup("fp", ("v",), hot_params) is sentinel_hot
    assert cache.stats.admission_rejects == 1


def test_tinylfu_admits_more_valuable_newcomer():
    cache = SemanticResultCache(capacity=1, ttl_s=60.0, tinylfu=True)
    old_params = [np.ones(4, dtype=np.float32)]
    new_params = [np.zeros(4, dtype=np.float32)]
    cache.store("fp", ("v",), old_params, object(), cost=0.001)
    sentinel_new = object()
    for _ in range(8):  # demand accrues for the newcomer before insert
        cache.lookup("fp", ("v",), new_params)
    cache.store("fp", ("v",), new_params, sentinel_new, cost=1.0)
    assert cache.lookup("fp", ("v",), new_params) is sentinel_new


def test_lru_eviction_unchanged_without_tinylfu():
    cache = SemanticResultCache(capacity=1, ttl_s=60.0)
    a = [np.ones(4, dtype=np.float32)]
    b = [np.zeros(4, dtype=np.float32)]
    cache.store("fp", ("v",), a, object())
    sentinel = object()
    cache.store("fp", ("v",), b, sentinel)
    assert cache.lookup("fp", ("v",), a) is None
    assert cache.lookup("fp", ("v",), b) is sentinel


# ----------------------------------------------------------------------
# Priority- and deadline-aware admission
# ----------------------------------------------------------------------
def test_priority_waiter_admitted_first():
    gate = AdmissionController(1, timeout_s=5.0)
    gate.acquire()
    order: list[str] = []
    ready = threading.Barrier(3)

    def waiter(name: str, priority: int) -> None:
        ready.wait()
        if name == "low":
            time.sleep(0)  # both park before the slot frees
        gate.acquire(priority=priority)
        order.append(name)
        gate.release()

    low = threading.Thread(target=waiter, args=("low", 0))
    high = threading.Thread(target=waiter, args=("high", 5))
    low.start()
    high.start()
    ready.wait()
    time.sleep(0.05)  # let both enqueue as waiters
    gate.release()
    low.join()
    high.join()
    assert order == ["high", "low"]


def test_deadline_shed_while_queued():
    gate = AdmissionController(1, timeout_s=5.0)
    gate.acquire()
    start = time.perf_counter()
    with pytest.raises(DeadlineExceededError):
        gate.acquire(deadline=time.perf_counter() + 0.03)
    assert time.perf_counter() - start < 1.0
    assert gate.stats.deadline_shed == 1
    gate.release()


def test_expired_deadline_sheds_immediately():
    gate = AdmissionController(4)
    with pytest.raises(DeadlineExceededError):
        gate.acquire(deadline=time.perf_counter() - 0.001)
    assert gate.inflight == 0


def test_overload_timeout_still_rejects_without_deadline():
    gate = AdmissionController(1, timeout_s=0.02)
    gate.acquire()
    with pytest.raises(ServiceOverloadError):
        gate.acquire()
    gate.release()


def test_wait_idle_drains():
    gate = AdmissionController(2)
    gate.acquire()
    assert not gate.wait_idle(timeout_s=0.02)
    threading.Timer(0.05, gate.release).start()
    assert gate.wait_idle(timeout_s=2.0)


# ----------------------------------------------------------------------
# Adaptive coalesce window
# ----------------------------------------------------------------------
def test_adaptive_window_bounded_by_fixed_window():
    engine = make_engine()
    sched = CoalescingScheduler(
        engine, window_s=0.002, adaptive=True, target_batch=8
    )
    # Cold estimator: the fixed window is the fallback and the bound.
    assert sched.current_window_s() == 0.002
    sched._arrivals.observe(now=0.0)
    sched._arrivals.observe(now=0.00001)  # 10 us gaps -> tiny window
    assert sched.current_window_s() < 0.002
    sched._arrivals.observe(now=10.0)  # huge gap -> capped at window_s
    assert sched.current_window_s() == 0.002


def test_fixed_window_unchanged_without_adaptive():
    engine = make_engine()
    sched = CoalescingScheduler(engine, window_s=0.003, adaptive=False)
    sched._arrivals.observe(now=0.0)
    sched._arrivals.observe(now=5.0)
    assert sched.current_window_s() == 0.003


# ----------------------------------------------------------------------
# submit_qos end to end
# ----------------------------------------------------------------------
def _topk(engine, qvec, k=5):
    return engine.query("corpus").esimilar("emb", qvec, model=MODEL, top_k=k)


def test_submit_qos_no_deadline_matches_submit():
    engine = make_engine()
    service = QueryService(engine, result_cache_size=0)
    qvec = unit_vectors(1, DIM, stream="qos/basic")[0]
    response = service.submit_qos(_topk(engine, qvec))
    assert not response.degraded
    assert response.precision == "fp32"
    assert response.deadline_met is None
    assert response.latency_s > 0
    serial = _topk(engine, qvec).execute()
    assert_tables_equal(serial, response.table, context="submit_qos")


def test_submit_returns_plain_table():
    engine = make_engine()
    service = QueryService(engine)
    qvec = unit_vectors(1, DIM, stream="qos/plain")[0]
    table = service.submit(_topk(engine, qvec))
    assert table.num_rows == 5


def test_generous_deadline_met_and_counted():
    engine = make_engine()
    service = QueryService(engine)
    qvec = unit_vectors(1, DIM, stream="qos/met")[0]
    response = service.submit_qos(_topk(engine, qvec), deadline_s=30.0)
    assert response.deadline_met is True
    snap = service.stats_snapshot()["qos"]
    assert snap["with_deadline"] == 1
    assert snap["deadline_met"] == 1


def test_degrades_under_recall_floor_instead_of_shedding():
    engine = make_engine()
    service = QueryService(engine)
    # Warm the tracker with an inflated execution-time estimate so a
    # modest deadline becomes provably unmeetable at full precision.
    for _ in range(service.qos_tracker.min_samples):
        service.qos_tracker.observe("full", 10.0)
    qvec = unit_vectors(1, DIM, stream="qos/degrade")[0]
    response = service.submit_qos(
        _topk(engine, qvec), deadline_s=5.0, min_recall=0.9
    )
    assert response.degraded
    assert response.precision in ("int8", "pq")
    assert response.table.num_rows == 5
    assert "similarity" in response.table.schema.names
    assert service.stats_snapshot()["qos"]["degraded"] == 1


def test_sheds_unmeetable_without_recall_floor():
    engine = make_engine()
    service = QueryService(engine)
    for _ in range(service.qos_tracker.min_samples):
        service.qos_tracker.observe("full", 10.0)
    qvec = unit_vectors(1, DIM, stream="qos/shed")[0]
    with pytest.raises(DeadlineExceededError):
        service.submit_qos(_topk(engine, qvec), deadline_s=5.0)
    assert service.stats_snapshot()["qos"]["shed_unmeetable"] == 1


def test_degraded_result_not_cached_as_exact():
    engine = make_engine()
    service = QueryService(engine)
    for _ in range(service.qos_tracker.min_samples):
        service.qos_tracker.observe("full", 10.0)
    qvec = unit_vectors(1, DIM, stream="qos/nocache")[0]
    degraded = service.submit_qos(
        _topk(engine, qvec), deadline_s=5.0, min_recall=0.9
    )
    assert degraded.degraded
    # The same query without a deadline must execute at full precision —
    # a cache hit off the degraded run would be a silent approximation.
    exact = service.submit_qos(_topk(engine, qvec))
    assert not exact.degraded
    assert not exact.cache_hit
    serial = _topk(engine, qvec).execute()
    assert_tables_equal(serial, exact.table, context="post-degrade")


def test_cold_tracker_never_sheds():
    engine = make_engine()
    service = QueryService(engine)
    qvec = unit_vectors(1, DIM, stream="qos/cold")[0]
    # Tight-but-feasible deadline on a cold service: must execute, not shed.
    response = service.submit_qos(_topk(engine, qvec), deadline_s=10.0)
    assert response.table.num_rows == 5


def test_shutdown_drains_inflight():
    engine = make_engine()
    service = QueryService(engine, max_inflight=2)
    qvec = unit_vectors(1, DIM, stream="qos/drain")[0]
    done = threading.Event()

    def worker() -> None:
        service.submit(_topk(engine, qvec))
        done.set()

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    assert service.shutdown(drain=True, timeout_s=5.0)
    assert done.is_set()
    from repro.errors import ServiceError

    with pytest.raises(ServiceError):
        service.submit(_topk(engine, qvec))


def test_stats_snapshot_has_qos_section():
    engine = make_engine()
    service = QueryService(engine)
    snap = service.stats_snapshot()
    assert "qos" in snap
    for key in (
        "with_deadline",
        "shed_expired",
        "shed_unmeetable",
        "degraded",
        "deadline_met",
        "deadline_missed",
        "exec_estimates",
    ):
        assert key in snap["qos"]
