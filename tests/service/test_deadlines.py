"""Deadline edge cases: expiry at submit / queued / executing, inversion."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from _service_utils import DIM, MODEL, assert_tables_equal, make_engine
from repro.errors import DeadlineExceededError
from repro.service import QueryService
from repro.workloads import unit_vectors

pytestmark = [pytest.mark.service, pytest.mark.qos]


def _topk(engine, qvec, k=5):
    return engine.query("corpus").esimilar("emb", qvec, model=MODEL, top_k=k)


def test_deadline_expired_at_submit_sheds_before_admission():
    engine = make_engine()
    service = QueryService(engine)
    qvec = unit_vectors(1, DIM, stream="dl/expired")[0]
    with pytest.raises(DeadlineExceededError):
        service.submit_qos(_topk(engine, qvec), deadline_s=-0.001)
    snap = service.stats_snapshot()
    assert snap["qos"]["shed_expired"] == 1
    assert snap["qos"]["with_deadline"] == 1
    # Never admitted: the failure is pre-execution by construction.
    assert snap["service"]["submitted"] == 0
    assert snap["admission"]["deadline_shed"] == 1


def test_deadline_expiring_while_queued_sheds():
    engine = make_engine()
    service = QueryService(engine, max_inflight=1, admission_timeout_s=5.0)
    qvec = unit_vectors(2, DIM, stream="dl/queued")
    service.admission.acquire()  # hold the only slot
    try:
        start = time.perf_counter()
        with pytest.raises(DeadlineExceededError):
            service.submit_qos(_topk(engine, qvec[0]), deadline_s=0.05)
        waited = time.perf_counter() - start
        assert waited < 2.0  # shed at the deadline, not the 5 s timeout
        assert service.stats_snapshot()["qos"]["shed_expired"] == 1
    finally:
        service.admission.release()
    # The slot is usable again afterwards.
    response = service.submit_qos(_topk(engine, qvec[1]))
    assert response.table.num_rows == 5


def test_deadline_expiring_while_executing_returns_late_result():
    engine = make_engine()
    service = QueryService(engine)
    # Force execution to outlast the deadline while keeping the deadline
    # wide enough to clear admission: the cold tracker admits the query,
    # it runs long, and must come back flagged late rather than be
    # discarded mid-flight.
    real_execute = service._execute

    def slow_execute(plan, tag):
        time.sleep(0.08)
        return real_execute(plan, tag)

    service._execute = slow_execute
    qvec = unit_vectors(1, DIM, stream="dl/late")[0]
    response = service.submit_qos(_topk(engine, qvec), deadline_s=0.02)
    assert response.deadline_met is False
    assert not response.degraded
    serial = _topk(engine, qvec).execute()
    assert_tables_equal(serial, response.table, context="late result")
    snap = service.stats_snapshot()["qos"]
    assert snap["deadline_missed"] == 1
    assert snap["shed_expired"] == 0


def test_tight_deadline_singleton_overtakes_waiting_batch():
    """Priority inversion guard: a tight-deadline high-priority singleton
    submitted while low-priority work queues for the only slot must be
    admitted ahead of every earlier-arrived batch waiter."""
    engine = make_engine()
    service = QueryService(
        engine, max_inflight=1, coalesce=False, result_cache_size=0
    )
    vecs = unit_vectors(6, DIM, stream="dl/inversion")
    order: list[str] = []
    order_lock = threading.Lock()
    service.admission.acquire()  # stall everything behind one held slot
    batch_threads = []

    def batch(i: int) -> None:
        service.submit_qos(_topk(engine, vecs[i]), priority=0)
        with order_lock:
            order.append(f"batch-{i}")

    for i in range(4):
        thread = threading.Thread(target=batch, args=(i,), daemon=True)
        thread.start()
        batch_threads.append(thread)
    time.sleep(0.1)  # let the batch park in the admission queue

    def singleton() -> None:
        service.submit_qos(
            _topk(engine, vecs[5]), deadline_s=10.0, priority=10
        )
        with order_lock:
            order.append("singleton")

    sthread = threading.Thread(target=singleton, daemon=True)
    sthread.start()
    time.sleep(0.05)
    service.admission.release()  # open the gate: highest priority first
    sthread.join(timeout=5.0)
    for thread in batch_threads:
        thread.join(timeout=5.0)
    assert order[0] == "singleton", f"priority inversion: order={order}"
    assert len(order) == 5


def test_degraded_flag_carried_through_session_and_snapshot():
    engine = make_engine()
    service = QueryService(engine)
    for _ in range(service.qos_tracker.min_samples):
        service.qos_tracker.observe("full", 10.0)
    qvec = unit_vectors(1, DIM, stream="dl/flag")[0]
    with service.session("edge") as session:
        response = session.execute_qos(
            _topk(engine, qvec), deadline_s=5.0, min_recall=0.9
        )
    assert response.degraded is True
    assert response.precision in ("int8", "pq")
    assert response.deadline_met is True
    snap = service.stats_snapshot()["qos"]
    assert snap["degraded"] == 1
    # Degraded responses are explicit, never silent: the plain-submit
    # path (exactness contract) refuses to degrade at all.
    table = service.submit(_topk(engine, qvec))
    serial = _topk(engine, qvec).execute()
    assert_tables_equal(serial, table, context="plain submit after degrade")


def test_degraded_scores_are_exact_for_emitted_rows():
    """Degradation may *miss* neighbours, but the rows it does emit carry
    exact fp32 scores (quantized scan + exact re-rank contract)."""
    engine = make_engine()
    service = QueryService(engine)
    for _ in range(service.qos_tracker.min_samples):
        service.qos_tracker.observe("full", 10.0)
    qvec = unit_vectors(1, DIM, stream="dl/scores")[0]
    response = service.submit_qos(
        _topk(engine, qvec, k=3), deadline_s=5.0, min_recall=0.9
    )
    assert response.degraded
    serial = _topk(engine, qvec, k=3).execute()
    serial_scores = {
        int(i): float(s)
        for i, s in zip(serial.array("id"), serial.array("similarity"))
    }
    for row_id, score in zip(
        response.table.array("id"), response.table.array("similarity")
    ):
        if int(row_id) in serial_scores:
            assert score == np.float32(serial_scores[int(row_id)])
