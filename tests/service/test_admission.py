"""Admission controller: bounded concurrency and backpressure."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ServiceError, ServiceOverloadError
from repro.service import AdmissionController

pytestmark = pytest.mark.service


def test_admits_up_to_limit():
    gate = AdmissionController(3)
    for _ in range(3):
        gate.acquire()
    assert gate.inflight == 3
    for _ in range(3):
        gate.release()
    assert gate.inflight == 0
    assert gate.stats.admitted == 3
    assert gate.stats.completed == 3
    assert gate.stats.peak_inflight == 3


def test_rejects_on_timeout():
    gate = AdmissionController(1, timeout_s=0.02)
    gate.acquire()
    with pytest.raises(ServiceOverloadError):
        gate.acquire()
    assert gate.stats.rejected == 1
    gate.release()
    gate.acquire()  # slot is free again


def test_blocked_submission_proceeds_when_slot_frees():
    gate = AdmissionController(1, timeout_s=5.0)
    gate.acquire()
    acquired = threading.Event()

    def waiter():
        gate.acquire()
        acquired.set()

    thread = threading.Thread(target=waiter, daemon=True)
    thread.start()
    time.sleep(0.02)
    assert not acquired.is_set()
    gate.release()
    assert acquired.wait(timeout=2.0)
    assert gate.stats.queue_wait_seconds > 0
    gate.release()


def test_release_without_acquire_raises():
    gate = AdmissionController(2)
    with pytest.raises(ServiceError):
        gate.release()


def test_invalid_limit_rejected():
    with pytest.raises(ServiceError):
        AdmissionController(0)


def test_many_threads_never_exceed_limit():
    gate = AdmissionController(4, timeout_s=10.0)
    observed = []
    lock = threading.Lock()

    def worker():
        for _ in range(5):
            gate.acquire()
            with lock:
                observed.append(gate.inflight)
            time.sleep(0.001)
            gate.release()

    threads = [threading.Thread(target=worker, daemon=True) for _ in range(12)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert max(observed) <= 4
    assert gate.stats.peak_inflight <= 4
    assert gate.stats.completed == 60
