"""Plan cache: parameterized fingerprints and template substitution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra.logical import plan_equal
from repro.algebra.optimizer import Optimizer
from repro.service import PlanCache, fingerprint, parameterize, substitute

from _service_utils import MODEL

pytestmark = pytest.mark.service


def _topk_plan(engine, qvec, k=5):
    return engine.query("corpus").esimilar("emb", qvec, model=MODEL, top_k=k).plan


def test_same_shape_same_fingerprint(service_engine, query_vectors):
    key_a, params_a = fingerprint(_topk_plan(service_engine, query_vectors[0]))
    key_b, params_b = fingerprint(_topk_plan(service_engine, query_vectors[1]))
    assert key_a == key_b
    assert not np.array_equal(params_a[0], params_b[0])


def test_different_shapes_different_fingerprints(service_engine, query_vectors):
    q = query_vectors[0]
    top5 = _topk_plan(service_engine, q, k=5)
    top9 = _topk_plan(service_engine, q, k=9)
    threshold = (
        service_engine.query("corpus")
        .esimilar("emb", q, model=MODEL, threshold=0.3)
        .plan
    )
    keys = {fingerprint(p)[0] for p in (top5, top9, threshold)}
    assert len(keys) == 3


def test_parameterize_substitute_roundtrip(service_engine, query_vectors):
    plan = _topk_plan(service_engine, query_vectors[0])
    template, params = parameterize(plan)
    assert len(params) == 1
    rebuilt = substitute(template, params)
    assert plan_equal(rebuilt, plan) or rebuilt.explain() == plan.explain()


def test_cached_optimization_matches_direct(service_engine, query_vectors):
    cache = PlanCache(capacity=8)
    catalog = service_engine.catalog
    for qvec in query_vectors[:4]:
        plan = _topk_plan(service_engine, qvec)
        via_cache, _, _ = cache.optimize(plan, catalog=catalog)
        direct = Optimizer(catalog=catalog).optimize(plan)
        assert via_cache.explain() == direct.explain()
    assert cache.stats.misses == 1
    assert cache.stats.hits == 3


def test_capacity_eviction(service_engine, query_vectors):
    cache = PlanCache(capacity=2)
    catalog = service_engine.catalog
    q = query_vectors[0]
    for k in (1, 2, 3, 4):
        cache.optimize(_topk_plan(service_engine, q, k=k), catalog=catalog)
    assert len(cache) == 2
    assert cache.stats.evictions == 2


def test_filter_constants_are_part_of_the_shape(service_engine, query_vectors):
    from repro.relational import Col

    q = query_vectors[0]
    plan_a = (
        service_engine.query("corpus")
        .where(Col("id") > 10)
        .esimilar("emb", q, model=MODEL, top_k=3)
        .plan
    )
    plan_b = (
        service_engine.query("corpus")
        .where(Col("id") > 99)
        .esimilar("emb", q, model=MODEL, top_k=3)
        .plan
    )
    assert fingerprint(plan_a)[0] != fingerprint(plan_b)[0]
