"""Semantic result cache: exact hits, near-dup hits, TTL, invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import SemanticResultCache, fingerprint, table_versions

from _service_utils import MODEL, assert_tables_equal, make_corpus_table, make_engine

pytestmark = pytest.mark.service


def _key_parts(engine, qvec, **cond):
    plan = engine.query("corpus").esimilar("emb", qvec, model=MODEL, **cond).plan
    fkey, params = fingerprint(plan)
    return fkey, table_versions(plan, engine.catalog), params


def _result(engine, qvec, **cond):
    return (
        engine.query("corpus").esimilar("emb", qvec, model=MODEL, **cond).execute()
    )


def test_exact_hit_returns_same_result(service_engine, query_vectors):
    cache = SemanticResultCache(capacity=8, ttl_s=60.0)
    q = query_vectors[0]
    fkey, versions, params = _key_parts(service_engine, q, top_k=5)
    assert cache.lookup(fkey, versions, params) is None
    result = _result(service_engine, q, top_k=5)
    cache.store(fkey, versions, params, result)
    hit = cache.lookup(fkey, versions, params)
    assert hit is result
    assert cache.stats.exact_hits == 1


def test_same_shape_different_vector_misses(service_engine, query_vectors):
    cache = SemanticResultCache(capacity=8, ttl_s=60.0)
    fkey, versions, params = _key_parts(service_engine, query_vectors[0], top_k=5)
    cache.store(fkey, versions, params, _result(service_engine, query_vectors[0], top_k=5))
    _, _, other_params = _key_parts(service_engine, query_vectors[1], top_k=5)
    assert cache.lookup(fkey, versions, other_params) is None


def test_near_duplicate_hit_is_opt_in(service_engine, query_vectors):
    q = query_vectors[0].astype(np.float32)
    nearby = q + np.float32(1e-4)  # cosine ~ 1.0 but different bits
    exact_only = SemanticResultCache(capacity=8, ttl_s=60.0)
    fkey, versions, params = _key_parts(service_engine, q, top_k=5)
    result = _result(service_engine, q, top_k=5)
    exact_only.store(fkey, versions, params, result)
    _, _, near_params = _key_parts(service_engine, nearby, top_k=5)
    assert exact_only.lookup(fkey, versions, near_params) is None

    near_ok = SemanticResultCache(
        capacity=8, ttl_s=60.0, near_dup_threshold=0.999
    )
    near_ok.store(fkey, versions, params, result)
    hit = near_ok.lookup(fkey, versions, near_params)
    assert hit is result
    assert near_ok.stats.near_hits == 1
    # A genuinely different query still misses.
    _, _, far_params = _key_parts(service_engine, query_vectors[5], top_k=5)
    assert near_ok.lookup(fkey, versions, far_params) is None


def test_ttl_expiry(service_engine, query_vectors, monkeypatch):
    import repro.service.semantic_cache as mod

    now = [1000.0]
    monkeypatch.setattr(mod.time, "monotonic", lambda: now[0])
    cache = SemanticResultCache(capacity=8, ttl_s=10.0)
    fkey, versions, params = _key_parts(service_engine, query_vectors[0], top_k=5)
    cache.store(fkey, versions, params, _result(service_engine, query_vectors[0], top_k=5))
    assert cache.lookup(fkey, versions, params) is not None
    now[0] += 11.0
    assert cache.lookup(fkey, versions, params) is None
    assert cache.stats.expirations == 1
    assert len(cache) == 0


def test_capacity_lru_eviction(service_engine, query_vectors):
    cache = SemanticResultCache(capacity=2, ttl_s=60.0)
    parts = [
        _key_parts(service_engine, query_vectors[i], top_k=5) for i in range(3)
    ]
    results = [_result(service_engine, query_vectors[i], top_k=5) for i in range(3)]
    cache.store(*parts[0], results[0])
    cache.store(*parts[1], results[1])
    assert cache.lookup(*parts[0]) is results[0]  # 0 is now most recent
    cache.store(*parts[2], results[2])  # evicts 1 (least recent)
    assert cache.lookup(*parts[1]) is None
    assert cache.lookup(*parts[0]) is results[0]
    assert cache.lookup(*parts[2]) is results[2]
    assert cache.stats.evictions == 1


def test_table_version_invalidates(service_engine, query_vectors):
    cache = SemanticResultCache(capacity=8, ttl_s=60.0)
    q = query_vectors[0]
    fkey, versions, params = _key_parts(service_engine, q, top_k=5)
    cache.store(fkey, versions, params, _result(service_engine, q, top_k=5))
    # Re-register the table: the version bump changes the key, so the
    # stale entry is unreachable.
    service_engine.catalog.register(
        "corpus", make_corpus_table(stream="svc-tests/v2"), replace=True
    )
    fkey2, versions2, params2 = _key_parts(service_engine, q, top_k=5)
    assert fkey2 == fkey and params2 is not None
    assert versions2 != versions
    assert cache.lookup(fkey2, versions2, params2) is None
    # Eager invalidation frees the stale entry.
    assert cache.invalidate_table("corpus") == 1
    assert len(cache) == 0


def test_precision_config_change_invalidates_service_cache(query_vectors):
    """Quantized scans are approximate for top-k, so results cached under
    one precision config must not be served after the config changes."""
    import repro.config as config_mod

    engine = make_engine()
    service = engine.serve(coalesce=False)
    builder = lambda: engine.query("corpus").esimilar(
        "emb", query_vectors[0], model=MODEL, top_k=4
    )
    service.submit(builder())
    service.submit(builder())
    assert service.stats.result_cache_hits == 1
    original = config_mod.get_config().default_precision
    config_mod.configure(default_precision="int8")
    try:
        refreshed = service.submit(builder())  # key changed: re-executes
        assert service.stats.result_cache_hits == 1
        serial = builder().execute()
        assert_tables_equal(refreshed, serial, context="post-config-change")
    finally:
        config_mod.configure(default_precision=original)


def test_service_level_cache_correctness(query_vectors):
    """End-to-end: cached service results equal fresh serial execution,
    and invalidation by re-registration yields the new data's results."""
    engine = make_engine()
    service = engine.serve(coalesce=False)
    q = query_vectors[0]

    def run():
        with service.session() as session:
            return session.execute(
                session.query("corpus").esimilar("emb", q, model=MODEL, top_k=4)
            )

    first, second = run(), run()
    assert service.stats.result_cache_hits == 1
    assert_tables_equal(first, second, context="cache hit")

    engine.catalog.register(
        "corpus", make_corpus_table(stream="svc-tests/regen"), replace=True
    )
    refreshed = run()
    serial = (
        engine.query("corpus").esimilar("emb", q, model=MODEL, top_k=4).execute()
    )
    assert_tables_equal(refreshed, serial, context="post-invalidation")
