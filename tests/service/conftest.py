"""Shared fixtures for the concurrent query service tests."""

from __future__ import annotations

import numpy as np
import pytest

from _service_utils import DIM, make_engine
from repro.query import Engine
from repro.workloads import unit_vectors


@pytest.fixture()
def service_engine() -> Engine:
    return make_engine()


@pytest.fixture()
def query_vectors() -> np.ndarray:
    return unit_vectors(32, DIM, stream="svc-tests/queries")
