"""Coalescing scheduler: shared scans are bit-identical to serial runs."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.service import QueryService, unwrap_shared_scan

from _service_utils import MODEL, assert_tables_equal

pytestmark = pytest.mark.service


def _serial(engine, qvec, **cond):
    return (
        engine.query("corpus").esimilar("emb", qvec, model=MODEL, **cond).execute()
    )


def _concurrent(service, specs):
    """Run (qvec, cond) specs on one thread each; returns results in order."""
    results = [None] * len(specs)
    errors = []
    barrier = threading.Barrier(len(specs))

    def client(i, qvec, cond):
        try:
            with service.session() as session:
                barrier.wait()
                results[i] = session.execute(
                    session.query("corpus").esimilar(
                        "emb", qvec, model=MODEL, **cond
                    )
                )
        except BaseException as exc:  # surfaced in the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i, q, c), daemon=True)
        for i, (q, c) in enumerate(specs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return results


def test_unwrap_shared_scan_shapes(service_engine, query_vectors):
    q = query_vectors[0]
    plain = service_engine.query("corpus").esimilar(
        "emb", q, model=MODEL, top_k=3
    )
    match = unwrap_shared_scan(plain.optimized_plan())
    assert match is not None and match[1].column == "emb"

    wrapped = plain.select(["id", "similarity"]).limit(2)
    match = unwrap_shared_scan(wrapped.optimized_plan())
    assert match is not None and len(match[0]) == 2

    joined = service_engine.query("corpus").ejoin(
        "other", left_on="emb", right_on="emb", model=MODEL, top_k=2
    )
    assert unwrap_shared_scan(joined.optimized_plan()) is None


def test_coalesced_topk_bit_identical(service_engine, query_vectors):
    serial = [
        _serial(service_engine, q, top_k=5) for q in query_vectors[:12]
    ]
    service = QueryService(
        service_engine, coalesce=True, coalesce_window_s=0.2,
        result_cache_size=0,
    )
    # Deterministic batching for the assertion below: the adaptive
    # gather window otherwise races client-thread ramp-up.
    service.coalescer._inflight_probe = lambda: 12
    got = _concurrent(
        service, [(q, {"top_k": 5}) for q in query_vectors[:12]]
    )
    for i, (a, b) in enumerate(zip(serial, got)):
        assert_tables_equal(a, b, context=f"query {i}")
    snapshot = service.stats_snapshot()
    assert snapshot["coalescer"]["coalesced_queries"] == 12
    assert snapshot["coalescer"]["groups"] < 12  # real batching happened


def test_coalesced_threshold_bit_identical(service_engine, query_vectors):
    specs = [(q, {"threshold": 0.2}) for q in query_vectors[:8]]
    serial = [_serial(service_engine, q, threshold=0.2) for q, _ in specs]
    service = QueryService(
        service_engine, coalesce=True, coalesce_window_s=0.05,
        result_cache_size=0,
    )
    got = _concurrent(service, specs)
    for i, (a, b) in enumerate(zip(serial, got)):
        assert_tables_equal(a, b, context=f"query {i}")


def test_mixed_conditions_and_duplicates(service_engine, query_vectors):
    q0, q1 = query_vectors[0], query_vectors[1]
    specs = [
        (q0, {"top_k": 4}),
        (q0, {"top_k": 4}),  # duplicate vector, duplicate condition
        (q0, {"threshold": 0.1}),  # duplicate vector, other condition
        (q1, {"top_k": 2, "min_similarity": 0.0}),
        (q1, {"threshold": 0.5}),
        (q0, {"top_k": 7}),  # duplicate vector, different k
    ]
    serial = [_serial(service_engine, q, **c) for q, c in specs]
    service = QueryService(
        service_engine, coalesce=True, coalesce_window_s=0.2,
        result_cache_size=0,
    )
    service.coalescer._inflight_probe = lambda: len(specs)
    got = _concurrent(service, specs)
    for i, (a, b) in enumerate(zip(serial, got)):
        assert_tables_equal(a, b, context=f"query {i}")
    assert service.coalescer.stats.deduped_queries >= 1


def test_wrapped_plans_coalesce_and_match_serial(service_engine, query_vectors):
    def build(engine_or_session, q):
        return (
            engine_or_session.query("corpus")
            .esimilar("emb", q, model=MODEL, top_k=6)
            .select(["id", "similarity"])
            .limit(3)
        )

    serial = [build(service_engine, q).execute() for q in query_vectors[:6]]
    service = QueryService(
        service_engine, coalesce=True, coalesce_window_s=0.2,
        result_cache_size=0,
    )
    service.coalescer._inflight_probe = lambda: 6
    results = [None] * 6
    barrier = threading.Barrier(6)

    def client(i):
        with service.session() as session:
            barrier.wait()
            results[i] = session.execute(build(session, query_vectors[i]))

    threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for i, (a, b) in enumerate(zip(serial, results)):
        assert_tables_equal(a, b, context=f"query {i}")
    assert service.coalescer.stats.coalesced_queries == 6


def test_bad_request_does_not_poison_groupmates(service_engine, query_vectors):
    """A request failing in demux/materialize fails alone; queries that
    shared its scan still succeed with correct results."""
    good_builder = service_engine.query("corpus").esimilar(
        "emb", query_vectors[0], model=MODEL, top_k=3
    )
    serial = good_builder.execute()
    bad_builder = (
        service_engine.query("corpus")
        .esimilar("emb", query_vectors[1], model=MODEL, top_k=3)
        .select(["no_such_column"])
    )
    service = QueryService(
        service_engine, coalesce=True, coalesce_window_s=0.2,
        result_cache_size=0,
    )
    service.coalescer._inflight_probe = lambda: 2
    outcome: dict = {}
    barrier = threading.Barrier(2)

    def run(name, builder):
        try:
            barrier.wait()
            outcome[name] = service.submit(builder)
        except Exception as exc:
            outcome[name] = exc

    threads = [
        threading.Thread(target=run, args=("good", good_builder), daemon=True),
        threading.Thread(target=run, args=("bad", bad_builder), daemon=True),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert isinstance(outcome["bad"], Exception)
    assert not isinstance(outcome["good"], Exception), outcome["good"]
    assert_tables_equal(serial, outcome["good"], context="groupmate")


def test_register_index_invalidates_result_cache(service_engine, query_vectors):
    """A new index can change the physical access path, so cached
    results from before the registration must not be served."""
    from repro.index import FlatIndex

    service = QueryService(service_engine, coalesce=False)
    builder = lambda: service_engine.query("corpus").esimilar(
        "emb", query_vectors[0], model=MODEL, top_k=3
    )
    service.submit(builder())
    service.submit(builder())
    assert service.stats.result_cache_hits == 1

    index = FlatIndex(query_vectors.shape[1])
    index.add(service_engine.catalog.get("corpus").array("emb"))
    service_engine.register_index("corpus", "emb", index)
    service.submit(builder())  # key changed: miss, re-executes
    assert service.stats.result_cache_hits == 1


def test_group_error_propagates_to_all_members(
    service_engine, query_vectors, monkeypatch
):
    import repro.service.coalescer as mod

    service = QueryService(
        service_engine, coalesce=True, coalesce_window_s=0.05,
        result_cache_size=0,
    )

    def boom(self, key, requests):
        raise RuntimeError("shared scan exploded")

    monkeypatch.setattr(mod.CoalescingScheduler, "_execute_group", boom)
    errors = []
    barrier = threading.Barrier(4)

    def client(q):
        builder = service_engine.query("corpus").esimilar(
            "emb", q, model=MODEL, top_k=2
        )
        try:
            barrier.wait()
            service.submit(builder)
        except RuntimeError as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(q,), daemon=True)
        for q in query_vectors[:4]
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(errors) == 4
    assert service.stats.failed == 4


def test_fallback_path_still_exact(service_engine, query_vectors, monkeypatch):
    """Force the completeness-guard fallback and check exactness holds."""
    import repro.service.coalescer as mod

    service = QueryService(
        service_engine, coalesce=True, coalesce_window_s=0.05,
        result_cache_size=0,
    )
    original = mod.CoalescingScheduler._demux_topk

    def paranoid(self, normalized, candidates, heap_floor, req, condition, n):
        # Pretend the heap floor proves nothing: always fall back.
        return original(self, normalized, candidates, np.inf, req, condition, n)

    monkeypatch.setattr(mod.CoalescingScheduler, "_demux_topk", paranoid)
    serial = [_serial(service_engine, q, top_k=5) for q in query_vectors[:6]]
    got = _concurrent(
        service, [(q, {"top_k": 5}) for q in query_vectors[:6]]
    )
    for i, (a, b) in enumerate(zip(serial, got)):
        assert_tables_equal(a, b, context=f"query {i}")
    assert service.coalescer.stats.fallbacks >= 1
