"""Latency percentile plumbing in the bench harness (service satellite)."""

from __future__ import annotations

import json

from repro.bench import (
    FigureReport,
    Seconds,
    latency_percentiles,
    median_time,
    time_call,
)


class TestLatencyPercentiles:
    def test_empty(self):
        assert latency_percentiles([]) == {}

    def test_single_sample(self):
        p = latency_percentiles([0.5])
        assert p["p50"] == p["p95"] == p["p99"] == 0.5
        assert p["n"] == 1

    def test_interpolation_and_order(self):
        samples = [i / 100 for i in range(1, 101)]  # 0.01 .. 1.00
        p = latency_percentiles(samples)
        assert abs(p["p50"] - 0.505) < 1e-9
        assert p["p50"] < p["p95"] < p["p99"] <= 1.0
        assert p["n"] == 100

    def test_order_independent(self):
        a = latency_percentiles([3.0, 1.0, 2.0])
        b = latency_percentiles([1.0, 2.0, 3.0])
        assert a == b


class TestSecondsType:
    def test_behaves_like_float(self):
        s = Seconds(1.5, [1.5, 2.0])
        assert s == 1.5
        assert s + 0.5 == 2.0
        assert f"{s:.2f}" == "1.50"
        assert s.samples == (1.5, 2.0)
        assert s.percentiles["n"] == 2

    def test_time_call_carries_samples(self):
        _, seconds = time_call(lambda: None, repeat=4)
        assert isinstance(seconds, Seconds)
        assert len(seconds.samples) == 4
        assert seconds == min(seconds.samples)

    def test_median_time_carries_samples(self):
        _, seconds = median_time(lambda: None, repeat=5)
        assert isinstance(seconds, Seconds)
        assert len(seconds.samples) == 5


class TestReportIntegration:
    def make_report(self) -> FigureReport:
        report = FigureReport("figL", "latency demo", ("series", "seconds"))
        report.add("fast", Seconds(0.01, [0.01, 0.012, 0.02]))
        report.add("slow", Seconds(0.1, [0.1]))  # single sample: no entry
        report.add("plain", 0.5)  # bare float: no entry
        return report

    def test_render_includes_percentile_lines(self):
        text = self.make_report().render()
        assert "latency [fast] seconds:" in text
        assert "p95=" in text
        # single-sample and bare-float cells do not produce noise lines
        assert "latency [slow]" not in text
        assert "latency [plain]" not in text

    def test_json_includes_latency_records(self):
        payload = self.make_report().to_json()
        assert len(payload["latency"]) == 1
        entry = payload["latency"][0]
        assert entry["row_label"] == "fast"
        assert entry["column"] == "seconds"
        assert entry["percentiles"]["n"] == 3
        # the whole payload must stay JSON-serializable
        json.dumps(payload)

    def test_rows_serialize_as_plain_floats(self):
        payload = self.make_report().to_json()
        assert payload["rows"][0][1] == 0.01
