"""Every relative markdown link in README.md and docs/*.md must resolve."""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _markdown_files():
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def test_relative_links_resolve():
    files = _markdown_files()
    if not files:
        pytest.skip("docs only present in a repository checkout")
    broken = []
    for path in files:
        for target in LINK.findall(path.read_text(encoding="utf-8")):
            if "://" in target or target.startswith(("#", "mailto:")):
                continue
            if target.startswith("../../"):
                continue  # GitHub-web path (e.g. the CI badge), not a file
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(f"{path.relative_to(REPO_ROOT)} -> {target}")
    assert not broken, "broken relative links:\n" + "\n".join(broken)


def test_docs_are_linked_from_readme():
    readme = REPO_ROOT / "README.md"
    if not readme.is_file():
        pytest.skip("docs only present in a repository checkout")
    text = readme.read_text(encoding="utf-8")
    for doc in ("docs/ARCHITECTURE.md", "docs/TUNING.md"):
        assert doc in text, f"README.md does not link {doc}"
