"""docs/TUNING.md must stay in sync with src/repro/config.py.

The knob table's contract: every ``REPRO_*`` environment variable the
config module reads appears in the *env* column, every ``ReproConfig``
field (except ``extra``) appears in the *field* column, and each
backticked default equals the field's actual default.
"""

import dataclasses
import re
from pathlib import Path

import pytest

from repro.config import ReproConfig

REPO_ROOT = Path(__file__).resolve().parents[2]
TUNING = REPO_ROOT / "docs" / "TUNING.md"
CONFIG = REPO_ROOT / "src" / "repro" / "config.py"


def _skip_unless_checkout():
    if not TUNING.is_file() or not CONFIG.is_file():
        pytest.skip("docs only present in a repository checkout")


def _table_rows():
    """Parse ``| env | field | type | default | when |`` body rows."""
    rows = []
    for line in TUNING.read_text(encoding="utf-8").splitlines():
        if not line.startswith("|"):
            continue
        cells = [c.strip() for c in line.strip("|").split("|")]
        if len(cells) != 5 or cells[0] in ("env", "---", ""):
            continue
        if set(cells[0]) <= {"-", " "}:  # separator row
            continue
        rows.append(cells)
    return rows


def _backticked(cell):
    match = re.match(r"^`([^`]+)`", cell)
    return match.group(1) if match else None


def test_every_env_knob_is_documented():
    _skip_unless_checkout()
    read_by_config = set(
        re.findall(r'"(REPRO_[A-Z0-9_]+)"', CONFIG.read_text(encoding="utf-8"))
    )
    assert read_by_config, "config.py should read REPRO_* variables"
    documented = {
        _backticked(row[0]) for row in _table_rows() if row[0] != "—"
    }
    missing = read_by_config - documented
    assert not missing, f"env knobs missing from docs/TUNING.md: {sorted(missing)}"


def test_every_config_field_is_documented():
    _skip_unless_checkout()
    fields = {
        f.name for f in dataclasses.fields(ReproConfig) if f.name != "extra"
    }
    documented = {
        _backticked(row[1]) for row in _table_rows() if row[1] != "—"
    }
    missing = fields - documented
    assert not missing, f"config fields missing from docs/TUNING.md: {sorted(missing)}"
    unknown = documented - fields
    assert not unknown, f"docs/TUNING.md documents unknown fields: {sorted(unknown)}"


def test_documented_defaults_match_config():
    _skip_unless_checkout()
    defaults = ReproConfig()
    for row in _table_rows():
        field = _backticked(row[1]) if row[1] != "—" else None
        if field is None:
            continue
        documented = _backticked(row[3])
        assert documented is not None, f"{field}: default not backticked"
        actual = repr(getattr(defaults, field))
        assert documented == actual, (
            f"{field}: docs/TUNING.md says default `{documented}`, "
            f"config.py says `{actual}`"
        )


def test_no_stale_env_names():
    _skip_unless_checkout()
    read_by_config = set(
        re.findall(r'"(REPRO_[A-Z0-9_]+)"', CONFIG.read_text(encoding="utf-8"))
    )
    read_by_config.add("REPRO_BENCH_SMOKE")  # read by benchmarks/_smoke.py
    for row in _table_rows():
        if row[0] == "—":
            continue
        env = _backticked(row[0])
        assert env in read_by_config, (
            f"docs/TUNING.md documents {env}, which nothing reads"
        )
