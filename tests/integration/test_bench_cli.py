"""Unit tests for the benchmark CLI."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, find_benchmarks_dir, main


class TestExperimentTable:
    def test_every_figure_listed(self):
        for fig in ("fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
                    "fig14", "fig15", "fig16", "fig17"):
            assert fig in EXPERIMENTS
        assert "table1" in EXPERIMENTS and "table2" in EXPERIMENTS

    def test_files_exist(self):
        bench_dir = find_benchmarks_dir()
        for filename in EXPERIMENTS.values():
            assert (bench_dir / filename).is_file(), filename


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
