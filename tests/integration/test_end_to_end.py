"""Integration tests: the paper's motivating scenarios, end to end."""

from datetime import date

import pytest

from repro.core import (
    ThresholdCondition,
    TopKCondition,
    ejoin,
    index_join,
    tensor_join,
)
from repro.embedding import EmbeddingStore, FastTextModel, HashingEmbedder, generate_corpus
from repro.index import HNSWIndex
from repro.query import Engine
from repro.relational import Catalog, Col
from repro.workloads import generate_dirty_strings, paired_relations


class TestOnlineDataCleaning:
    """Section II-A-2: joining dirty strings without prior cleaning."""

    @pytest.fixture(scope="class")
    def setup(self):
        wl = generate_dirty_strings(n_feed=300, seed=97)
        model = HashingEmbedder(dim=64, seed=98)
        return wl, model

    def test_top1_join_recovers_exact_and_plural(self, setup):
        wl, model = setup
        feed_texts = wl.feed.array("text").tolist()
        words = wl.catalog.array("word").tolist()
        result = ejoin(
            feed_texts, words, TopKCondition(1), model=model, strategy="tensor"
        )
        best = dict(zip(result.left_ids.tolist(), result.right_ids.tolist()))
        checked = hits = 0
        for feed_id, kind in wl.kinds.items():
            if kind in ("exact", "plural"):
                checked += 1
                if best[feed_id] == wl.truth[feed_id]:
                    hits += 1
        assert checked > 0
        assert hits / checked >= 0.9, f"integration recall {hits}/{checked}"

    def test_misspellings_mostly_recovered(self, setup):
        wl, model = setup
        feed_texts = wl.feed.array("text").tolist()
        words = wl.catalog.array("word").tolist()
        result = ejoin(
            feed_texts, words, TopKCondition(1), model=model, strategy="tensor"
        )
        best = dict(zip(result.left_ids.tolist(), result.right_ids.tolist()))
        misspelled = [f for f, k in wl.kinds.items() if k == "misspelled"]
        hits = sum(1 for f in misspelled if best[f] == wl.truth[f])
        # Untrained subword hashing: most single-edit typos land on target.
        assert hits / max(len(misspelled), 1) >= 0.6


class TestNearDuplicateDetection:
    """Section II-A-3: multi-modal near-duplicate detection over vectors."""

    def test_threshold_join_finds_planted_duplicates(self):
        left, right, truth = paired_relations(
            200, 400, 32, overlap=0.15, noise=0.02, seed=99
        )
        result = tensor_join(left, right, ThresholdCondition(0.95))
        found = result.pairs()
        assert truth <= found
        # Random non-duplicates at 32-D virtually never reach 0.95.
        assert len(found - truth) <= 2

    def test_index_join_agrees_with_scan(self):
        left, right, truth = paired_relations(
            100, 500, 32, overlap=0.2, noise=0.02, seed=100
        )
        index = HNSWIndex(32, m=8, ef_construction=64, ef_search=48, seed=101)
        index.add(right)
        scan = tensor_join(left, right, TopKCondition(1))
        probe = index_join(left, index, TopKCondition(1))
        agreement = len(scan.pairs() & probe.pairs()) / len(scan.pairs())
        assert agreement >= 0.9


class TestDeclarativeHybridQuery:
    """Figure 5's query: relational date filter + similarity join,
    declaratively specified, physically optimized."""

    @pytest.fixture(scope="class")
    def engine(self):
        wl = generate_dirty_strings(n_feed=250, seed=102)
        catalog = Catalog()
        catalog.register("words", wl.catalog)
        catalog.register("feed", wl.feed)
        engine = Engine(catalog)
        engine.models.register("strings", HashingEmbedder(dim=48, seed=103))
        return engine

    def test_query_with_date_filter(self, engine):
        out = (
            engine.query("feed")
            .where(Col("day") > date(2023, 7, 1))
            .ejoin("words", left_on="text", right_on="word", model="strings",
                   top_k=1)
            .select(["text", "word", "similarity"])
            .execute()
        )
        n_after = (
            engine.query("feed").where(Col("day") > date(2023, 7, 1)).execute()
        ).num_rows
        assert out.num_rows == n_after

    def test_filter_reduces_model_cost(self, engine):
        """Selection pushdown before embedding: only surviving tuples are
        embedded (the Figure 1 -> Figure 4 improvement)."""
        model = HashingEmbedder(dim=48, seed=104)
        engine.models.register("counting", model, replace=False)
        (
            engine.query("feed")
            .where(Col("views") > 9000)  # very selective
            .ejoin("words", left_on="text", right_on="word", model="counting",
                   top_k=1)
            .execute()
        )
        n_selected = (
            engine.query("feed").where(Col("views") > 9000).execute().num_rows
        )
        n_words = engine.catalog.get("words").num_rows
        # Embedded distinct strings <= selected feed rows + all words.
        assert model.usage.calls <= n_selected + n_words

    def test_scan_and_index_paths_agree(self, engine):
        model = engine.models.get("strings")
        words = engine.catalog.get("words").array("word").tolist()
        store = EmbeddingStore(model)
        index = HNSWIndex(model.dim, m=8, ef_construction=96, ef_search=96, seed=105)
        index.add(store.embed_items(words))
        engine.register_index("words", "word", index)

        base = engine.query("feed").ejoin(
            "words", left_on="text", right_on="word", model="strings", top_k=1
        )
        scan_result = base.execute()  # auto chooses scan here

        forced = engine.query("feed").ejoin(
            "words", left_on="text", right_on="word", model="strings",
            top_k=1, strategy="index",
        )
        index_result = forced.execute()
        assert forced.last_report.strategies[0].startswith("index")

        pairs = lambda t: set(zip(t.array("text").tolist(), t.array("word").tolist()))
        agreement = len(pairs(scan_result) & pairs(index_result)) / len(
            pairs(scan_result)
        )
        assert agreement >= 0.85


class TestSemanticSimilarityWithTrainedModel:
    """Section VI-A functionality with the trained subword model."""

    def test_synonym_join(self):
        corpus = generate_corpus(
            n_sentences=700,
            sentence_length=(4, 7),
            topics={
                "cooking": ["barbecue", "bbq", "grilling", "roasting", "frying"],
                "music": ["guitar", "piano", "violin", "drums", "melody"],
            },
            seed=106,
        )
        model = FastTextModel(dim=32, window=3, negatives=3, seed=107)
        model.fit(corpus.sentences, epochs=2)
        left = ["barbecue", "guitar"]
        right = ["bbq", "grilling", "piano", "violin"]
        result = ejoin(left, right, TopKCondition(1), model=model, strategy="tensor")
        best = dict(zip(result.left_ids.tolist(), result.right_ids.tolist()))
        assert best[0] in (0, 1)  # barbecue -> bbq or grilling
        assert best[1] in (2, 3)  # guitar -> piano or violin
