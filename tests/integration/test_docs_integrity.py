"""Documentation integrity: DESIGN.md's experiment index must stay in sync
with the benchmark files that actually exist."""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _skip_unless_checkout():
    if not (REPO_ROOT / "DESIGN.md").is_file():
        pytest.skip("docs only present in a repository checkout")


class TestDesignDoc:
    def test_every_referenced_benchmark_exists(self):
        _skip_unless_checkout()
        text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        referenced = set(re.findall(r"benchmarks/(test_\w+\.py)", text))
        assert referenced, "DESIGN.md should reference benchmark files"
        for name in referenced:
            assert (REPO_ROOT / "benchmarks" / name).is_file(), name

    def test_every_figure_has_a_benchmark(self):
        _skip_unless_checkout()
        bench_dir = REPO_ROOT / "benchmarks"
        for fig in range(8, 18):
            matches = list(bench_dir.glob(f"test_fig{fig:02d}_*.py"))
            assert matches, f"no benchmark for figure {fig}"
        assert list(bench_dir.glob("test_table1_*.py"))
        assert list(bench_dir.glob("test_table2_*.py"))

    def test_paper_identity_statement_present(self):
        _skip_unless_checkout()
        text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        assert "Optimizing Context-Enhanced Relational Joins" in text
        assert "2312.01476" in text


class TestExamples:
    def test_examples_exist_and_have_mains(self):
        _skip_unless_checkout()
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3, "need at least three runnable examples"
        for path in examples:
            source = path.read_text(encoding="utf-8")
            assert '__main__' in source, f"{path.name} is not runnable"
            assert source.lstrip().startswith('"""'), (
                f"{path.name} lacks a module docstring"
            )

    def test_readme_mentions_each_example(self):
        _skip_unless_checkout()
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for path in (REPO_ROOT / "examples").glob("*.py"):
            if path.name == "semantic_search_table2.py":
                continue  # listed in the table by name
            assert path.stem in readme or path.name in readme, path.name
