"""Unit tests for global configuration and seeding."""

import numpy as np

from repro.config import ReproConfig, cpu_count, get_config, rng, set_seed


class TestStreams:
    def test_same_stream_same_values(self):
        a = rng("stream-a").standard_normal(4)
        b = rng("stream-a").standard_normal(4)
        assert np.allclose(a, b)

    def test_different_streams_differ(self):
        a = rng("stream-a").standard_normal(4)
        b = rng("stream-b").standard_normal(4)
        assert not np.allclose(a, b)

    def test_seed_changes_streams(self):
        original = get_config().seed
        try:
            set_seed(1)
            a = rng("s").standard_normal(4)
            set_seed(2)
            b = rng("s").standard_normal(4)
            assert not np.allclose(a, b)
        finally:
            set_seed(original)

    def test_stream_seed_deterministic(self):
        cfg = ReproConfig(seed=5)
        assert cfg.stream_seed("x") == cfg.stream_seed("x")
        assert cfg.stream_seed("x") != cfg.stream_seed("y")

    def test_cpu_count_positive(self):
        assert cpu_count() >= 1

    def test_cpu_count_override(self):
        cfg = get_config()
        original = cfg.default_threads
        try:
            cfg.default_threads = 3
            assert cpu_count() == 3
        finally:
            cfg.default_threads = original


class TestEnvOverrides:
    def test_malformed_env_values_do_not_break_import(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-c", "import repro; print('imported-ok')"],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": "src",
                "REPRO_THREADS": "four",
                "REPRO_BUFFER_BUDGET_MB": "1gb",
            },
        )
        assert proc.returncode == 0, proc.stderr
        assert "imported-ok" in proc.stdout

    def test_valid_env_values_apply(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "import repro; c = repro.get_config(); "
                "print(c.default_threads, c.default_buffer_budget_bytes)",
            ],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": "src",
                "REPRO_THREADS": "2",
                "REPRO_BUFFER_BUDGET_MB": "0.5",
            },
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.split() == ["2", "524288"]

    def test_precision_env_applies(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "import repro; c = repro.get_config(); "
                "print(c.default_precision, c.default_rerank_multiple)",
            ],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": "src",
                "REPRO_PRECISION": "int8",
                "REPRO_RERANK_MULTIPLE": "8",
            },
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.split() == ["int8", "8"]

    def test_unknown_precision_warns_and_falls_back(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "import repro; print(repro.get_config().default_precision)",
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "REPRO_PRECISION": "int3"},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "fp32"


class TestConfigure:
    def test_rejects_method_names(self):
        from repro.config import configure

        import pytest

        with pytest.raises(AttributeError, match="rng"):
            configure(rng=42)
        # rng must still be callable afterwards
        from repro.config import rng

        assert rng("still-works").standard_normal(1).shape == (1,)
