"""Cross-substrate integration: all access paths answer the same query.

The paper's architectural claim is that the E-join is *one logical
operator* with interchangeable physical implementations.  These tests pin
that down across every implementation in the repo: scan strategies must be
exactly equal; approximate indexes must agree within their recall envelope;
E-selection must be consistent with a width-1 E-join.
"""

import numpy as np
import pytest

from repro.core import (
    ThresholdCondition,
    TopKCondition,
    ejoin,
    eselect,
    eselect_index,
    index_join,
    tensor_join,
)
from repro.index import FlatIndex, HNSWIndex, IVFFlatIndex
from repro.workloads import clustered_vectors, unit_vectors

DIM = 24


@pytest.fixture(scope="module")
def data():
    base, _ = clustered_vectors(700, DIM, n_clusters=10, noise=0.2, seed=401)
    probes = unit_vectors(40, DIM, seed=402)
    return probes, base


@pytest.fixture(scope="module")
def indexes(data):
    _, base = data
    flat = FlatIndex(DIM)
    flat.add(base)
    hnsw = HNSWIndex(DIM, m=8, ef_construction=96, ef_search=64, seed=403)
    hnsw.add(base)
    ivf = IVFFlatIndex(DIM, nlist=10, nprobe=6, seed=404)
    ivf.add(base)
    return {"flat": flat, "hnsw": hnsw, "ivf": ivf}


class TestScanStrategiesExactlyEqual:
    @pytest.mark.parametrize("strategy", ["nlj", "tensor", "parallel-tensor"])
    def test_threshold(self, data, strategy):
        probes, base = data
        reference = tensor_join(probes, base, ThresholdCondition(0.5)).pairs()
        got = ejoin(probes, base, ThresholdCondition(0.5), strategy=strategy)
        assert got.pairs() == reference


class TestIndexesAgreeWithinRecall:
    @pytest.mark.parametrize("name,floor", [("flat", 1.0), ("hnsw", 0.9), ("ivf", 0.85)])
    def test_topk_recall(self, data, indexes, name, floor):
        probes, base = data
        exact = tensor_join(probes, base, TopKCondition(3)).pairs()
        got = index_join(probes, indexes[name], TopKCondition(3)).pairs()
        assert len(got & exact) / len(exact) >= floor

    @pytest.mark.parametrize("name", ["flat", "hnsw", "ivf"])
    def test_prefilter_respected_everywhere(self, data, indexes, name):
        probes, base = data
        allowed = np.zeros(len(base), dtype=bool)
        allowed[100:300] = True
        result = index_join(
            probes, indexes[name], TopKCondition(2), allowed=allowed
        )
        assert len(result) > 0
        assert all(100 <= r < 300 for r in result.right_ids.tolist())


class TestESelectionConsistency:
    def test_eselect_equals_single_probe_ejoin(self, data):
        """sigma_{E,mu,theta}(R) with query q == E-join of {q} with R."""
        probes, base = data
        query = probes[0]
        sel = eselect(base, query, TopKCondition(5))
        join = tensor_join(
            query[None, :], base, TopKCondition(5), assume_normalized=True
        )
        assert sel.ids.tolist() == join.right_ids.tolist()
        assert np.allclose(sel.scores, join.scores, atol=1e-5)

    def test_eselect_index_matches_scan_on_flat(self, data, indexes):
        probes, base = data
        query = probes[1]
        scan = eselect(base, query, TopKCondition(7))
        probe = eselect_index(indexes["flat"], query, TopKCondition(7))
        assert scan.ids.tolist() == probe.ids.tolist()

    def test_threshold_selection_subset_of_threshold_join(self, data):
        probes, base = data
        cond = ThresholdCondition(0.4)
        join_pairs = tensor_join(probes, base, cond).pairs()
        for i in (0, 3, 9):
            sel = eselect(base, probes[i], cond)
            assert {(i, int(r)) for r in sel.ids} <= join_pairs or set(
                sel.ids.tolist()
            ) == {r for li, r in join_pairs if li == i}
