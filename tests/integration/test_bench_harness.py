"""Unit tests for the benchmark harness."""

import pytest

from repro.bench import FigureReport, median_time, speedup, time_call


class TestTimeCall:
    def test_returns_result_and_time(self):
        result, seconds = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0

    def test_repeat_takes_best(self):
        calls = []

        def fn():
            calls.append(1)
            return len(calls)

        result, _ = time_call(fn, repeat=3)
        assert result == 3
        assert len(calls) == 3

    def test_invalid_repeat(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeat=0)

    def test_median_time(self):
        result, seconds = median_time(lambda: "ok", repeat=3)
        assert result == "ok"
        assert seconds >= 0


class TestSpeedup:
    def test_basic(self):
        assert speedup(2.0, 1.0) == 2.0

    def test_zero_optimized(self):
        assert speedup(1.0, 0.0) == float("inf")


class TestFigureReport:
    def make(self):
        report = FigureReport("figX", "demo", ("a", "b"))
        report.add(1, 2.5)
        report.add("row", 0.000123)
        report.note("a note")
        return report

    def test_row_arity_checked(self):
        report = FigureReport("figX", "demo", ("a", "b"))
        with pytest.raises(ValueError):
            report.add(1)

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "figX" in text
        assert "demo" in text
        assert "a note" in text
        assert "2.5" in text

    def test_float_formatting(self):
        text = self.make().render()
        assert "0.000123" in text

    def test_save(self, tmp_path):
        path = self.make().save(tmp_path)
        assert path.exists()
        assert "figX" in path.read_text()

    def test_empty_report_renders(self):
        report = FigureReport("figY", "empty", ("col",))
        assert "figY" in report.render()
