"""Unit tests for the benchmark harness."""

import json

import numpy as np
import pytest

from repro.bench import FigureReport, git_revision, median_time, speedup, time_call


class TestTimeCall:
    def test_returns_result_and_time(self):
        result, seconds = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert seconds >= 0

    def test_repeat_takes_best(self):
        calls = []

        def fn():
            calls.append(1)
            return len(calls)

        result, _ = time_call(fn, repeat=3)
        assert result == 3
        assert len(calls) == 3

    def test_invalid_repeat(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeat=0)

    def test_median_time(self):
        result, seconds = median_time(lambda: "ok", repeat=3)
        assert result == "ok"
        assert seconds >= 0


class TestSpeedup:
    def test_basic(self):
        assert speedup(2.0, 1.0) == 2.0

    def test_zero_optimized(self):
        assert speedup(1.0, 0.0) == float("inf")


class TestFigureReport:
    def make(self):
        report = FigureReport("figX", "demo", ("a", "b"))
        report.add(1, 2.5)
        report.add("row", 0.000123)
        report.note("a note")
        return report

    def test_row_arity_checked(self):
        report = FigureReport("figX", "demo", ("a", "b"))
        with pytest.raises(ValueError):
            report.add(1)

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "figX" in text
        assert "demo" in text
        assert "a note" in text
        assert "2.5" in text

    def test_float_formatting(self):
        text = self.make().render()
        assert "0.000123" in text

    def test_save(self, tmp_path):
        path = self.make().save(tmp_path)
        assert path.exists()
        assert "figX" in path.read_text()

    def test_empty_report_renders(self):
        report = FigureReport("figY", "empty", ("col",))
        assert "figY" in report.render()


class TestMachineReadableReport:
    def make(self):
        report = FigureReport("figX", "demo", ("name", "seconds"))
        report.add("fp32", np.float32(1.5))  # NumPy scalars must serialize
        report.add("int8", 0.75)
        report.note("provenance note")
        return report

    def test_save_json_writes_bench_file(self, tmp_path):
        path = self.make().save_json(tmp_path)
        assert path.name == "BENCH_figx.json"
        payload = json.loads(path.read_text())
        assert payload["figure"] == "figX"
        assert payload["columns"] == ["name", "seconds"]
        assert payload["rows"] == [["fp32", 1.5], ["int8", 0.75]]
        assert payload["notes"] == ["provenance note"]

    def test_json_carries_config_and_revision(self, tmp_path):
        payload = json.loads(self.make().save_json(tmp_path).read_text())
        assert "precision" in payload["config"]
        assert "buffer_budget_bytes" in payload["config"]
        assert isinstance(payload["git_rev"], str) and payload["git_rev"]
        assert payload["created_at"]

    def test_json_next_to_text_report(self, tmp_path):
        report = self.make()
        report.save(tmp_path)
        report.save_json(tmp_path)
        assert (tmp_path / "figx.txt").exists()
        assert (tmp_path / "BENCH_figx.json").exists()

    def test_git_revision_is_stringy(self):
        rev = git_revision()
        assert isinstance(rev, str) and rev
