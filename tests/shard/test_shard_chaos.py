"""Chaos: killed shard workers respawn, stay exact, and never leak memory."""

from __future__ import annotations

import time

import numpy as np
import pytest

from _shard_utils import KEY, N_ROWS, corpus_vectors, make_engine, normalized_for
from repro.core import PRESCREEN_MARGIN, exact_topk_select
from repro.errors import ShardError
from repro.shard import ShardPool, leaked_segments

pytestmark = [pytest.mark.shard, pytest.mark.chaos]

K = 5
KPAD = K + 32


def _scan(pool, queries):
    nq = len(queries)
    return pool.scan_candidates(
        KEY,
        queries,
        n_rows=N_ROWS,
        topk_rows=list(range(nq)),
        kpad=KPAD,
        thr_rows=[],
        thr_floors=np.empty(0, dtype=np.float32),
        block_rows=512,
        precision="fp32",
    )


def _kill_worker(pool, shard_id: int = 0) -> None:
    proc = pool._workers[shard_id].proc
    proc.kill()
    proc.join(timeout=5.0)
    assert not proc.is_alive()


def test_killed_worker_respawns_and_results_stay_exact(query_vectors):
    vectors = corpus_vectors()
    engine = make_engine(vectors)
    normalized = normalized_for(engine, vectors)
    pool = ShardPool(engine, 2, min_rows=1)
    prefix = pool.segment_prefix
    try:
        first = _scan(pool, query_vectors)
        assert first is not None

        _kill_worker(pool)
        result = _scan(pool, query_vectors)
        assert result is not None

        health = pool.worker_health()
        assert health["worker_deaths"] >= 1
        assert health["respawns"] >= 1
        assert health["alive"] == 2

        all_rows = np.arange(N_ROWS)
        for j, qvec in enumerate(query_vectors):
            ids_ref, scores_ref = exact_topk_select(normalized, all_rows, qvec, K)
            assert result.heap_floor[j] <= np.min(scores_ref) - PRESCREEN_MARGIN
            ids_got, scores_got = exact_topk_select(
                normalized, result.heap_ids[j], qvec, K
            )
            assert np.array_equal(ids_got, ids_ref)
            assert np.array_equal(scores_got, scores_ref)
    finally:
        pool.close()
    assert leaked_segments(prefix) == [], (
        "respawn path leaked shared-memory segments"
    )


def test_respawn_budget_exhaustion_raises_and_still_cleans_up(query_vectors):
    engine = make_engine()
    pool = ShardPool(engine, 2, min_rows=1, max_respawns=0)
    prefix = pool.segment_prefix
    try:
        assert _scan(pool, query_vectors) is not None
        _kill_worker(pool)
        with pytest.raises(ShardError):
            _scan(pool, query_vectors)
        assert pool.stats.errors >= 1
    finally:
        pool.close()
    assert leaked_segments(prefix) == [], (
        "failed fan-out leaked shared-memory segments"
    )


def test_repeated_kills_within_budget_keep_serving(query_vectors):
    engine = make_engine()
    pool = ShardPool(engine, 2, min_rows=1, max_respawns=2)
    prefix = pool.segment_prefix
    try:
        for round_no in range(2):
            _kill_worker(pool, shard_id=round_no % 2)
            # Give the OS a beat to reap before the pool polls liveness.
            time.sleep(0.02)
            result = _scan(pool, query_vectors)
            assert result is not None, f"round {round_no}: scan declined"
            assert result.n_shards == 2
        assert pool.worker_health()["respawns"] >= 2
    finally:
        pool.close()
    assert leaked_segments(prefix) == []
