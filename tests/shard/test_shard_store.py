"""Shared-memory segment publish/attach round-trips and ownership."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import ShardError
from repro.shard import (
    AttachedSegment,
    SegmentOwner,
    SegmentSpec,
    leaked_segments,
)

pytestmark = pytest.mark.shard


class TestSegmentRoundTrip:
    def test_publish_attach_preserves_bits(self):
        owner = SegmentOwner()
        try:
            array = np.arange(96, dtype=np.float32).reshape(12, 8) / 7.0
            spec = owner.publish(array)
            assert spec.shape == (12, 8)
            assert spec.dtype == "float32"
            view = AttachedSegment(spec)
            try:
                assert np.array_equal(view.array, array)
            finally:
                view.close()
        finally:
            owner.close()

    def test_attached_view_is_read_only(self):
        owner = SegmentOwner()
        try:
            view = AttachedSegment(owner.publish(np.zeros(4, dtype=np.int8)))
            try:
                with pytest.raises(ValueError):
                    view.array[0] = 1
            finally:
                view.close()
        finally:
            owner.close()

    def test_spec_pickles_through_the_envelope(self):
        spec = SegmentSpec(name="x", dtype="float16", shape=(3, 5))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.nbytes == 3 * 5 * 2

    def test_attach_after_unlink_raises_shard_error(self):
        owner = SegmentOwner()
        spec = owner.publish(np.ones(8))
        owner.unlink(spec.name)
        with pytest.raises(ShardError):
            AttachedSegment(spec)


class TestOwnership:
    def test_unlink_is_idempotent_and_close_clears_all(self):
        owner = SegmentOwner()
        specs = [owner.publish(np.full(16, i, dtype=np.int64)) for i in range(3)]
        assert owner.segment_names() == sorted(s.name for s in specs)
        assert leaked_segments(owner.prefix) == sorted(s.name for s in specs)
        owner.unlink(specs[0].name)
        owner.unlink(specs[0].name)
        owner.close()
        owner.close()
        assert owner.segment_names() == []
        assert leaked_segments(owner.prefix) == []

    def test_worker_close_does_not_unlink(self):
        owner = SegmentOwner()
        try:
            spec = owner.publish(np.arange(5))
            view = AttachedSegment(spec)
            view.close()
            # Owner's copy survives a reader detach; a fresh attach works.
            again = AttachedSegment(spec)
            assert np.array_equal(again.array, np.arange(5))
            again.close()
        finally:
            owner.close()
        assert leaked_segments(owner.prefix) == []
