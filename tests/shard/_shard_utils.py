"""Helpers shared by the shard test modules.

The tiled corpus is the adversarial fixture: every vector appears twice,
once in each half, so a 2-shard split puts an equal-score duplicate of
every row on the far side of the shard boundary.  Any tie-break drift
between the sharded and serial paths shows up immediately.
"""

from __future__ import annotations

import numpy as np

from repro.embedding import HashingEmbedder
from repro.query import Engine
from repro.relational import Catalog, DataType, Field, Table
from repro.relational.column import Column
from repro.workloads import unit_vectors

DIM = 16
N_ROWS = 4_000
MODEL = "m"
KEY = ("corpus", "emb", MODEL)


def corpus_vectors(
    n: int = N_ROWS, *, tiled: bool = True, stream: str = "shard-tests/base"
) -> np.ndarray:
    """``n`` unit vectors; tiled => second half duplicates the first."""
    if tiled:
        half = unit_vectors(n // 2, DIM, stream=stream)
        return np.concatenate([half, half], axis=0)
    return unit_vectors(n, DIM, stream=stream)


def make_engine(vectors: np.ndarray | None = None) -> Engine:
    vectors = corpus_vectors() if vectors is None else vectors
    table = Table.from_columns(
        [
            Column(Field("id", DataType.INT64), np.arange(len(vectors))),
            Column(Field("emb", DataType.TENSOR, dim=DIM), vectors),
        ]
    )
    catalog = Catalog()
    catalog.register("corpus", table)
    engine = Engine(catalog)
    engine.models.register(MODEL, HashingEmbedder(dim=DIM))
    return engine


def normalized_for(engine: Engine, vectors: np.ndarray) -> np.ndarray:
    """The engine's normalized scan matrix for the corpus key."""
    ctx = engine.context(tag="shard-tests")
    return ctx.normalized_matrix_for(KEY, vectors)
