"""ShardPool: fan-out exactness across precisions, costing, and hygiene.

Exactness here means the end-to-end contract: pool candidates are
provable supersets, and the front door's float64 exact rescore over them
(:func:`exact_topk_select` / :func:`exact_threshold_select`) yields ids
and scores bit-identical to the same rescore over *all* rows — for every
published precision, on a corpus built so every score ties across the
shard boundary.
"""

from __future__ import annotations

import numpy as np
import pytest

from _shard_utils import KEY, N_ROWS, corpus_vectors, make_engine, normalized_for
from repro.core import PRESCREEN_MARGIN, exact_threshold_select, exact_topk_select
from repro.shard import SHARD_PRECISIONS, ShardPool, leaked_segments

pytestmark = pytest.mark.shard

K = 5
KPAD = K + 32
THRESHOLD = 0.2
BLOCK_ROWS = 512


@pytest.fixture(scope="module")
def setup():
    vectors = corpus_vectors()
    engine = make_engine(vectors)
    pool = ShardPool(engine, 2, min_rows=1)
    yield engine, pool, normalized_for(engine, vectors)
    pool.close()


def _scan(pool, queries, precision="fp32", *, kpad=KPAD):
    nq = len(queries)
    return pool.scan_candidates(
        KEY,
        queries,
        n_rows=N_ROWS,
        topk_rows=list(range(nq)),
        kpad=kpad,
        thr_rows=list(range(nq)),
        thr_floors=np.full(nq, THRESHOLD - PRESCREEN_MARGIN, dtype=np.float32),
        block_rows=BLOCK_ROWS,
        precision=precision,
    )


class TestExactness:
    @pytest.mark.parametrize("precision", SHARD_PRECISIONS)
    def test_rescored_results_bit_identical_to_serial(
        self, setup, query_vectors, precision
    ):
        engine, pool, normalized = setup
        result = _scan(pool, query_vectors, precision)
        assert result is not None, "pool declined a fan-out-worthy scan"
        assert result.n_shards == 2
        assert result.rows == N_ROWS  # the shards partition every row once
        all_rows = np.arange(N_ROWS)
        compared = 0
        for j, qvec in enumerate(query_vectors):
            ids_ref, scores_ref = exact_topk_select(normalized, all_rows, qvec, K)
            kth = np.min(scores_ref) if len(scores_ref) else -np.inf
            # Soundness first, for every precision: any row the shards
            # dropped must provably score at or below the merged floor.
            dropped = np.setdiff1d(all_rows, result.heap_ids[j])
            exact_dropped = normalized[dropped] @ np.asarray(
                qvec, dtype=np.float64
            )
            assert np.all(exact_dropped <= result.heap_floor[j] + 1e-5), (
                f"query {j} precision {precision}: dropped row beats the "
                f"merged heap floor"
            )
            # Threshold hits are supersets independent of the top-k floor,
            # so their exact rescore is bitwise-stable for every precision.
            thr_ids_ref, thr_scores_ref = exact_threshold_select(
                normalized, all_rows, qvec, THRESHOLD
            )
            thr_ids_got, thr_scores_got = exact_threshold_select(
                normalized, result.thr_hits[j], qvec, THRESHOLD
            )
            assert np.array_equal(thr_ids_got, thr_ids_ref)
            assert np.array_equal(thr_scores_got, thr_scores_ref)
            if result.heap_floor[j] > kth - PRESCREEN_MARGIN:
                # The front door detects that the widened floor cannot
                # prove the candidate set complete and falls back to the
                # serial path — trivially exact.  fp32 has a zero error
                # bound, so it must never need that escape hatch.
                assert precision != "fp32", (
                    f"query {j}: fp32 merged heap floor above the exact "
                    f"k-th score"
                )
                continue
            compared += 1
            ids_got, scores_got = exact_topk_select(
                normalized, result.heap_ids[j], qvec, K
            )
            assert np.array_equal(ids_got, ids_ref), (
                f"query {j} precision {precision}: top-{K} ids diverge"
            )
            assert np.array_equal(scores_got, scores_ref)
        if precision != "pq":
            # PQ's coarse error bound can legitimately push every query
            # onto the fallback path at this corpus size; the tighter
            # precisions must exercise the candidate rescore.
            assert compared > 0, (
                f"precision {precision}: every query fell back; the "
                f"candidate path went untested"
            )

    def test_cross_boundary_duplicates_both_kept(self, setup, query_vectors):
        _, pool, normalized = setup
        result = _scan(pool, query_vectors)
        half = N_ROWS // 2
        for j, qvec in enumerate(query_vectors):
            ids, _ = exact_topk_select(normalized, result.heap_ids[j], qvec, K)
            # Every selected row's equal-scoring twin lives in the other
            # shard; with K an odd count some pairs split, but at least
            # one duplicate pair must have been kept whole.
            pairs = sum(
                1 for i in ids if (i + half) % N_ROWS in set(ids)
            )
            assert pairs >= 2, f"query {j}: no cross-shard tie pair survived"


class TestCosting:
    def test_small_tables_stay_in_process(self, query_vectors):
        engine = make_engine()
        pool = ShardPool(engine, 2)  # production min_rows floor applies
        try:
            assert not pool.should_shard(N_ROWS, len(query_vectors), 16)
            assert _scan(pool, query_vectors) is None
            assert pool.stats.declined == 1
        finally:
            pool.close()

    def test_empty_query_batch_declines(self, setup):
        _, pool, _ = setup
        empty = np.empty((0, 16), dtype=np.float32)
        assert _scan(pool, empty) is None


class TestHygiene:
    def test_health_stats_and_segments(self, setup, query_vectors):
        _, pool, _ = setup
        _scan(pool, query_vectors)
        health = pool.worker_health()
        assert health["procs"] == 2
        assert health["alive"] == 2
        assert health["worker_deaths"] == 0
        snap = pool.stats_snapshot()
        assert snap["scans"] >= 1
        assert snap["segments"] >= 1
        assert snap["rows_scanned"] >= N_ROWS

    def test_close_unlinks_everything_and_is_idempotent(self, query_vectors):
        engine = make_engine()
        pool = ShardPool(engine, 2, min_rows=1)
        _scan(pool, query_vectors)
        prefix = pool.segment_prefix
        assert leaked_segments(prefix) != []
        pool.close()
        pool.close()
        assert leaked_segments(prefix) == []
        assert _scan(pool, query_vectors) is None  # closed pools decline
