"""ShardMap partitioning and its catalog-version-keyed cache."""

from __future__ import annotations

import pytest

from _shard_utils import make_engine
from repro.errors import SchemaError
from repro.relational.catalog import ShardMap

pytestmark = pytest.mark.shard


class TestShardMapBuild:
    def test_ranges_cover_rows_exactly_once_in_order(self):
        for n_rows, n_shards in ((0, 1), (1, 1), (7, 3), (100, 8), (8, 16)):
            shard_map = ShardMap.build("t", 1, n_rows, n_shards)
            assert shard_map.n_shards == n_shards
            cursor = 0
            for start, stop in shard_map.ranges:
                assert start == cursor
                assert stop >= start
                cursor = stop
            assert cursor == n_rows

    def test_ranges_balanced_to_within_one_row(self):
        shard_map = ShardMap.build("t", 1, 1001, 4)
        sizes = [stop - start for start, stop in shard_map.ranges]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 1001

    def test_bad_arguments_raise(self):
        with pytest.raises(SchemaError):
            ShardMap.build("t", 1, 10, 0)
        with pytest.raises(SchemaError):
            ShardMap.build("t", 1, -1, 2)


class TestCatalogShardMaps:
    def test_cached_per_name_version_and_shard_count(self):
        engine = make_engine()
        catalog = engine.catalog
        first = catalog.shard_map("corpus", 4)
        assert catalog.shard_map("corpus", 4) is first
        assert catalog.shard_map("corpus", 2) is not first
        assert first.version == catalog.version("corpus")

    def test_version_bump_invalidates(self):
        engine = make_engine()
        catalog = engine.catalog
        stale = catalog.shard_map("corpus", 2)
        catalog.register("corpus", catalog.get("corpus"), replace=True)
        fresh = catalog.shard_map("corpus", 2)
        assert fresh is not stale
        assert fresh.version == stale.version + 1
