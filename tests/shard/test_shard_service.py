"""QueryService with shard workers: bit-identical results, health, metrics."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from _shard_utils import MODEL, corpus_vectors, make_engine
from repro.service import QueryService
from repro.shard import leaked_segments
from repro.workloads import unit_vectors

pytestmark = pytest.mark.shard

# Large enough that the cost model fans out even a single-query group.
N_ROWS = 20_000
K = 7
CLIENTS = 8
QUERIES = 16


@pytest.fixture(scope="module")
def sharded_setup():
    vectors = corpus_vectors(N_ROWS)
    engine = make_engine(vectors)
    service = QueryService(
        engine,
        coalesce=True,
        coalesce_window_s=0.002,
        max_inflight=64,
        shard_procs=2,
    )
    # The test corpus sits near the production min-rows floor; pin it
    # below so every group exercises the fan-out.
    service.shard_pool.min_rows = 1
    queries = unit_vectors(QUERIES, 16, stream="shard-svc/queries").astype(
        np.float32
    )
    serial_engine = make_engine(vectors)
    reference = [
        serial_engine.query("corpus")
        .esimilar("emb", q, model=MODEL, top_k=K)
        .execute()
        for q in queries
    ]
    yield engine, service, queries, reference
    service.shutdown()


def _run_concurrent(engine, service, queries):
    results = [None] * len(queries)
    errors = []
    barrier = threading.Barrier(CLIENTS)
    chunks = [list(range(i, len(queries), CLIENTS)) for i in range(CLIENTS)]

    def client(chunk):
        try:
            with service.session() as session:
                barrier.wait()
                for qi in chunk:
                    results[qi] = session.execute(
                        engine.query("corpus").esimilar(
                            "emb", queries[qi], model=MODEL, top_k=K
                        )
                    )
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(c,), daemon=True) for c in chunks
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return results


class TestShardedService:
    def test_results_bit_identical_to_serial(self, sharded_setup):
        engine, service, queries, reference = sharded_setup
        results = _run_concurrent(engine, service, queries)
        for i, (ref, got) in enumerate(zip(reference, results)):
            assert got.schema.names == ref.schema.names
            for name in ref.schema.names:
                assert np.array_equal(got.array(name), ref.array(name)), (
                    f"query {i}: column {name!r} diverges from serial"
                )
        snap = service.stats_snapshot()
        assert snap["shard"]["procs"] == 2
        assert snap["shard"]["scans"] >= 1, "no group took the shard path"
        assert snap["shard"]["errors"] == 0
        assert snap["coalescer"]["sharded_groups"] >= 1

    def test_health_reports_worker_block(self, sharded_setup):
        _, service, _, _ = sharded_setup
        health = service.health()
        assert health.shard["procs"] == 2
        assert health.shard["alive"] == 2
        assert health.shard["worker_deaths"] == 0
        assert health.as_dict()["shard"]["procs"] == 2

    def test_metrics_expose_shard_gauges(self, sharded_setup):
        _, service, _, _ = sharded_setup
        text = service.metrics()
        assert "repro_shard_procs" in text
        assert "repro_shard_scans" in text
        assert "repro_shard_alive" in text


def test_shutdown_releases_all_segments():
    engine = make_engine()  # default 4k corpus
    service = QueryService(engine, coalesce=True, shard_procs=2)
    service.shard_pool.min_rows = 1
    prefix = service.shard_pool.segment_prefix
    queries = unit_vectors(4, 16, stream="shard-svc/shutdown").astype(np.float32)
    with service.session() as session:
        for q in queries:
            session.execute(
                engine.query("corpus").esimilar("emb", q, model=MODEL, top_k=3)
            )
    service.shutdown()
    assert leaked_segments(prefix) == []


def test_service_without_shard_procs_has_no_pool():
    engine = make_engine()
    service = QueryService(engine, coalesce=True)
    try:
        assert service.shard_pool is None
        assert service.health().shard == {}
        assert "shard" not in service.stats_snapshot()
    finally:
        service.shutdown()
