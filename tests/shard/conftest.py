"""Fixtures for the sharded-execution test suite."""

from __future__ import annotations

import numpy as np
import pytest

from _shard_utils import DIM
from repro.workloads import unit_vectors


@pytest.fixture()
def query_vectors() -> np.ndarray:
    return unit_vectors(8, DIM, stream="shard-tests/queries").astype(np.float32)
