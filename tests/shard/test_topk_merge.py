"""StreamingTopK.merge: the algebra the shard fan-out relies on.

The front door merges per-shard heaps in whatever grouping the collect
loop produces, so ``merge`` must be associative and commutative — and
its tie-break (score descending, id ascending) must reproduce what a
serial ascending-block scan would have kept, even when equal scores
straddle shard boundaries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionalityError
from repro.vector.topk import StreamingTopK, top_k_per_row
from repro.workloads import unit_vectors

pytestmark = pytest.mark.shard

N_ROWS = 5
K = 4


def _heap_from(ids, scores) -> StreamingTopK:
    heap = StreamingTopK(N_ROWS, K)
    heap.update(
        np.asarray(ids, dtype=np.int64),
        np.asarray(scores, dtype=np.float32),
    )
    return heap


def _random_parts(seed: int, n_parts: int) -> list[StreamingTopK]:
    """Disjoint id ranges per part, random scores — one part per 'shard'."""
    rng = np.random.default_rng(seed)
    parts = []
    for p in range(n_parts):
        width = int(rng.integers(1, 7))
        ids = np.stack(
            [
                rng.choice(np.arange(p * 100, p * 100 + 50), width, replace=False)
                for _ in range(N_ROWS)
            ]
        )
        scores = rng.random((N_ROWS, width), dtype=np.float32)
        parts.append(_heap_from(ids, scores))
    return parts


def _state(heap: StreamingTopK):
    ids, scores = heap.finalize()
    return ids.tolist(), scores.tolist()


def _merged(parts) -> StreamingTopK:
    acc = StreamingTopK(N_ROWS, K)
    for part in parts:
        acc.merge(part)
    return acc


class TestMergeAlgebra:
    def test_associative(self):
        for seed in range(5):
            a, b, c = _random_parts(seed, 3)
            left = _merged([_merged([a, b]), c])
            a2, b2, c2 = _random_parts(seed, 3)
            right = _merged([a2, _merged([b2, c2])])
            assert _state(left) == _state(right)

    def test_commutative(self):
        for seed in range(5):
            a, b = _random_parts(seed, 2)
            a2, b2 = _random_parts(seed, 2)
            assert _state(_merged([a, b])) == _state(_merged([b2, a2]))

    def test_merge_empty_is_identity(self):
        (a,) = _random_parts(3, 1)
        before = _state(a)
        a.merge(StreamingTopK(N_ROWS, K))
        assert _state(a) == before
        empty = StreamingTopK(N_ROWS, K)
        empty.merge(_random_parts(3, 1)[0])
        assert _state(empty) == before

    def test_row_count_mismatch_raises(self):
        with pytest.raises(DimensionalityError):
            StreamingTopK(N_ROWS, K).merge(StreamingTopK(N_ROWS + 1, K))


class TestMergeTieBreaks:
    def test_equal_scores_keep_lowest_ids(self):
        # Both 'shards' offer the same scores under different ids; the
        # merged heap must keep the lowest ids, like a serial scan that
        # saw ascending ids first.
        low = _heap_from(
            [[0, 1, 2]] * N_ROWS, [[0.9, 0.9, 0.1]] * N_ROWS
        )
        high = _heap_from(
            [[10, 11, 12]] * N_ROWS, [[0.9, 0.9, 0.9]] * N_ROWS
        )
        merged = _merged([high, low])  # arrival order must not matter
        ids, scores = merged.finalize()
        assert ids[0].tolist() == [0, 1, 10, 11]
        assert scores[0].tolist() == pytest.approx([0.9, 0.9, 0.9, 0.9])

    def test_sharded_boundary_ties_match_serial_scan(self):
        # A corpus whose second half duplicates the first: every score
        # ties across the half boundary.  Serial = ascending blocks over
        # the whole matrix; sharded = per-half heaps merged.
        half = unit_vectors(40, 8, stream="merge-ties/base").astype(np.float32)
        corpus = np.concatenate([half, half], axis=0)
        queries = unit_vectors(N_ROWS, 8, stream="merge-ties/q").astype(
            np.float32
        )
        scores = queries @ corpus.T

        serial = StreamingTopK(N_ROWS, K)
        for start in range(0, corpus.shape[0], 16):
            serial.update_block(scores[:, start : start + 16], start)

        parts = []
        for lo, hi in ((0, 40), (40, 80)):
            part = StreamingTopK(N_ROWS, K)
            ids = top_k_per_row(scores[:, lo:hi], K)
            part_scores = np.take_along_axis(scores[:, lo:hi], ids, axis=1)
            part.update(ids + lo, part_scores)
            parts.append(part)

        assert _state(_merged(parts)) == _state(serial)
        assert _state(_merged(parts[::-1])) == _state(serial)
