"""Unit tests for top-k selection."""

import numpy as np
import pytest

from repro.errors import DimensionalityError
from repro.vector import top_k_indices, top_k_per_row


class TestTopKIndices:
    def test_best_first(self):
        scores = np.asarray([0.1, 0.9, 0.5, 0.7])
        assert top_k_indices(scores, 2).tolist() == [1, 3]

    def test_full_ordering(self):
        scores = np.asarray([3.0, 1.0, 2.0])
        assert top_k_indices(scores, 3).tolist() == [0, 2, 1]

    def test_ascending(self):
        scores = np.asarray([3.0, 1.0, 2.0])
        assert top_k_indices(scores, 2, descending=False).tolist() == [1, 2]

    def test_k_larger_than_n(self):
        scores = np.asarray([1.0, 2.0])
        assert len(top_k_indices(scores, 10)) == 2

    def test_k_zero(self):
        assert len(top_k_indices(np.asarray([1.0]), 0)) == 0

    def test_tie_break_by_index(self):
        scores = np.asarray([0.5, 0.5, 0.5, 0.9])
        assert top_k_indices(scores, 3).tolist() == [3, 0, 1]

    def test_matches_argsort(self):
        rng = np.random.default_rng(5)
        scores = rng.standard_normal(100)
        got = top_k_indices(scores, 10)
        expected = np.argsort(-scores, kind="stable")[:10]
        assert got.tolist() == expected.tolist()

    def test_requires_1d(self):
        with pytest.raises(DimensionalityError):
            top_k_indices(np.ones((2, 2)), 1)


class TestTopKPerRow:
    def test_shape(self):
        m = np.random.default_rng(6).standard_normal((5, 8))
        assert top_k_per_row(m, 3).shape == (5, 3)

    def test_matches_rowwise_topk(self):
        m = np.random.default_rng(7).standard_normal((6, 10))
        got = top_k_per_row(m, 4)
        for i in range(6):
            assert got[i].tolist() == top_k_indices(m[i], 4).tolist()

    def test_k_larger_than_cols(self):
        m = np.random.default_rng(8).standard_normal((3, 2))
        assert top_k_per_row(m, 5).shape == (3, 2)

    def test_empty_rows(self):
        assert top_k_per_row(np.empty((0, 4)), 2).shape == (0, 0)

    def test_k_zero(self):
        m = np.ones((3, 4))
        assert top_k_per_row(m, 0).shape == (3, 0)

    def test_requires_2d(self):
        with pytest.raises(DimensionalityError):
            top_k_per_row(np.ones(3), 1)
