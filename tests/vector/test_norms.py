"""Unit tests for normalization utilities."""

import numpy as np
import pytest

from repro.errors import DimensionalityError
from repro.vector import is_normalized, l2_norms, normalize_rows, normalize_vector


class TestL2Norms:
    def test_known_values(self):
        m = np.asarray([[3.0, 4.0], [0.0, 0.0]])
        assert l2_norms(m).tolist() == [5.0, 0.0]

    def test_requires_2d(self):
        with pytest.raises(DimensionalityError):
            l2_norms(np.ones(3))


class TestNormalizeRows:
    def test_unit_norms(self):
        m = np.random.default_rng(0).standard_normal((10, 4))
        n = normalize_rows(m)
        assert np.allclose(l2_norms(n), 1.0, atol=1e-5)

    def test_zero_rows_stay_zero(self):
        m = np.asarray([[0.0, 0.0], [1.0, 0.0]])
        n = normalize_rows(m)
        assert n[0].tolist() == [0.0, 0.0]
        assert n[1].tolist() == [1.0, 0.0]

    def test_copy_semantics(self):
        m = np.ones((2, 2), dtype=np.float32)
        n = normalize_rows(m, copy=True)
        assert m[0, 0] == 1.0  # original untouched
        assert n[0, 0] == pytest.approx(1 / np.sqrt(2))

    def test_output_float32(self):
        n = normalize_rows(np.ones((2, 2), dtype=np.float64))
        assert n.dtype == np.float32

    def test_idempotent(self):
        m = np.random.default_rng(1).standard_normal((5, 3))
        once = normalize_rows(m)
        twice = normalize_rows(once)
        assert np.allclose(once, twice, atol=1e-6)


class TestNormalizeVector:
    def test_unit(self):
        v = normalize_vector(np.asarray([3.0, 4.0]))
        assert np.allclose(v, [0.6, 0.8])

    def test_zero_vector(self):
        assert normalize_vector(np.zeros(3)).tolist() == [0.0, 0.0, 0.0]

    def test_requires_1d(self):
        with pytest.raises(DimensionalityError):
            normalize_vector(np.ones((2, 2)))


class TestIsNormalized:
    def test_detects_normalized(self):
        m = normalize_rows(np.random.default_rng(2).standard_normal((5, 4)))
        assert is_normalized(m)

    def test_detects_unnormalized(self):
        assert not is_normalized(np.full((2, 3), 5.0))

    def test_all_zero_is_normalized(self):
        assert is_normalized(np.zeros((3, 2)))
