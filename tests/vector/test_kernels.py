"""Unit tests for cosine kernels: all strategies must agree."""

import numpy as np
import pytest

from repro.errors import DimensionalityError
from repro.vector import (
    Kernel,
    cosine_matrix,
    cosine_matrix_gemm,
    cosine_matrix_scalar,
    cosine_matrix_vectorized,
    cosine_scalar,
    cosine_vectorized,
    dot_scalar,
)


@pytest.fixture()
def pair():
    rng = np.random.default_rng(3)
    return (
        rng.standard_normal(16).astype(np.float32),
        rng.standard_normal(16).astype(np.float32),
    )


@pytest.fixture()
def matrices():
    rng = np.random.default_rng(4)
    return (
        rng.standard_normal((7, 12)).astype(np.float32),
        rng.standard_normal((9, 12)).astype(np.float32),
    )


class TestPairKernels:
    def test_dot_scalar_matches_numpy(self, pair):
        a, b = pair
        assert dot_scalar(a, b) == pytest.approx(float(a @ b), rel=1e-5)

    def test_cosine_scalar_matches_vectorized(self, pair):
        a, b = pair
        assert cosine_scalar(a, b) == pytest.approx(
            cosine_vectorized(a, b), abs=1e-5
        )

    def test_cosine_self_is_one(self, pair):
        a, _ = pair
        assert cosine_vectorized(a, a) == pytest.approx(1.0, abs=1e-5)

    def test_cosine_opposite_is_minus_one(self, pair):
        a, _ = pair
        assert cosine_vectorized(a, -a) == pytest.approx(-1.0, abs=1e-5)

    def test_cosine_zero_vector(self):
        z = np.zeros(4, dtype=np.float32)
        o = np.ones(4, dtype=np.float32)
        assert cosine_scalar(z, o) == 0.0
        assert cosine_vectorized(z, o) == 0.0

    def test_dim_mismatch(self):
        with pytest.raises(DimensionalityError):
            cosine_vectorized(np.ones(3), np.ones(4))
        with pytest.raises(DimensionalityError):
            cosine_scalar(np.ones(3), np.ones(4))

    def test_requires_1d(self):
        with pytest.raises(DimensionalityError):
            dot_scalar(np.ones((2, 2)), np.ones((2, 2)))


class TestMatrixKernels:
    def test_all_kernels_agree(self, matrices):
        left, right = matrices
        scalar = cosine_matrix_scalar(left, right)
        vectorized = cosine_matrix_vectorized(left, right)
        gemm = cosine_matrix_gemm(left, right)
        assert np.allclose(scalar, vectorized, atol=1e-4)
        assert np.allclose(vectorized, gemm, atol=1e-4)

    def test_result_shape(self, matrices):
        left, right = matrices
        assert cosine_matrix(left, right).shape == (7, 9)

    def test_values_in_range(self, matrices):
        left, right = matrices
        scores = cosine_matrix(left, right)
        assert scores.min() >= -1.0 - 1e-5
        assert scores.max() <= 1.0 + 1e-5

    def test_dispatch_by_kernel_enum(self, matrices):
        left, right = matrices
        for kernel in Kernel:
            out = cosine_matrix(left, right, kernel=kernel)
            assert out.shape == (7, 9)

    def test_zero_row_handling(self):
        left = np.zeros((2, 3), dtype=np.float32)
        right = np.ones((2, 3), dtype=np.float32)
        for fn in (cosine_matrix_scalar, cosine_matrix_vectorized, cosine_matrix_gemm):
            assert np.allclose(fn(left, right), 0.0)

    def test_shape_mismatch(self, matrices):
        left, right = matrices
        bad = right[:, :5]
        for fn in (cosine_matrix_scalar, cosine_matrix_vectorized, cosine_matrix_gemm):
            with pytest.raises(DimensionalityError):
                fn(left, bad)

    def test_symmetry_of_transpose(self, matrices):
        left, right = matrices
        assert np.allclose(
            cosine_matrix_gemm(left, right),
            cosine_matrix_gemm(right, left).T,
            atol=1e-5,
        )
