"""The shape-stable exact scoring kernel and the eselect scan contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ThresholdCondition,
    TopKCondition,
    eselect,
    exact_threshold_select,
    exact_topk_select,
)
from repro.vector import normalize_rows, normalize_vector, stable_dot_scores
from repro.workloads import unit_vectors


@pytest.fixture()
def data():
    matrix = normalize_rows(unit_vectors(500, 24, stream="stable/rows"))
    query = normalize_vector(unit_vectors(1, 24, stream="stable/q")[0])
    return matrix, query


class TestStableDotScores:
    def test_matches_float64_reference(self, data):
        matrix, query = data
        got = stable_dot_scores(matrix, query)
        ref = (matrix.astype(np.float64) @ query.astype(np.float64)).astype(
            np.float32
        )
        assert np.allclose(got, ref, atol=1e-6)

    def test_row_subsets_are_bit_stable(self, data):
        """The defining property: gathering rows never changes their score."""
        matrix, query = data
        full = stable_dot_scores(matrix, query)
        rng = np.random.default_rng(7)
        for size in (1, 3, 50, 499):
            sel = np.sort(rng.choice(len(matrix), size=size, replace=False))
            assert np.array_equal(stable_dot_scores(matrix[sel], query), full[sel])

    def test_blocking_is_bit_stable(self, data):
        matrix, query = data
        full = stable_dot_scores(matrix, query)
        for block in (7, 64, 100, 500):
            parts = [
                stable_dot_scores(matrix[i : i + block], query)
                for i in range(0, len(matrix), block)
            ]
            assert np.array_equal(np.concatenate(parts), full)

    def test_shape_validation(self, data):
        matrix, query = data
        with pytest.raises(Exception):
            stable_dot_scores(matrix, query[:5])
        with pytest.raises(Exception):
            stable_dot_scores(query, query)


class TestExactSelectors:
    def test_threshold_superset_invariance(self, data):
        """Any candidate superset yields the same emitted ids/scores."""
        matrix, query = data
        exact = stable_dot_scores(matrix, query)
        t = float(np.quantile(exact, 0.9))
        true_ids = np.nonzero(exact >= t)[0]
        tight = true_ids
        wide = np.arange(len(matrix))
        rng = np.random.default_rng(3)
        padded = np.sort(
            np.union1d(true_ids, rng.choice(len(matrix), size=50, replace=False))
        )
        outputs = [
            exact_threshold_select(matrix, cand, query, t)
            for cand in (tight, wide, padded)
        ]
        for ids, scores in outputs[1:]:
            assert np.array_equal(ids, outputs[0][0])
            assert np.array_equal(scores, outputs[0][1])

    def test_topk_superset_invariance(self, data):
        matrix, query = data
        exact = stable_dot_scores(matrix, query)
        k = 7
        true_top = np.argsort(-exact, kind="stable")[:k]
        wide = np.arange(len(matrix))
        rng = np.random.default_rng(4)
        padded = np.union1d(
            true_top, rng.choice(len(matrix), size=60, replace=False)
        )
        outputs = [
            exact_topk_select(matrix, cand, query, k)
            for cand in (true_top, wide, padded)
        ]
        for ids, scores in outputs[1:]:
            assert np.array_equal(ids, outputs[0][0])
            assert np.array_equal(scores, outputs[0][1])

    def test_topk_tie_break_by_id(self):
        matrix = np.tile(
            normalize_vector(np.ones(8, dtype=np.float32)), (6, 1)
        )
        query = normalize_vector(np.ones(8, dtype=np.float32))
        ids, _ = exact_topk_select(matrix, np.arange(6), query, 3)
        assert ids.tolist() == [0, 1, 2]


class TestESelectContract:
    def test_prenormalized_matches_inline(self, data):
        """assume_normalized shares bits with inline normalization."""
        matrix, query = data
        for condition in (TopKCondition(5), ThresholdCondition(0.2)):
            inline = eselect(matrix, query, condition)
            shared = eselect(matrix, query, condition, assume_normalized=True)
            # matrix is already normalized, so normalize_rows(matrix) has
            # slightly different bits — yet emitted results must agree
            # because the exact kernel defines the scores.
            assert np.array_equal(inline.ids, shared.ids)
            assert np.allclose(inline.scores, shared.scores, atol=1e-6)

    def test_duplicate_heavy_topk_deterministic(self):
        """A plateau of duplicates wider than the prescreen pad still
        resolves to smallest-id winners (the widening pass guarantees a
        provable superset)."""
        base = unit_vectors(4, 16, stream="stable/dup")
        matrix = np.repeat(base, 60, axis=0)  # 240 rows, plateaus of 60
        query = normalize_vector(base[0])
        result = eselect(matrix, query, TopKCondition(10))
        assert result.ids.tolist() == list(range(10))
