"""Unit tests for the int8/PQ vector quantizers."""

import numpy as np
import pytest

from repro.errors import DimensionalityError
from repro.vector import normalize_rows
from repro.vector.quant import Int8Quantizer, ProductQuantizer, int8_dot
from repro.workloads import unit_vectors

pytestmark = pytest.mark.quant


@pytest.fixture()
def data() -> np.ndarray:
    return unit_vectors(300, 24, seed=11)


@pytest.fixture()
def queries() -> np.ndarray:
    return unit_vectors(20, 24, seed=22)


class TestInt8Quantizer:
    def test_codes_dtype_and_footprint(self, data):
        q = Int8Quantizer(24).fit(data)
        codes = q.encode(data)
        assert codes.dtype == np.int8
        assert codes.shape == data.shape
        assert q.bytes_per_code == 24
        assert codes.nbytes == data.nbytes // 4

    def test_roundtrip_error_within_step(self, data):
        q = Int8Quantizer(24).fit(data)
        decoded = q.decode(q.encode(data))
        assert (np.abs(decoded - data) <= q.scale / 2 + 1e-6).all()

    def test_score_error_bound_holds(self, data, queries):
        q = Int8Quantizer(24).fit(data)
        approx = queries @ q.decode(q.encode(data)).T
        exact = queries @ data.T
        assert np.abs(approx - exact).max() <= q.score_error_bound()

    def test_prepared_scores_match_decode(self, data, queries):
        q = Int8Quantizer(24).fit(data)
        codes = q.encode(data)
        scores = q.scores_block(q.prepare_queries(queries), codes)
        expected = queries @ q.decode(codes).T
        np.testing.assert_allclose(scores, expected, atol=1e-5)

    def test_biasless_scores_shift_per_query_only(self, data, queries):
        q = Int8Quantizer(24).fit(data)
        codes = q.encode(data)
        prepared = q.prepare_queries(queries)
        full = q.scores_block(prepared, codes)
        biasless = q.scores_block(prepared, codes, include_bias=False)
        shift = full - biasless
        # The omitted bias is constant along the code axis.
        np.testing.assert_allclose(shift - shift[:, :1], 0.0, atol=1e-5)

    def test_requires_fit(self, data):
        with pytest.raises(DimensionalityError, match="not fitted"):
            Int8Quantizer(24).encode(data)

    def test_constant_dimension(self):
        flat = np.ones((10, 4), dtype=np.float32)
        q = Int8Quantizer(4).fit(flat)
        np.testing.assert_allclose(q.decode(q.encode(flat)), flat, atol=1e-5)


class TestInt8Dot:
    def test_exact_small(self):
        rng = np.random.default_rng(3)
        a = rng.integers(-128, 128, size=(5, 17)).astype(np.int8)
        b = rng.integers(-128, 128, size=(7, 17)).astype(np.int8)
        expected = a.astype(np.int64) @ b.T.astype(np.int64)
        got = int8_dot(a, b)
        assert got.dtype == np.int32
        assert (got == expected).all()

    def test_exact_beyond_chunk(self):
        rng = np.random.default_rng(4)
        a = rng.integers(-128, 128, size=(3, 2500)).astype(np.int8)
        expected = a.astype(np.int64) @ a.T.astype(np.int64)
        assert (int8_dot(a, a) == expected).all()

    def test_width_mismatch(self):
        with pytest.raises(DimensionalityError, match="width mismatch"):
            int8_dot(np.zeros((2, 3), np.int8), np.zeros((2, 4), np.int8))


class TestProductQuantizer:
    def test_codes_shape_and_footprint(self, data):
        pq = ProductQuantizer(24, m=6, ks=16, seed=5).fit(data)
        codes = pq.encode(data)
        assert codes.dtype == np.uint8
        assert codes.shape == (len(data), 6)
        assert pq.bytes_per_code == 6

    def test_adc_equals_decode_dot(self, data, queries):
        pq = ProductQuantizer(24, m=4, ks=32, seed=5).fit(data)
        codes = pq.encode(data)
        adc = pq.adc_scores(queries, codes)
        expected = queries @ pq.decode(codes).T
        np.testing.assert_allclose(adc, expected, atol=1e-4)

    def test_score_error_bound_holds(self, data, queries):
        pq = ProductQuantizer(24, m=4, ks=32, seed=5).fit(data)
        codes = pq.encode(data)
        approx = queries @ pq.decode(codes).T
        exact = queries @ data.T
        assert np.abs(approx - exact).max() <= pq.score_error_bound()

    def test_ragged_subspaces(self):
        data = unit_vectors(100, 10, seed=7)
        pq = ProductQuantizer(10, m=4, ks=8, seed=5).fit(data)
        widths = [b - a for a, b in pq.subspaces]
        assert sum(widths) == 10
        assert max(widths) - min(widths) <= 1
        assert pq.decode(pq.encode(data)).shape == (100, 10)

    def test_ks_capped_by_training_rows(self):
        data = unit_vectors(12, 8, seed=9)
        pq = ProductQuantizer(8, m=2, ks=64, seed=5).fit(data)
        assert pq.ks_eff == 12
        assert pq.encode(data).max() < 12

    def test_structured_data_quantizes_better_than_range(self, queries):
        # Clustered low-rank data: PQ residuals far below vector norms.
        from repro.workloads import embedding_like_vectors

        data, _ = embedding_like_vectors(
            2000, 24, rank=8, n_clusters=16, noise=0.3, seed=13
        )
        pq = ProductQuantizer(24, m=4, ks=64, seed=5).fit(data)
        assert pq.mean_residual < 0.35

    def test_invalid_params(self):
        with pytest.raises(DimensionalityError):
            ProductQuantizer(8, m=9)
        with pytest.raises(DimensionalityError):
            ProductQuantizer(8, m=2, ks=1)
        with pytest.raises(DimensionalityError):
            ProductQuantizer(8, m=2, ks=512)


class TestKmeansFlag:
    def test_non_spherical_centroids_not_unit(self):
        from repro.index.ivf import kmeans

        rng = np.random.default_rng(17)
        data = rng.standard_normal((200, 6)).astype(np.float32) * 0.2
        cents = kmeans(data, 8, rng=np.random.default_rng(1), spherical=False)
        norms = np.linalg.norm(cents, axis=1)
        assert (norms < 0.9).any()  # means of small vectors stay small

    def test_spherical_default_unit(self):
        from repro.index.ivf import kmeans

        data = normalize_rows(
            np.random.default_rng(18).standard_normal((200, 6)).astype(np.float32)
        )
        cents = kmeans(data, 8, rng=np.random.default_rng(1))
        np.testing.assert_allclose(
            np.linalg.norm(cents, axis=1), 1.0, atol=1e-5
        )
