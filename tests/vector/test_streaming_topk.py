"""Unit tests for the bounded streaming top-k merger."""

import numpy as np
import pytest

from repro.errors import DimensionalityError
from repro.vector import StreamingTopK, top_k_per_row


def brute_force(scores: np.ndarray, k: int):
    ids = top_k_per_row(scores, k)
    return ids, np.take_along_axis(scores, ids, axis=1)


class TestStreamingTopK:
    def test_matches_full_matrix_selection(self):
        rng = np.random.default_rng(7)
        scores = rng.random((20, 50)).astype(np.float32)
        merger = StreamingTopK(20, 5)
        for r0 in range(0, 50, 13):  # uneven blocks on purpose
            merger.update_block(scores[:, r0 : r0 + 13], r0)
        ids, picked = merger.finalize()
        want_ids, want_scores = brute_force(scores, 5)
        np.testing.assert_array_equal(ids, want_ids)
        np.testing.assert_allclose(picked, want_scores)

    def test_block_shape_independence(self):
        rng = np.random.default_rng(11)
        scores = rng.random((8, 64)).astype(np.float32)
        outputs = []
        for block in (1, 7, 16, 64):
            merger = StreamingTopK(8, 3)
            for r0 in range(0, 64, block):
                merger.update_block(scores[:, r0 : r0 + block], r0)
            outputs.append(merger.finalize())
        for ids, picked in outputs[1:]:
            np.testing.assert_array_equal(ids, outputs[0][0])
            np.testing.assert_allclose(picked, outputs[0][1])

    def test_ties_prefer_earlier_candidates(self):
        scores = np.ones((2, 6), dtype=np.float32)
        merger = StreamingTopK(2, 2)
        merger.update_block(scores[:, :3], 0)
        merger.update_block(scores[:, 3:], 3)
        ids, _ = merger.finalize()
        np.testing.assert_array_equal(ids, [[0, 1], [0, 1]])

    def test_state_stays_bounded(self):
        merger = StreamingTopK(4, 3)
        rng = np.random.default_rng(3)
        for r0 in range(0, 1000, 100):
            merger.update_block(
                rng.random((4, 100)).astype(np.float32), r0
            )
            assert merger.width <= 3

    def test_fewer_candidates_than_k(self):
        merger = StreamingTopK(3, 10)
        merger.update_block(np.ones((3, 4), dtype=np.float32), 0)
        ids, picked = merger.finalize()
        assert ids.shape == (3, 4)
        assert picked.shape == (3, 4)

    def test_empty_finalize(self):
        ids, picked = StreamingTopK(5, 2).finalize()
        assert ids.shape == (5, 0)
        assert picked.shape == (5, 0)

    def test_generic_update_candidates(self):
        merger = StreamingTopK(1, 2)
        merger.update(
            np.array([[10, 20, 30]]),
            np.array([[0.1, 0.9, 0.5]], dtype=np.float32),
        )
        merger.update(np.array([[40]]), np.array([[0.7]], dtype=np.float32))
        ids, picked = merger.finalize()
        np.testing.assert_array_equal(ids, [[20, 40]])
        np.testing.assert_allclose(picked, [[0.9, 0.7]])

    def test_invalid_k(self):
        with pytest.raises(DimensionalityError, match="k must be"):
            StreamingTopK(3, 0)

    def test_row_count_mismatch(self):
        merger = StreamingTopK(3, 2)
        with pytest.raises(DimensionalityError, match="rows"):
            merger.update_block(np.ones((2, 4), dtype=np.float32), 0)

    def test_state_bytes_per_row_positive(self):
        assert StreamingTopK.state_bytes_per_row(1) > 0
        assert (
            StreamingTopK.state_bytes_per_row(32)
            > StreamingTopK.state_bytes_per_row(4)
        )
