"""Tests for the declarative E-selection (esimilar) query path."""

import pytest

from repro.algebra import ESelectNode, FilterNode, ScanNode
from repro.algebra.rules import PushFilterBelowESelect
from repro.core import ThresholdCondition, TopKCondition
from repro.embedding import HashingEmbedder
from repro.errors import PlanError
from repro.query import Engine
from repro.relational import Catalog, Col
from repro.workloads import generate_dirty_strings


@pytest.fixture()
def engine():
    wl = generate_dirty_strings(n_feed=120, seed=201)
    catalog = Catalog()
    catalog.register("feed", wl.feed)
    eng = Engine(catalog)
    eng.models.register("hash", HashingEmbedder(dim=32, seed=202))
    return eng


class TestBuilder:
    def test_condition_required(self, engine):
        with pytest.raises(PlanError, match="exactly one"):
            engine.query("feed").esimilar("text", "barbecue", model="hash")

    def test_topk_execution(self, engine):
        out = (
            engine.query("feed")
            .esimilar("text", "dbms", model="hash", top_k=5)
            .execute()
        )
        assert out.num_rows == 5
        assert "similarity" in out.schema
        sims = out.array("similarity").tolist()
        assert sims == sorted(sims, reverse=True)

    def test_threshold_execution(self, engine):
        out = (
            engine.query("feed")
            .esimilar("text", "dbms", model="hash", threshold=0.99)
            .execute()
        )
        # Only literal "dbms" rows survive a ~exact threshold.
        assert set(out.array("text").tolist()) <= {"dbms"}

    def test_custom_score_column(self, engine):
        out = (
            engine.query("feed")
            .esimilar("text", "sql", model="hash", top_k=3, score_column="cos")
            .execute()
        )
        assert "cos" in out.schema

    def test_composes_with_relational_ops(self, engine):
        out = (
            engine.query("feed")
            .where(Col("views") > 100)
            .esimilar("text", "guitar", model="hash", top_k=4)
            .select(["text", "views", "similarity"])
            .execute()
        )
        assert out.num_rows <= 4
        assert (out.array("views") > 100).all()

    def test_strategy_reported(self, engine):
        q = engine.query("feed").esimilar("text", "piano", model="hash", top_k=2)
        q.execute()
        assert q.last_report.strategies == ["eselect/scan"]


class TestPushdownRule:
    def test_threshold_filter_commutes(self):
        node = FilterNode(
            ESelectNode(
                ScanNode("t"), "text", "q", "m", ThresholdCondition(0.5)
            ),
            Col("views") > 10,
        )
        rewritten = PushFilterBelowESelect().apply(node)
        assert isinstance(rewritten, ESelectNode)
        assert isinstance(rewritten.child, FilterNode)

    def test_score_predicate_blocks_pushdown(self):
        node = FilterNode(
            ESelectNode(
                ScanNode("t"), "text", "q", "m", ThresholdCondition(0.5)
            ),
            Col("similarity") > 0.8,
        )
        assert PushFilterBelowESelect().apply(node) is None

    def test_topk_blocks_pushdown(self):
        """Top-k depends on the surviving set; filters do not commute."""
        node = FilterNode(
            ESelectNode(ScanNode("t"), "text", "q", "m", TopKCondition(3)),
            Col("views") > 10,
        )
        assert PushFilterBelowESelect().apply(node) is None

    def test_pushdown_equivalence_on_data(self, engine):
        """Pushed and unpushed plans must produce identical results."""
        base = engine.query("feed").esimilar(
            "text", "dbms", model="hash", threshold=0.3
        ).where(Col("views") > 3000)
        optimized = base.execute(optimize=True)
        unoptimized = base.execute(optimize=False)
        key = lambda t: sorted(
            zip(t.array("text").tolist(), t.array("views").tolist())
        )
        assert key(optimized) == key(unoptimized)

    def test_optimizer_applies_rule_end_to_end(self, engine):
        plan = (
            engine.query("feed")
            .esimilar("text", "dbms", model="hash", threshold=0.3)
            .where(Col("views") > 3000)
            .optimized_plan()
        )
        # Filter has been pushed below the E-selection.
        assert isinstance(plan, ESelectNode)
        assert isinstance(plan.child, FilterNode)
