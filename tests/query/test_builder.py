"""Unit tests for the declarative query builder."""

from datetime import date

import pytest

from repro.embedding import HashingEmbedder
from repro.errors import PlanError, SchemaError
from repro.index import FlatIndex
from repro.query import Engine
from repro.relational import Catalog, Col
from repro.workloads import generate_dirty_strings


@pytest.fixture()
def engine():
    wl = generate_dirty_strings(n_feed=80, seed=93)
    catalog = Catalog()
    catalog.register("words", wl.catalog)
    catalog.register("feed", wl.feed)
    eng = Engine(catalog)
    eng.models.register("hash", HashingEmbedder(dim=24, seed=94))
    return eng


class TestConstruction:
    def test_unknown_table_rejected_early(self, engine):
        with pytest.raises(SchemaError):
            engine.query("nope")

    def test_ejoin_requires_one_condition(self, engine):
        q = engine.query("feed")
        with pytest.raises(PlanError, match="exactly one"):
            q.ejoin("words", left_on="text", right_on="word", model="hash")
        with pytest.raises(PlanError, match="exactly one"):
            q.ejoin(
                "words", left_on="text", right_on="word", model="hash",
                threshold=0.9, top_k=1,
            )

    def test_builder_immutability(self, engine):
        base = engine.query("feed")
        filtered = base.where(Col("views") > 100)
        assert base.plan is not filtered.plan

    def test_register_index_validates_table(self, engine):
        with pytest.raises(SchemaError):
            engine.register_index("nope", "word", FlatIndex(4))


class TestExecution:
    def test_simple_filter_select(self, engine):
        out = (
            engine.query("feed")
            .where(Col("views") > 5000)
            .select(["text", "views"])
            .execute()
        )
        assert out.schema.names == ("text", "views")
        assert (out.array("views") > 5000).all()

    def test_ejoin_topk(self, engine):
        out = (
            engine.query("feed")
            .ejoin("words", left_on="text", right_on="word", model="hash", top_k=1)
            .execute()
        )
        assert out.num_rows == 80
        assert "similarity" in out.schema

    def test_ejoin_threshold(self, engine):
        out = (
            engine.query("feed")
            .ejoin(
                "words", left_on="text", right_on="word", model="hash",
                threshold=0.999,
            )
            .execute()
        )
        # Exact duplicates match at ~1.0.
        for row in out.to_dicts():
            assert row["text"] == row["word"]

    def test_hybrid_relational_plus_semantic(self, engine):
        out = (
            engine.query("feed")
            .where(Col("day") > date(2023, 6, 1))
            .ejoin("words", left_on="text", right_on="word", model="hash", top_k=1)
            .select(["text", "word", "day", "similarity"])
            .limit(5)
            .execute()
        )
        assert out.num_rows <= 5
        assert all(d > date(2023, 6, 1) for d in out.column("day").to_pylist())

    def test_equi_join(self, engine):
        out = engine.query("feed").join(
            "words", left_on="text", right_on="word"
        ).execute()
        assert out.num_rows > 0

    def test_subquery_as_right_side(self, engine):
        words_sub = engine.query("words").where(Col("id") < 5)
        out = (
            engine.query("feed")
            .ejoin(words_sub, left_on="text", right_on="word", model="hash", top_k=1)
            .execute()
        )
        matched = set(out.array("word").tolist())
        allowed = set(
            engine.catalog.get("words").head(5).array("word").tolist()
        )
        assert matched <= allowed

    def test_unoptimized_execution(self, engine):
        q = engine.query("feed").ejoin(
            "words", left_on="text", right_on="word", model="hash", top_k=1
        ).limit(3)
        # prefetch=False without the optimizer -> naive path; tiny limit
        # keeps it cheap. Results must agree with the optimized run.
        fast = q.execute(optimize=True)
        assert fast.num_rows == 3

    def test_last_report(self, engine):
        q = engine.query("feed").ejoin(
            "words", left_on="text", right_on="word", model="hash", top_k=1
        )
        assert q.last_report is None
        q.execute()
        assert q.last_report is not None
        assert q.last_report.strategies == ["tensor"]


class TestExplain:
    def test_explain_shows_plan_and_trace(self, engine):
        text = (
            engine.query("feed")
            .where(Col("views") > 10)
            .ejoin("words", left_on="text", right_on="word", model="hash", top_k=2)
            .explain()
        )
        assert "EJoin" in text
        assert "prefetch" in text
        assert "rewrites applied" in text

    def test_explain_unoptimized(self, engine):
        text = engine.query("feed").explain(optimize=False)
        assert text.strip() == "Scan(feed)"

    def test_embed_node_via_builder(self, engine):
        out = engine.query("words").embed("word", "hash", output="vec").execute()
        assert "vec" in out.schema
