"""Retry policy: typing, jitter bounds, budgets, deadline truncation.

All timing runs on a fake clock — the suite never sleeps for real.
"""

from __future__ import annotations

import pytest

from repro.errors import PermanentFault, TransientFault
from repro.reliability.retry import RetryBudget, RetryPolicy, RetryStats


class FakeClock:
    """Manual clock whose sleep() advances time instead of blocking."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


def make_policy(clock: FakeClock, **kwargs) -> RetryPolicy:
    kwargs.setdefault("max_attempts", 3)
    kwargs.setdefault("base_s", 0.001)
    kwargs.setdefault("cap_s", 0.05)
    return RetryPolicy(
        kwargs.pop("max_attempts"),
        kwargs.pop("base_s"),
        kwargs.pop("cap_s"),
        clock=clock,
        sleep=clock.sleep,
        **kwargs,
    )


class Flaky:
    """Callable failing with ``exc`` on the first ``n`` invocations."""

    def __init__(self, n: int, exc: type[Exception] = TransientFault) -> None:
        self.remaining = n
        self.exc = exc
        self.calls = 0

    def __call__(self) -> str:
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.exc("flaky")
        return "ok"


def test_success_first_try_never_sleeps():
    clock = FakeClock()
    bound = make_policy(clock).bind()
    assert bound.call(lambda: 42) == 42
    assert clock.sleeps == []


def test_transient_failures_retried_to_success():
    clock = FakeClock()
    bound = make_policy(clock).bind()
    flaky = Flaky(2)
    assert bound.call(flaky) == "ok"
    assert flaky.calls == 3
    assert len(clock.sleeps) == 2
    assert bound.local_retries == 2


def test_permanent_failure_not_retried():
    clock = FakeClock()
    bound = make_policy(clock).bind()
    flaky = Flaky(1, exc=PermanentFault)
    with pytest.raises(PermanentFault):
        bound.call(flaky)
    assert flaky.calls == 1
    assert clock.sleeps == []


def test_plain_exceptions_not_retried():
    clock = FakeClock()
    bound = make_policy(clock).bind()
    with pytest.raises(ValueError):
        bound.call(Flaky(1, exc=ValueError))
    assert clock.sleeps == []


def test_gives_up_after_max_attempts():
    clock = FakeClock()
    stats = RetryStats()
    bound = make_policy(clock, max_attempts=4, stats=stats).bind()
    flaky = Flaky(100)
    with pytest.raises(TransientFault):
        bound.call(flaky)
    assert flaky.calls == 4
    assert len(clock.sleeps) == 3
    snap = stats.snapshot()
    assert snap["giveups"] == 1
    assert snap["retries"] == 3
    assert snap["attempts"] == 4


def test_jitter_bounds_and_decorrelation():
    """Every sleep lies in [base, cap]; sleep n+1 <= max(base, 3*sleep n)."""
    clock = FakeClock()
    base, cap = 0.002, 0.04
    bound = make_policy(
        clock, max_attempts=20, base_s=base, cap_s=cap, seed=7
    ).bind()
    with pytest.raises(TransientFault):
        bound.call(Flaky(100))
    assert len(clock.sleeps) == 19
    for s in clock.sleeps:
        assert base <= s <= cap
    for prev, nxt in zip(clock.sleeps, clock.sleeps[1:]):
        assert nxt <= max(base, min(cap, prev * 3.0)) + 1e-12


def test_jitter_stream_is_seeded():
    def sleeps(seed: int) -> list[float]:
        clock = FakeClock()
        bound = make_policy(clock, max_attempts=10, seed=seed).bind()
        with pytest.raises(TransientFault):
            bound.call(Flaky(100))
        return clock.sleeps

    assert sleeps(3) == sleeps(3)
    assert sleeps(3) != sleeps(4)


def test_budget_exhaustion_stops_retries():
    clock = FakeClock()
    stats = RetryStats()
    policy = make_policy(clock, max_attempts=10, stats=stats)
    budget = RetryBudget(3)
    bound = policy.bind(budget=budget)
    flaky = Flaky(100)
    with pytest.raises(TransientFault):
        bound.call(flaky)
    # 1 initial attempt + 3 budgeted retries, then the budget gate trips.
    assert flaky.calls == 4
    assert budget.remaining == 0
    assert stats.snapshot()["budget_exhausted"] == 1


def test_budget_shared_across_bound_calls():
    clock = FakeClock()
    policy = make_policy(clock, max_attempts=10)
    budget = RetryBudget(2)
    first = policy.bind(budget=budget)
    assert first.call(Flaky(2)) == "ok"  # consumes the whole budget
    second = policy.bind(budget=budget)
    flaky = Flaky(1)
    with pytest.raises(TransientFault):
        second.call(flaky)
    assert flaky.calls == 1  # no budget left: first failure is final


def test_deadline_truncates_backoff():
    clock = FakeClock()
    stats = RetryStats()
    policy = make_policy(
        clock, max_attempts=10, base_s=1.0, cap_s=1.0, stats=stats
    )
    # Backoff is exactly 1s (base == cap); deadline leaves only 0.5s.
    bound = policy.bind(deadline=clock.now + 0.5)
    flaky = Flaky(100)
    with pytest.raises(TransientFault):
        bound.call(flaky)
    assert flaky.calls == 1
    assert clock.sleeps == []
    assert stats.snapshot()["deadline_truncations"] == 1


def test_deadline_with_room_allows_retry():
    clock = FakeClock()
    policy = make_policy(clock, max_attempts=10, base_s=0.01, cap_s=0.01)
    bound = policy.bind(deadline=clock.now + 10.0)
    assert bound.call(Flaky(2)) == "ok"
    assert len(clock.sleeps) == 2


def test_from_config_picks_up_knobs():
    from repro.config import configure, get_config

    original = get_config()
    saved = (
        original.retry_max_attempts,
        original.retry_base_ms,
        original.retry_cap_ms,
    )
    try:
        configure(
            retry_max_attempts=5, retry_base_ms=2.0, retry_cap_ms=100.0
        )
        policy = RetryPolicy.from_config()
        assert policy.max_attempts == 5
        assert policy.base_s == pytest.approx(0.002)
        assert policy.cap_s == pytest.approx(0.1)
    finally:
        configure(
            retry_max_attempts=saved[0],
            retry_base_ms=saved[1],
            retry_cap_ms=saved[2],
        )
