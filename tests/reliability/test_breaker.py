"""Circuit breaker state machine and registry behaviour (fake clock)."""

from __future__ import annotations

from repro.reliability.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerRegistry,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(threshold=3, cooldown=10.0):
    clock = FakeClock()
    return CircuitBreaker(threshold, cooldown, clock=clock), clock


def test_starts_closed_and_allows():
    breaker, _ = make_breaker()
    assert breaker.state == CLOSED
    assert breaker.allow()


def test_trips_after_threshold_consecutive_failures():
    breaker, _ = make_breaker(threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED
    breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow()
    assert breaker.trips == 1


def test_success_resets_consecutive_count():
    breaker, _ = make_breaker(threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CLOSED  # never saw 2 in a row


def test_half_open_single_trial_after_cooldown():
    breaker, clock = make_breaker(threshold=1, cooldown=10.0)
    breaker.record_failure()
    assert not breaker.allow()
    clock.advance(10.0)
    assert breaker.allow()  # the single trial
    assert breaker.state == HALF_OPEN
    assert not breaker.allow()  # everyone else keeps waiting


def test_half_open_success_closes():
    breaker, clock = make_breaker(threshold=1, cooldown=5.0)
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allow()


def test_half_open_failure_reopens_and_restarts_cooldown():
    breaker, clock = make_breaker(threshold=3, cooldown=5.0)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_failure()  # trial failed: straight back to open
    assert breaker.state == OPEN
    assert breaker.trips == 2
    clock.advance(4.9)
    assert not breaker.allow()
    clock.advance(0.2)
    assert breaker.allow()


def test_registry_keys_are_independent():
    clock = FakeClock()
    registry = BreakerRegistry(threshold=1, cooldown_s=30.0, clock=clock)
    bad = ("docs", "text", "hash64", "pq")
    good = ("docs", "text", "hash64", "int8")
    registry.record_failure(bad)
    assert not registry.allow(bad)
    assert registry.allow(good)
    assert registry.open_count() == 1
    snap = registry.snapshot()
    assert snap["docs/text/hash64/pq"]["state"] == OPEN
    assert snap["docs/text/hash64/int8"]["state"] == CLOSED


def test_registry_reset_drops_state():
    registry = BreakerRegistry(threshold=1, cooldown_s=30.0)
    registry.record_failure(("t", "c", "m", "pq"))
    assert registry.open_count() == 1
    registry.reset()
    assert registry.open_count() == 0
    assert registry.allow(("t", "c", "m", "pq"))
