"""Scheduler self-healing: retries, kills, stalls, and error release.

These tests use real (but tiny) sleeps only where a thread must actually
hang — the watchdog cannot be exercised against a fake clock without
faking the threads too.  Stall tolerances are kept at a few tens of
milliseconds so the suite stays fast.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import TransientFault, WorkerKilledFault
from repro.reliability.retry import RetryPolicy
from repro.reliability.watchdog import WatchdogPolicy
from repro.engine.scheduler import SchedulerStats, WorkStealingScheduler


def make_retry(max_attempts=5):
    # Zero backoff: unit tests never sleep for retry timing.
    return RetryPolicy(max_attempts, 0.0, 0.0).bind()


class FlakyTask:
    """Task failing transiently on its first ``n`` executions."""

    def __init__(self, value: int, n: int) -> None:
        self.value = value
        self.n = n
        self._lock = threading.Lock()

    def __call__(self) -> int:
        with self._lock:
            if self.n > 0:
                self.n -= 1
                raise TransientFault("flaky task")
        return self.value


class KillOnce:
    """Task raising one WorkerKilledFault, then succeeding."""

    def __init__(self, value: int) -> None:
        self.value = value
        self._killed = False
        self._lock = threading.Lock()

    def __call__(self) -> int:
        with self._lock:
            if not self._killed:
                self._killed = True
                raise WorkerKilledFault("killed")
        return self.value


def test_transient_failures_retried_single_worker():
    scheduler = WorkStealingScheduler(1)
    stats = SchedulerStats()
    tasks = [FlakyTask(i, 2) for i in range(4)]
    results = scheduler.run(tasks, stats=stats, retry=make_retry())
    assert results == [0, 1, 2, 3]
    assert stats.retries == 8


def test_transient_failures_retried_multi_worker():
    scheduler = WorkStealingScheduler(4)
    stats = SchedulerStats()
    tasks = [FlakyTask(i, 1) for i in range(16)]
    results = scheduler.run(tasks, stats=stats, retry=make_retry())
    assert results == list(range(16))
    assert stats.retries == 16


def test_without_retry_transient_fault_propagates():
    scheduler = WorkStealingScheduler(2)
    with pytest.raises(TransientFault):
        scheduler.run([FlakyTask(0, 1), lambda: 1])


def test_first_error_propagates_with_traceback_and_releases_queue():
    """A failing task can never deadlock run(); the original traceback
    survives re-raising in the caller."""
    scheduler = WorkStealingScheduler(2, work_stealing=False)
    started = []

    def boom():
        started.append("boom")
        raise ValueError("task exploded")

    tasks = [boom] + [lambda i=i: i for i in range(63)]
    with pytest.raises(ValueError, match="task exploded") as excinfo:
        scheduler.run(tasks)
    tb_functions = []
    tb = excinfo.tb
    while tb is not None:
        tb_functions.append(tb.tb_frame.f_code.co_name)
        tb = tb.tb_next
    assert "boom" in tb_functions


def test_killed_worker_recovered_by_final_sweep_without_watchdog():
    """Watchdog off: a killed worker's task still completes via the
    caller-thread sweep, so the batch never hangs or loses results."""
    scheduler = WorkStealingScheduler(2, work_stealing=False)
    stats = SchedulerStats()
    tasks: list = [KillOnce(0)] + [lambda i=i: i for i in range(1, 8)]
    results = scheduler.run(tasks, stats=stats)
    assert results == list(range(8))


def test_killed_worker_respawned_by_watchdog():
    scheduler = WorkStealingScheduler(2, work_stealing=False)
    stats = SchedulerStats()
    watchdog = WatchdogPolicy(stall_s=0.05, max_respawns=4)
    kill = KillOnce(0)
    # Enough sibling work that the second worker is still busy when the
    # watchdog notices the death (keeps `finish` from firing first).
    tasks: list = [kill] + [
        lambda i=i: (time.sleep(0.002), i)[1] for i in range(1, 40)
    ]
    results = scheduler.run(tasks, stats=stats, watchdog=watchdog)
    assert results == list(range(40))
    assert stats.worker_deaths >= 1


def test_hung_worker_detected_and_task_reenqueued():
    """A worker hanging mid-task is stalled out; its task re-runs
    elsewhere and the batch completes bit-identically."""
    scheduler = WorkStealingScheduler(2, work_stealing=False)
    stats = SchedulerStats()
    watchdog = WatchdogPolicy(stall_s=0.05, max_respawns=4)
    release = threading.Event()
    hung_runs = []

    def hang_once():
        hung_runs.append(threading.get_ident())
        if len(hung_runs) == 1:
            release.wait(5.0)  # far past the stall tolerance
        return 0

    tasks: list = [hang_once] + [
        lambda i=i: (time.sleep(0.002), i)[1] for i in range(1, 40)
    ]
    try:
        results = scheduler.run(tasks, stats=stats, watchdog=watchdog)
    finally:
        release.set()
    assert results == list(range(40))
    assert stats.watchdog_stalls >= 1
    assert stats.reenqueued_tasks >= 1
    assert len(hung_runs) >= 2  # re-executed after the stall


def test_watchdog_disabled_policy_has_no_stall_detection():
    policy = WatchdogPolicy(stall_s=0.0)
    assert not policy.enabled
    assert WatchdogPolicy(stall_s=5.0).enabled


def test_healthy_run_unaffected_by_watchdog():
    scheduler = WorkStealingScheduler(4)
    stats = SchedulerStats()
    watchdog = WatchdogPolicy(stall_s=5.0)
    results = scheduler.run(
        [lambda i=i: i * i for i in range(64)],
        stats=stats,
        retry=make_retry(),
        watchdog=watchdog,
    )
    assert results == [i * i for i in range(64)]
    assert stats.watchdog_stalls == 0
    assert stats.worker_deaths == 0
    assert stats.worker_respawns == 0
    assert stats.retries == 0
