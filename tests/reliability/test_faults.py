"""Fault injector: determinism, site/kind filtering, cap, install hooks."""

from __future__ import annotations

import pytest

from repro.errors import PermanentFault, TransientFault, WorkerKilledFault
from repro.reliability.faults import (
    KINDS,
    SITES,
    FaultInjector,
    active_injector,
    clear_injector,
    install_injector,
    maybe_inject,
)


def schedule(injector: FaultInjector, site: str, n: int) -> list:
    return [injector.decide(site) for _ in range(n)]


def test_schedule_is_deterministic_per_seed():
    a = FaultInjector(0.2, seed=11, kinds=KINDS)
    b = FaultInjector(0.2, seed=11, kinds=KINDS)
    assert schedule(a, "kernel.gemm", 500) == schedule(b, "kernel.gemm", 500)


def test_schedule_differs_across_seeds_and_sites():
    a = FaultInjector(0.2, seed=11, kinds=KINDS)
    b = FaultInjector(0.2, seed=12, kinds=KINDS)
    assert schedule(a, "kernel.gemm", 500) != schedule(b, "kernel.gemm", 500)
    c = FaultInjector(0.2, seed=11, kinds=KINDS)
    d = FaultInjector(0.2, seed=11, kinds=KINDS)
    assert schedule(c, "kernel.gemm", 500) != schedule(d, "index.probe", 500)


def test_rate_zero_and_one():
    assert schedule(FaultInjector(0.0), "engine.worker", 200) == [None] * 200
    all_faults = schedule(FaultInjector(1.0), "engine.worker", 200)
    assert None not in all_faults


def test_rate_roughly_respected():
    injector = FaultInjector(0.1, seed=5)
    injected = sum(
        1 for k in schedule(injector, "engine.worker", 5000) if k is not None
    )
    assert 300 <= injected <= 700  # 10% +- generous slack


def test_site_filter():
    injector = FaultInjector(1.0, sites=["kernel.gemm"])
    assert injector.decide("index.probe") is None
    assert injector.decide("kernel.gemm") is not None


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kinds"):
        FaultInjector(0.5, kinds=("transient", "meteor"))


def test_kind_selection_stays_within_configured():
    injector = FaultInjector(1.0, kinds=("transient", "permanent"), seed=3)
    kinds = set(schedule(injector, "quant.build", 200))
    assert kinds <= {"transient", "permanent"}
    assert "transient" in kinds and "permanent" in kinds


def test_max_faults_cap():
    injector = FaultInjector(1.0, max_faults=5)
    kinds = schedule(injector, "service.dispatch", 50)
    assert sum(1 for k in kinds if k is not None) == 5
    assert injector.stats.snapshot()["injected"] == 5


def test_hit_raises_typed_faults():
    with pytest.raises(TransientFault):
        FaultInjector(1.0, kinds=("transient",)).hit("engine.worker")
    with pytest.raises(PermanentFault):
        FaultInjector(1.0, kinds=("permanent",)).hit("engine.worker")
    with pytest.raises(WorkerKilledFault):
        FaultInjector(1.0, kinds=("kill",)).hit("engine.worker")


def test_latency_kind_sleeps_with_injected_clock():
    slept = []
    injector = FaultInjector(
        1.0, kinds=("latency",), latency_s=0.25, sleep=slept.append
    )
    injector.hit("kernel.gemm")
    assert slept == [0.25]


def test_stats_by_site_and_kind():
    injector = FaultInjector(1.0, kinds=("transient",))
    for _ in range(3):
        with pytest.raises(TransientFault):
            injector.hit("index.probe")
    snap = injector.stats.snapshot()
    assert snap["checks"] == 3
    assert snap["by_site"] == {"index.probe": 3}
    assert snap["by_kind"] == {"transient": 3}


def test_install_and_clear_hooks():
    previous = active_injector()
    clear_injector()
    try:
        assert active_injector() is None
        maybe_inject("engine.worker")  # no injector: free no-op
        injector = FaultInjector(1.0, kinds=("transient",))
        install_injector(injector)
        assert active_injector() is injector
        with pytest.raises(TransientFault):
            maybe_inject("engine.worker")
        clear_injector()
        assert active_injector() is None
        maybe_inject("engine.worker")
    finally:
        install_injector(previous)


def test_declared_sites_cover_the_wired_hooks():
    assert set(SITES) == {
        "engine.worker",
        "kernel.gemm",
        "kernel.rescore",
        "quant.build",
        "index.probe",
        "service.dispatch",
    }
