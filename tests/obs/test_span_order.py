"""Out-of-order span tolerance: shard workers report asynchronously.

Parent references are span *indices*, not list positions, so every
``Trace.to_dict()`` consumer must resolve them through the ``index``
field — and ``traces_jsonl`` must emit spans in a deterministic order
regardless of the order they were recorded in.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.obs.critical_path import critical_path, self_times, summarize_trace
from repro.obs.export import traces_jsonl
from repro.obs.trace import Trace, query_scope, span

pytestmark = pytest.mark.obs


def _spans_in_order() -> list[dict]:
    """root(10) -> [fast(2), slow(6 -> leaf(5))] plus a late shard span."""
    return [
        {"index": 0, "parent": -1, "name": "query", "start_s": 0.0, "wall_s": 10.0, "cpu_s": 9.0},
        {"index": 1, "parent": 0, "name": "fast", "start_s": 0.5, "wall_s": 2.0, "cpu_s": 2.0},
        {"index": 2, "parent": 0, "name": "slow", "start_s": 3.0, "wall_s": 6.0, "cpu_s": 1.0},
        {"index": 3, "parent": 2, "name": "leaf", "start_s": 3.5, "wall_s": 5.0, "cpu_s": 4.0},
        {"index": 4, "parent": 0, "name": "shard.scan", "start_s": 1.0, "wall_s": 0.5, "cpu_s": 0.5},
    ]


def _trace_dict(spans: list[dict]) -> dict:
    return {
        "query_id": "q1",
        "tag": "t",
        "started_at": 1000.0,
        "spans": spans,
    }


def _shuffled(spans: list[dict], seed: int) -> list[dict]:
    shuffled = list(spans)
    random.Random(seed).shuffle(shuffled)
    return shuffled


class TestOrderInvariance:
    def test_self_times_resolve_parents_by_index_field(self):
        ordered = _spans_in_order()
        by_index_ref = {
            s["index"]: t for s, t in zip(ordered, self_times(ordered))
        }
        for seed in range(5):
            spans = _shuffled(ordered, seed)
            by_index = {
                s["index"]: t for s, t in zip(spans, self_times(spans))
            }
            assert by_index == by_index_ref

    def test_critical_path_is_order_invariant(self):
        reference = critical_path(_trace_dict(_spans_in_order()))
        assert [p["name"] for p in reference] == ["query", "slow", "leaf"]
        for seed in range(5):
            spans = _shuffled(_spans_in_order(), seed)
            assert critical_path(_trace_dict(spans)) == reference

    def test_summarize_trace_is_order_invariant(self):
        reference = summarize_trace(_trace_dict(_spans_in_order()))
        assert reference["wall_s"] == 10.0
        for seed in range(5):
            spans = _shuffled(_spans_in_order(), seed)
            assert summarize_trace(_trace_dict(spans)) == reference


class TestTracesJsonlDeterminism:
    def test_spans_emitted_sorted_by_start_then_index(self):
        for seed in range(5):
            line = traces_jsonl(
                [_trace_dict(_shuffled(_spans_in_order(), seed))]
            ).strip()
            spans = json.loads(line)["spans"]
            keys = [(s["start_s"], s["index"]) for s in spans]
            assert keys == sorted(keys)
            assert [s["index"] for s in spans] == [0, 1, 4, 2, 3]

    def test_identical_output_for_any_recording_order(self):
        outputs = {
            traces_jsonl([_trace_dict(_shuffled(_spans_in_order(), seed))])
            for seed in range(6)
        }
        assert len(outputs) == 1

    def test_real_trace_with_foreign_spans_round_trips(self):
        trace = Trace("q2", "svc")
        with query_scope(trace):
            with span("query"):
                with span("scan"):
                    pass
        # Foreign shard spans land after the fact, stamped as ending now:
        # their start can precede already-recorded spans.
        trace.add_span("shard.scan", wall_s=5.0, shard=1)
        line = traces_jsonl([trace]).strip()
        data = json.loads(line)
        keys = [(s["start_s"], s["index"]) for s in data["spans"]]
        assert keys == sorted(keys)
        path = critical_path(data)
        assert path[0]["name"] == "query"
