"""Flight recorder: capture format, rotation, overhead, replay digests."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from _service_utils import DIM, MODEL, make_engine

from repro import QueryService
from repro.bench import latency_percentiles
from repro.core.conditions import ThresholdCondition, TopKCondition
from repro.errors import DeadlineExceededError, ServiceOverloadError
from repro.obs.capture import (
    UnsupportedPlanError,
    WorkloadRecorder,
    _classify_outcome,
    load_workload,
    plan_from_dict,
    plan_to_dict,
    result_digest,
)
from repro.obs.replay import ReplayError, WorkloadReplayer
from repro.workloads import unit_vectors

pytestmark = pytest.mark.obs


def _plan(qvec, **kwargs):
    engine = make_engine()
    return engine.query("corpus").esimilar(
        "emb", qvec, model=MODEL, **kwargs
    ).plan


class TestPlanWireFormat:
    def test_topk_plan_roundtrips(self, query_vectors):
        plan = _plan(query_vectors[0], top_k=5)
        encoded = plan_to_dict(plan)
        # Dict-level equality sidesteps ndarray ambiguity in dataclass __eq__.
        assert plan_to_dict(plan_from_dict(encoded)) == encoded
        assert json.loads(json.dumps(encoded)) == encoded

    def test_threshold_plan_roundtrips(self, query_vectors):
        plan = _plan(query_vectors[1], threshold=0.2)
        encoded = plan_to_dict(plan)
        assert encoded["condition"] == {"kind": "threshold", "threshold": 0.2}
        assert plan_to_dict(plan_from_dict(encoded)) == encoded

    def test_query_vector_is_bit_exact_through_json(self, query_vectors):
        plan = _plan(query_vectors[2], top_k=3)
        wire = json.loads(json.dumps(plan_to_dict(plan)))
        rebuilt = plan_from_dict(wire)
        assert rebuilt.query.dtype == plan.query.dtype
        assert np.array_equal(rebuilt.query, plan.query)

    def test_string_query_and_min_similarity(self):
        engine = make_engine()
        plan = engine.query("corpus").esimilar(
            "emb", "hello world", model=MODEL, top_k=4, min_similarity=0.1
        ).plan
        encoded = plan_to_dict(plan)
        rebuilt = plan_from_dict(encoded)
        assert rebuilt.query == "hello world"
        condition = rebuilt.condition
        assert isinstance(condition, TopKCondition)
        assert condition.min_similarity == 0.1

    def test_unsupported_plan_raises(self):
        from repro.algebra.logical import EJoinNode, ScanNode

        node = EJoinNode(
            ScanNode("corpus"),
            ScanNode("other"),
            "emb",
            "emb",
            MODEL,
            ThresholdCondition(0.5),
        )
        with pytest.raises(UnsupportedPlanError):
            plan_to_dict(node)
        with pytest.raises(UnsupportedPlanError):
            plan_from_dict({"op": "nope"})


class TestResultDigest:
    def test_digest_is_stable_and_discriminating(self, obs_engine):
        qvec = unit_vectors(1, DIM, stream="cap/digest")[0]

        def run(k):
            return (
                obs_engine.query("corpus")
                .esimilar("emb", qvec, model=MODEL, top_k=k)
                .execute()
            )

        a, b = run(5), run(5)
        assert result_digest(a) == result_digest(b)
        assert result_digest(a) != result_digest(run(6))

    def test_outcome_classification(self):
        assert _classify_outcome(None) == "completed"
        assert _classify_outcome(DeadlineExceededError("late")) == "shed"
        assert _classify_outcome(ServiceOverloadError("full")) == "rejected"
        assert _classify_outcome(ValueError("boom")) == "failed"


class TestRecorder:
    def test_records_land_as_jsonl(self, tmp_path, obs_engine, query_vectors):
        path = tmp_path / "wl.jsonl"
        with QueryService(obs_engine, capture_path=str(path)) as service:
            with service.session("cap") as session:
                for qvec in query_vectors[:4]:
                    session.execute(
                        service.engine.query("corpus").esimilar(
                            "emb", qvec, model=MODEL, top_k=5
                        )
                    )
            stats = service.recorder.stats_snapshot()
        records = load_workload(path)
        assert len(records) == 4 == stats["records"]
        for record in records:
            assert record["outcome"] == "completed"
            assert record["plan"]["op"] == "eselect"
            assert record["digest"] is not None
            assert record["latency_s"] > 0
        arrivals = [r["arrival_s"] for r in records]
        assert arrivals == sorted(arrivals)

    def test_rotation_bounds_disk(self, tmp_path):
        path = tmp_path / "rot.jsonl"
        recorder = WorkloadRecorder(path, max_bytes=2000, keep=2)
        from repro.algebra.logical import ScanNode

        for i in range(40):
            recorder.record(
                plan=ScanNode("corpus"),
                tag="t",
                query_id=f"q{i}",
                arrival_s=float(i),
            )
        recorder.close()
        assert recorder.rotations > 0
        generations = sorted(p.name for p in tmp_path.iterdir())
        assert "rot.jsonl" in generations
        assert "rot.jsonl.1" in generations
        assert f"rot.jsonl.{3}" not in "".join(generations)
        for gen in generations:
            assert (tmp_path / gen).stat().st_size <= 2000 + 300

    def test_unsupported_plans_still_recorded(self, tmp_path):
        from repro.algebra.logical import FilterNode, ScanNode

        recorder = WorkloadRecorder(tmp_path / "u.jsonl")
        recorder.record(
            plan=FilterNode(ScanNode("corpus"), lambda t: t),
            tag="t",
            query_id="q1",
            arrival_s=0.0,
        )
        recorder.close()
        [record] = load_workload(tmp_path / "u.jsonl")
        assert record["plan"] is None
        assert recorder.unsupported_plans == 1

    def test_failed_queries_capture_outcome(self, tmp_path, obs_engine):
        path = tmp_path / "f.jsonl"
        with QueryService(obs_engine, capture_path=str(path)) as service:
            with pytest.raises(Exception):
                service.submit(
                    service.engine.query("corpus").esimilar(
                        "emb",
                        np.ones(DIM + 3, dtype=np.float32),
                        model=MODEL,
                        top_k=5,
                    )
                )
        [record] = load_workload(path)
        assert record["outcome"] == "failed"
        assert record["digest"] is None
        assert record["error"]


class TestCaptureOverhead:
    def test_capture_disabled_overhead_under_2pct_p50(
        self, tmp_path, query_vectors
    ):
        """The acceptance gate: a capture-less service must not be slower.

        There is no pre-PR binary to diff against, so the gate compares
        the disabled path against the *enabled* one (which does strictly
        more work per query): p50(disabled) <= p50(enabled) * 1.02 plus
        an absolute slack floor for timer noise at microsecond scale.
        """
        n = 150
        qvecs = unit_vectors(n, DIM, stream="cap/overhead")

        def drive(service):
            latencies = []
            with service.session("ovh") as session:
                for qvec in qvecs[:20]:  # warmup
                    session.execute(
                        service.engine.query("corpus").esimilar(
                            "emb", qvec, model=MODEL, top_k=5
                        )
                    )
                import time

                for qvec in qvecs:
                    query = service.engine.query("corpus").esimilar(
                        "emb", qvec, model=MODEL, top_k=5
                    )
                    t0 = time.perf_counter()
                    session.execute(query)
                    latencies.append(time.perf_counter() - t0)
            return latency_percentiles(latencies)["p50"]

        with QueryService(make_engine(), result_cache_size=0) as service:
            p50_disabled = drive(service)
        with QueryService(
            make_engine(),
            result_cache_size=0,
            capture_path=str(tmp_path / "ovh.jsonl"),
        ) as service:
            p50_enabled = drive(service)
        assert p50_disabled <= p50_enabled * 1.02 + 0.0005, (
            f"capture-disabled p50 {p50_disabled * 1e3:.3f} ms vs "
            f"enabled {p50_enabled * 1e3:.3f} ms"
        )


class TestReplay:
    def _capture(self, tmp_path, *, clients=4, queries=24):
        """Drive a concurrent fig_service-style workload under capture."""
        path = tmp_path / "capture.jsonl"
        qvecs = unit_vectors(queries, DIM, stream="replay/queries")
        per_client = queries // clients
        with QueryService(make_engine(), capture_path=str(path)) as service:
            barrier = threading.Barrier(clients)
            errors = []

            def client(c):
                try:
                    with service.session(f"c{c}") as session:
                        barrier.wait()
                        for qvec in qvecs[c * per_client : (c + 1) * per_client]:
                            session.execute(
                                service.engine.query("corpus").esimilar(
                                    "emb", qvec, model=MODEL, top_k=5
                                )
                            )
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(c,))
                for c in range(clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
        return path

    def test_closed_loop_replay_matches_digests(self, tmp_path):
        path = self._capture(tmp_path)
        with QueryService(make_engine(), result_cache_size=0) as fresh:
            report = WorkloadReplayer(path, mode="closed", clients=8).run(fresh)
        assert report["ok"], report["mismatches"]
        assert report["digests"]["matched"] == 24
        assert report["digests"]["mismatched"] == 0
        assert report["capture"]["latency"]["p50"] > 0
        assert report["replay"]["latency"]["p50"] > 0
        assert report["replay"]["qps"] > 0

    def test_paced_replay_respects_arrival_order(self, tmp_path):
        path = self._capture(tmp_path, clients=2, queries=8)
        with QueryService(make_engine(), result_cache_size=0) as fresh:
            report = WorkloadReplayer(
                path, mode="paced", speed=50.0, clients=2
            ).run(fresh)
        assert report["ok"], report["mismatches"]
        assert report["digests"]["matched"] == 8

    def test_replay_detects_changed_results(self, tmp_path, query_vectors):
        path = tmp_path / "wl.jsonl"
        with QueryService(make_engine(), capture_path=str(path)) as service:
            with service.session("s") as session:
                for qvec in query_vectors[:3]:
                    session.execute(
                        service.engine.query("corpus").esimilar(
                            "emb", qvec, model=MODEL, top_k=5
                        )
                    )
        records = load_workload(path)
        records[1]["digest"] = "0" * 64  # simulate a changed result
        with QueryService(make_engine(), result_cache_size=0) as fresh:
            report = WorkloadReplayer(records, mode="closed").run(fresh)
        assert not report["ok"]
        assert report["digests"]["mismatched"] == 1
        [mismatch] = report["mismatches"]
        assert mismatch["kind"] == "digest"

    def test_unsupported_records_are_skipped_not_fatal(self, tmp_path):
        records = [
            {
                "v": 1,
                "query_id": "q1",
                "tag": "t",
                "arrival_s": 0.0,
                "deadline_s": None,
                "priority": 0,
                "min_recall": None,
                "plan": None,
                "outcome": "completed",
                "error": None,
                "latency_s": 0.001,
                "degraded": False,
                "cache_hit": False,
                "precision": "fp32",
                "digest": "ab",
            }
        ]
        with QueryService(make_engine()) as fresh:
            report = WorkloadReplayer(records, mode="closed").run(fresh)
        assert report["ok"]
        assert report["digests"]["skipped_unsupported"] == 1

    def test_invalid_modes_rejected(self):
        with pytest.raises(ReplayError):
            WorkloadReplayer([], mode="warp")
        with pytest.raises(ReplayError):
            WorkloadReplayer([], speed=0.0)
