"""Trace attribution through the coalescer: every member of a shared scan
gets the scan and its own rescore on its own trace, under concurrency."""

from __future__ import annotations

import threading

import pytest
from _service_utils import DIM, MODEL, assert_tables_equal, make_engine

from repro.service import QueryService
from repro.workloads import unit_vectors

pytestmark = pytest.mark.obs

TOP_K = 5


def _run_clients(service, vectors):
    """Barrier-release one thread per vector; collect QueryResponses."""
    n = len(vectors)
    barrier = threading.Barrier(n)
    responses = [None] * n
    errors = []

    def worker(i):
        try:
            with service.session(f"c{i}") as session:
                query = service.engine.query("corpus").esimilar(
                    "emb", vectors[i], model=MODEL, top_k=TOP_K
                )
                barrier.wait()
                responses[i] = session.execute(query, explain_analyze=True)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return responses


def _serial_reference(vectors):
    """The same queries one at a time on a bare engine, no service layers."""
    engine = make_engine()
    return [
        engine.query("corpus")
        .esimilar("emb", vec, model=MODEL, top_k=TOP_K)
        .execute()
        for vec in vectors
    ]


def test_coalesced_demux_attributes_spans_per_query(query_vectors):
    vectors = query_vectors[:8]
    with QueryService(
        make_engine(),
        result_cache_size=0,
        coalesce_window_s=0.05,
        obs_enabled=False,
    ) as service:
        responses = _run_clients(service, vectors)

    # Unique ids, one trace each.
    ids = [r.query_id for r in responses]
    assert len(set(ids)) == len(ids)

    batches = []
    for response in responses:
        trace = response.trace
        assert trace is not None
        scans = [s for s in trace.spans if s.name == "coalesce.scan"]
        rescores = [s for s in trace.spans if s.name == "rescore"]
        assert len(scans) == 1, response.explain
        assert len(rescores) == 1, response.explain
        scan = scans[0]
        assert scan.attrs["rows"] == 400
        assert scan.attrs["bytes_scanned"] > 0
        assert 1 <= scan.attrs["batch"] <= len(vectors)
        assert rescores[0].attrs["rows"] == TOP_K
        assert "coalesce.scan" in response.explain
        batches.append(scan.attrs["batch"])
    # Barrier release + a generous window: at least one scan was shared.
    assert max(batches) >= 2, batches

    # Attribution never altered results: bit-identical to serial execution.
    for response, expected in zip(responses, _serial_reference(vectors)):
        assert_tables_equal(response.table, expected, context=response.query_id)


def test_sixty_four_clients_sampled_tracing():
    # 64 distinct vectors: no query can dedupe through singleflight.
    vectors = unit_vectors(64, DIM, stream="obs-tests/coalesce64")
    with QueryService(
        make_engine(),
        result_cache_size=0,
        coalesce_window_s=0.05,
        obs_enabled=True,
        obs_sample_rate=1.0,
        obs_ring_size=256,
    ) as service:
        responses = _run_clients(service, vectors)
        retained = service.recent_traces()

    ids = [r.query_id for r in responses]
    assert len(set(ids)) == 64
    for response in responses:
        trace = response.trace
        assert trace is not None
        assert trace.query_id == response.query_id
        assert trace.status == "ok"
        assert len([s for s in trace.spans if s.name == "coalesce.scan"]) == 1
        assert len([s for s in trace.spans if s.name == "rescore"]) == 1
    # All 64 retired into the ring (sampling rate 1.0, ring large enough).
    assert len(retained) == 64
    assert {t.query_id for t in retained} == set(ids)
