"""Regression gate: tracing that samples *out* must cost (almost) nothing.

Two identical services run the same queries interleaved — one with
observability disabled, one enabled at a sampling rate that never fires —
and the sampled-out median must stay within a few percent of the
disabled median.  The interleaving (alternating which service goes first
each round) cancels cache/thermal drift; the absolute slack term absorbs
timer granularity on sub-millisecond queries.
"""

from __future__ import annotations

import statistics
import time

import pytest
from _service_utils import DIM, MODEL, make_corpus_table

from repro.embedding import HashingEmbedder
from repro.query import Engine
from repro.relational import Catalog
from repro.service import QueryService
from repro.workloads import unit_vectors

pytestmark = pytest.mark.obs

N_ROWS = 4000  # large enough that one query costs ≳ 1 ms
ROUNDS = 40
WARMUP = 8


def _make_engine():
    catalog = Catalog()
    catalog.register("corpus", make_corpus_table(N_ROWS, stream="obs-tests/ovh"))
    engine = Engine(catalog)
    engine.models.register(MODEL, HashingEmbedder(dim=DIM))
    return engine


def _timed_submit(service, qvec):
    query = service.engine.query("corpus").esimilar(
        "emb", qvec, model=MODEL, top_k=10
    )
    t0 = time.perf_counter()
    service.submit(query)
    return time.perf_counter() - t0


def test_sampled_out_tracing_overhead_under_three_percent():
    engine = _make_engine()
    vectors = unit_vectors(16, DIM, stream="obs-tests/ovh-queries")
    common = dict(coalesce=False, result_cache_size=0)
    with QueryService(engine, obs_enabled=False, **common) as off:
        with QueryService(
            engine, obs_enabled=True, obs_sample_rate=1e-6, **common
        ) as sampled:
            for i in range(WARMUP):
                _timed_submit(off, vectors[i % len(vectors)])
                _timed_submit(sampled, vectors[i % len(vectors)])
            lat_off, lat_sampled = [], []
            for i in range(ROUNDS):
                qvec = vectors[i % len(vectors)]
                pairs = [(off, lat_off), (sampled, lat_sampled)]
                if i % 2:
                    pairs.reverse()
                for svc, out in pairs:
                    out.append(_timed_submit(svc, qvec))
            # Every submission went down the sampled-out path: considered
            # but never traced.
            assert sampled.tracer.considered == WARMUP + ROUNDS
            assert sampled.tracer.sampled == 0
            assert not sampled.recent_traces()

    p50_off = statistics.median(lat_off)
    p50_sampled = statistics.median(lat_sampled)
    assert p50_sampled <= p50_off * 1.03 + 2e-4, (
        f"sampled-out tracing overhead too high: "
        f"off p50={p50_off * 1e3:.3f} ms, sampled p50={p50_sampled * 1e3:.3f} ms"
    )


def test_full_tracing_produces_complete_traces():
    engine = _make_engine()
    vectors = unit_vectors(4, DIM, stream="obs-tests/ovh-full")
    with QueryService(
        engine,
        coalesce=False,
        result_cache_size=0,
        obs_enabled=True,
        obs_sample_rate=1.0,
    ) as service:
        for qvec in vectors:
            _timed_submit(service, qvec)
        traces = service.recent_traces()
    assert len(traces) == len(vectors)
    for trace in traces:
        assert trace.status == "ok"
        names = {s.name for s in trace.spans}
        assert {"query", "admission", "cache.lookup", "execute"} <= names
