"""Critical-path extraction, self-time attribution, and the slow-query log."""

from __future__ import annotations

import threading

import pytest

from _service_utils import MODEL

from repro import QueryService
from repro.obs.critical_path import (
    SlowQueryLog,
    critical_path,
    self_times,
    summarize_trace,
)
from repro.obs.trace import Trace, query_scope, span

pytestmark = pytest.mark.obs


def _synthetic_trace() -> dict:
    """root(10) -> [fast(2), slow(6 -> leaf(5))]; self times 2/2/1/5."""
    return {
        "query_id": "q1",
        "tag": "t",
        "started_at": 1000.0,
        "spans": [
            {"index": 0, "parent": -1, "name": "query", "start_s": 0.0, "wall_s": 10.0, "cpu_s": 9.0},
            {"index": 1, "parent": 0, "name": "fast", "start_s": 0.5, "wall_s": 2.0, "cpu_s": 2.0},
            {"index": 2, "parent": 0, "name": "slow", "start_s": 3.0, "wall_s": 6.0, "cpu_s": 1.0},
            {"index": 3, "parent": 2, "name": "leaf", "start_s": 3.5, "wall_s": 5.0, "cpu_s": 4.0},
        ],
    }


class TestSelfTimes:
    def test_self_time_subtracts_children(self):
        selfs = self_times(_synthetic_trace()["spans"])
        assert selfs == [2.0, 2.0, 1.0, 5.0]

    def test_self_time_clamps_at_zero(self):
        # Concurrent children can legitimately out-sum the parent.
        spans = [
            {"index": 0, "parent": -1, "name": "r", "start_s": 0, "wall_s": 1.0},
            {"index": 1, "parent": 0, "name": "a", "start_s": 0, "wall_s": 0.8},
            {"index": 2, "parent": 0, "name": "b", "start_s": 0, "wall_s": 0.9},
        ]
        assert self_times(spans)[0] == 0.0


class TestCriticalPath:
    def test_follows_largest_wall_child(self):
        path = critical_path(_synthetic_trace())
        assert [p["name"] for p in path] == ["query", "slow", "leaf"]
        assert path[1]["self_s"] == 1.0
        assert path[2]["wall_s"] == 5.0

    def test_empty_trace(self):
        assert critical_path({"spans": []}) == []

    def test_accepts_live_trace_objects(self):
        trace = Trace("q9", "tag")
        with query_scope(trace):
            with span("work"):
                with span("inner"):
                    pass
        path = critical_path(trace)
        assert [p["name"] for p in path] == ["query", "work", "inner"]

    def test_summary_shape(self):
        summary = summarize_trace(_synthetic_trace())
        assert summary["query_id"] == "q1"
        assert summary["wall_s"] == 10.0
        assert summary["spans"] == 4
        assert [h["name"] for h in summary["hotspots"]] == [
            "leaf",
            "query",
            "fast",
        ]
        assert [p["name"] for p in summary["critical_path"]] == [
            "query",
            "slow",
            "leaf",
        ]


class TestSlowQueryLog:
    def _trace(self, wall: float, qid: str) -> dict:
        return {
            "query_id": qid,
            "tag": "t",
            "started_at": 0.0,
            "spans": [
                {
                    "index": 0,
                    "parent": -1,
                    "name": "query",
                    "start_s": 0.0,
                    "wall_s": wall,
                    "cpu_s": wall,
                }
            ],
        }

    def test_keeps_top_k_slowest(self):
        log = SlowQueryLog(3)
        for i, wall in enumerate([0.1, 0.5, 0.2, 0.9, 0.05, 0.4]):
            log.offer(self._trace(wall, f"q{i}"))
        snapshot = log.snapshot()
        assert [e["wall_s"] for e in snapshot] == [0.9, 0.5, 0.4]
        assert log.offered == 6
        assert len(log) == 3

    def test_k_zero_disables(self):
        log = SlowQueryLog(0)
        assert not log.offer(self._trace(1.0, "q"))
        assert log.snapshot() == []

    def test_concurrent_offers(self):
        log = SlowQueryLog(8)
        threads = [
            threading.Thread(
                target=lambda base: [
                    log.offer(self._trace(base + i * 0.01, f"q{base}-{i}"))
                    for i in range(20)
                ],
                args=(b,),
            )
            for b in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snapshot = log.snapshot()
        assert len(snapshot) == 8
        walls = [e["wall_s"] for e in snapshot]
        assert walls == sorted(walls, reverse=True)


class TestServiceSlowQueries:
    def test_slow_queries_populated_from_traced_queries(
        self, obs_engine, query_vectors
    ):
        with QueryService(
            obs_engine, obs_enabled=True, obs_sample_rate=1.0, slow_k=4
        ) as service:
            with service.session("slow") as session:
                for qvec in query_vectors[:6]:
                    session.execute(
                        service.engine.query("corpus").esimilar(
                            "emb", qvec, model=MODEL, top_k=5
                        )
                    )
            entries = service.slow_queries()
        assert 0 < len(entries) <= 4
        walls = [e["wall_s"] for e in entries]
        assert walls == sorted(walls, reverse=True)
        for entry in entries:
            assert entry["critical_path"][0]["name"] == "query"
            assert entry["hotspots"]

    def test_untraced_service_has_empty_slow_log(self, obs_engine, query_vectors):
        with QueryService(obs_engine, obs_enabled=False) as service:
            with service.session("s") as session:
                session.execute(
                    service.engine.query("corpus").esimilar(
                        "emb", query_vectors[0], model=MODEL, top_k=5
                    )
                )
            assert service.slow_queries() == []
