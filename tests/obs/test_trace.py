"""Span tracer: ambient propagation, sampling, site gating, the ring."""

from __future__ import annotations

import pytest

from repro.obs.trace import Trace, Tracer, current_trace, query_scope, span

pytestmark = pytest.mark.obs


class TestAmbientPropagation:
    def test_no_scope_means_null_span(self):
        assert current_trace() is None
        with span("anything") as sp:
            sp.set(rows=3)  # must be a harmless no-op
        # The unsampled path allocates nothing: one shared singleton.
        assert span("a") is span("b")

    def test_nesting_records_parent_links(self):
        trace = Trace("q1", "t")
        with query_scope(trace):
            assert current_trace() is trace
            with span("a"):
                with span("b") as sp:
                    sp.set(rows=7)
            with span("c"):
                pass
        assert current_trace() is None
        names = [s.name for s in trace.spans]
        assert names == ["query", "a", "b", "c"]
        parents = [s.parent for s in trace.spans]
        assert parents == [-1, 0, 1, 0]
        assert trace.spans[2].attrs["rows"] == 7
        assert trace.status == "ok"
        # The root span covers its children.
        assert trace.spans[0].wall_s >= trace.spans[1].wall_s >= 0.0

    def test_scope_failure_marks_trace(self):
        trace = Trace("q1", "t")
        with pytest.raises(RuntimeError, match="boom"):
            with query_scope(trace):
                with span("a"):
                    raise RuntimeError("boom")
        assert trace.status == "failed"
        assert "boom" in trace.error
        # The failing span carries the error too.
        assert "boom" in trace.spans[1].attrs["error"]

    def test_none_trace_scope_is_cheap_and_transparent(self):
        with query_scope(None):
            assert current_trace() is None
            with span("a"):
                pass

    def test_scopes_restore_outer_trace(self):
        outer, inner = Trace("q1", "t"), Trace("q2", "t")
        with query_scope(outer):
            with query_scope(inner):
                assert current_trace() is inner
            assert current_trace() is outer


class TestForeignSpans:
    def test_foreign_span_parents_at_root(self):
        trace = Trace("q1", "t")
        with query_scope(trace):
            pass
        trace.add_span("coalesce.scan", wall_s=0.01, cpu_s=0.008, batch=4)
        foreign = trace.spans[-1]
        assert foreign.parent == 0
        assert foreign.start_s >= 0.0
        assert foreign.wall_s == 0.01
        assert foreign.attrs["batch"] == 4

    def test_foreign_span_on_empty_trace_is_a_root(self):
        trace = Trace("q1", "t")
        trace.add_span("rescore", wall_s=0.001)
        assert trace.spans[0].parent == -1


class TestSiteGating:
    def test_sites_gate_by_prefix(self):
        tracer = Tracer(enabled=True, sample_rate=1.0, sites="coalesce,planner", seed=1)
        trace = tracer.maybe_trace("q1", "t")
        assert trace.allows("coalesce.scan")
        assert trace.allows("planner.eselect")
        assert not trace.allows("admission")
        with query_scope(trace):
            with span("admission"):
                pass
            with span("coalesce.wait"):
                pass
        # The root "query" span is never gated; "admission" was.
        assert [s.name for s in trace.spans] == ["query", "coalesce.wait"]
        # Foreign appends honour the same gate.
        assert trace.add_span("rescore", wall_s=0.001) is None
        assert len(trace.spans) == 2

    def test_empty_sites_allows_everything(self):
        trace = Trace("q1", "t")
        assert trace.allows("anything.at.all")


class TestSampling:
    def test_deterministic_for_a_pinned_seed(self):
        a = Tracer(enabled=True, sample_rate=0.3, seed=7)
        b = Tracer(enabled=True, sample_rate=0.3, seed=7)
        seq_a = [a.maybe_trace(f"q{i}", "t") is not None for i in range(200)]
        seq_b = [b.maybe_trace(f"q{i}", "t") is not None for i in range(200)]
        assert seq_a == seq_b
        assert 0 < sum(seq_a) < 200
        assert a.considered == 200
        assert a.sampled == sum(seq_a)

    def test_rate_bounds(self):
        never = Tracer(enabled=True, sample_rate=0.0, seed=7)
        assert all(never.maybe_trace(f"q{i}", "t") is None for i in range(50))
        always = Tracer(enabled=True, sample_rate=1.0, seed=7)
        assert all(
            always.maybe_trace(f"q{i}", "t") is not None for i in range(50)
        )

    def test_disabled_still_honours_force(self):
        tracer = Tracer(enabled=False, sample_rate=1.0, seed=7)
        assert tracer.maybe_trace("q1", "t") is None
        forced = tracer.maybe_trace("q1", "t", force=True)
        assert isinstance(forced, Trace)


class TestRing:
    def test_ring_keeps_newest_oldest_first(self):
        tracer = Tracer(enabled=True, sample_rate=1.0, ring_size=4, seed=7)
        for i in range(10):
            tracer.record(Trace(f"q{i}", "t"))
        recent = tracer.recent()
        assert [t.query_id for t in recent] == ["q6", "q7", "q8", "q9"]

    def test_to_dict_shape(self):
        trace = Trace("q1", "cli/q1")
        with query_scope(trace):
            with span("a") as sp:
                sp.set(rows=2)
        snap = trace.to_dict()
        assert snap["query_id"] == "q1"
        assert snap["tag"] == "cli/q1"
        assert snap["status"] == "ok"
        assert len(snap["spans"]) == 2
        assert snap["spans"][1]["attrs"] == {"rows": 2}

    def test_to_dict_emits_absolute_span_starts(self):
        trace = Trace("q2", "cli/q2")
        with query_scope(trace):
            with span("a"):
                with span("b"):
                    pass
        snap = trace.to_dict()
        for span_dict in snap["spans"]:
            # start_at anchors the relative offset to wall-clock epoch
            # time, so traces from different processes can be aligned.
            assert span_dict["start_at"] == pytest.approx(
                snap["started_at"] + span_dict["start_s"], abs=1e-5
            )
        starts = [s["start_at"] for s in snap["spans"]]
        assert starts == sorted(starts)
