"""The live introspection endpoint: routes, formats, scrape-under-load."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from _service_utils import MODEL

from repro import QueryService
from repro.obs.server import METRICS_CONTENT_TYPE

pytestmark = pytest.mark.obs


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode()


@pytest.fixture
def serving(obs_engine):
    with QueryService(
        obs_engine, obs_enabled=True, obs_sample_rate=1.0, http_port=0
    ) as service:
        yield service, service.serve_http().url


class TestRoutes:
    def test_metrics_route_is_valid_exposition(self, serving, query_vectors):
        service, url = serving
        with service.session("s") as session:
            session.execute(
                service.engine.query("corpus").esimilar(
                    "emb", query_vectors[0], model=MODEL, top_k=5
                )
            )
        status, headers, body = _get(url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == METRICS_CONTENT_TYPE
        # Every exported family carries both HELP and TYPE headers.
        helps = {
            line.split()[2]
            for line in body.splitlines()
            if line.startswith("# HELP")
        }
        types = {
            line.split()[2]
            for line in body.splitlines()
            if line.startswith("# TYPE")
        }
        assert helps == types and helps
        assert "repro_queries_total" in types
        assert 'outcome="completed"} 1' in body

    def test_health_route(self, serving):
        _, url = serving
        status, headers, body = _get(url + "/health")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        health = json.loads(body)
        assert health["status"] in ("ok", "degraded")

    def test_traces_and_slow_routes(self, serving, query_vectors):
        service, url = serving
        with service.session("s") as session:
            for qvec in query_vectors[:3]:
                session.execute(
                    service.engine.query("corpus").esimilar(
                        "emb", qvec, model=MODEL, top_k=5
                    )
                )
        _, _, traces_body = _get(url + "/traces")
        lines = [line for line in traces_body.splitlines() if line]
        assert len(lines) == 3
        for line in lines:
            trace = json.loads(line)
            assert trace["spans"][0]["name"] == "query"
            # Satellite: every span carries its absolute wall-clock start.
            for span_dict in trace["spans"]:
                assert span_dict["start_at"] >= trace["started_at"]
        _, _, slow_body = _get(url + "/slow")
        slow = json.loads(slow_body)
        assert len(slow) == 3
        assert slow[0]["critical_path"]

    def test_unknown_route_is_404(self, serving):
        _, url = serving
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(url + "/nope")
        assert excinfo.value.code == 404

    def test_scrape_while_queries_in_flight(self, serving, query_vectors):
        """The acceptance criterion: a valid scrape during live traffic."""
        service, url = serving
        stop = threading.Event()
        errors = []

        def traffic():
            try:
                with service.session("bg") as session:
                    i = 0
                    while not stop.is_set():
                        session.execute(
                            service.engine.query("corpus").esimilar(
                                "emb",
                                query_vectors[i % len(query_vectors)],
                                model=MODEL,
                                top_k=5,
                            )
                        )
                        i += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=traffic)
        thread.start()
        try:
            for _ in range(5):
                status, _, body = _get(url + "/metrics")
                assert status == 200
                assert "# HELP repro_queries_total" in body
                assert "# TYPE repro_queries_total counter" in body
                status, _, _ = _get(url + "/slow")
                assert status == 200
        finally:
            stop.set()
            thread.join()
        assert not errors


class TestLifecycle:
    def test_serve_http_is_idempotent(self, obs_engine):
        with QueryService(obs_engine) as service:
            first = service.serve_http()
            assert service.serve_http() is first
            assert first.port > 0
            assert first.url.startswith("http://127.0.0.1:")

    def test_shutdown_closes_endpoint(self, obs_engine):
        service = QueryService(obs_engine, http_port=0)
        url = service.serve_http().url
        service.shutdown()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url + "/health", timeout=1)

    def test_server_close_is_idempotent(self, obs_engine):
        with QueryService(obs_engine) as service:
            server = service.serve_http()
            server.close()
            server.close()
