"""Fixtures for the observability test suite.

The engine/corpus helpers live in ``tests/service/_service_utils.py``;
this conftest puts that directory on ``sys.path`` so the obs tests reuse
them instead of growing a divergent copy.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "service"))

from _service_utils import DIM, make_engine  # noqa: E402

from repro.obs.metrics import reset_registry  # noqa: E402
from repro.workloads import unit_vectors  # noqa: E402


@pytest.fixture(autouse=True)
def fresh_registry():
    """Each test starts from (and leaves behind) an empty process registry."""
    reset_registry()
    yield
    reset_registry()


@pytest.fixture
def obs_engine():
    return make_engine()


@pytest.fixture
def query_vectors():
    return unit_vectors(32, DIM, stream="obs-tests/queries")
