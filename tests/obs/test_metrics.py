"""Metrics registry: counters, gauges, log-histogram percentiles, export."""

from __future__ import annotations

import math

import pytest

from repro.obs.export import prometheus_text
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    reset_registry,
)
from repro.reliability.breaker import CircuitBreaker

pytestmark = pytest.mark.obs


class TestCounterGauge:
    def test_counter_is_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("inflight")
        g.set(3)
        g.add(-1)
        assert g.value == 2.0

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total", a="1") is reg.counter("x_total", a="1")
        assert reg.counter("x_total", a="1") is not reg.counter("x_total", a="2")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")
        # Same conflict across label sets of one name.
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x_total", path="a")


class TestHistogram:
    def test_empty_percentile_is_none(self):
        h = Histogram("lat", {})
        assert h.percentile(50) is None
        assert h.count == 0

    def test_single_value_clamps_all_percentiles(self):
        h = Histogram("lat", {})
        h.observe(0.005)
        assert h.percentile(50) == 0.005
        assert h.percentile(99) == 0.005

    def test_percentiles_are_ordered_and_clamped(self):
        h = Histogram("lat", {})
        for _ in range(50):
            h.observe(0.001)
        for _ in range(50):
            h.observe(0.004)
        p50, p95, p99 = h.percentile(50), h.percentile(95), h.percentile(99)
        assert 0.001 <= p50 <= p95 <= p99 <= 0.004
        assert p50 < 0.002  # rank 50 falls inside the low bucket
        assert p99 == 0.004  # interpolation clamps to the observed max

    def test_below_min_value_lands_in_bucket_zero(self):
        h = Histogram("lat", {})
        h.observe(1e-9)
        assert h.count == 1
        assert h.percentile(50) == 1e-9

    def test_nan_and_negative_ignored(self):
        h = Histogram("lat", {})
        h.observe(float("nan"))
        h.observe(-1.0)
        assert h.count == 0

    def test_snapshot_shape(self):
        h = Histogram("lat", {})
        for v in (0.001, 0.002, 0.004):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert math.isclose(snap["sum"], 0.007)
        assert set(snap) == {"count", "sum", "p50", "p95", "p99"}


class TestRegistrySnapshotAndExport:
    def test_snapshot_key_format(self):
        reg = MetricsRegistry()
        reg.gauge("g", b="2", a="1").set(5)
        reg.counter("c_total").inc()
        snap = reg.snapshot()
        assert snap["g{a=1,b=2}"] == 5.0
        assert snap["c_total"] == 1

    def test_prometheus_text_exposition(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", outcome="ok").inc(3)
        h = reg.histogram("repro_lat_seconds")
        h.observe(0.002)
        text = prometheus_text(reg)
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{outcome="ok"} 3' in text
        assert "# TYPE repro_lat_seconds summary" in text
        assert "repro_lat_seconds_count 1" in text
        assert 'repro_lat_seconds{quantile="0.5"} 0.002' in text
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.gauge("g", path='a"b\nc').set(1)
        text = prometheus_text(reg)
        assert 'path="a\\"b\\nc"' in text

    def test_empty_histogram_quantiles_render_nan(self):
        reg = MetricsRegistry()
        reg.histogram("lat")
        text = prometheus_text(reg)
        assert 'lat{quantile="0.99"} NaN' in text


class TestProcessRegistry:
    def test_registry_is_process_wide_until_reset(self):
        r1 = registry()
        assert registry() is r1
        reset_registry()
        assert registry() is not r1

    def test_breaker_transitions_land_in_registry(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=0.0)
        breaker.record_failure()
        breaker.record_failure()  # trips open
        opened = registry().counter("repro_breaker_transitions_total", to="open")
        assert opened.value == 1
        assert breaker.allow()  # half-open trial after zero cooldown
        breaker.record_success()  # recovers
        closed = registry().counter("repro_breaker_transitions_total", to="closed")
        assert closed.value == 1
        assert breaker.closes == 1
