"""Exporter edge cases: escaping, empty registry, non-finite values, kinds."""

from __future__ import annotations

import math

import pytest

from repro.obs.export import prometheus_text
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.obs


class TestLabelEscaping:
    def test_quotes_backslashes_newlines(self):
        reg = MetricsRegistry()
        reg.counter(
            "edge_total", path='a"b', detail="back\\slash", note="two\nlines"
        ).inc()
        text = prometheus_text(reg)
        [sample] = [
            line for line in text.splitlines() if line.startswith("edge_total")
        ]
        assert 'path="a\\"b"' in sample
        assert 'detail="back\\\\slash"' in sample
        assert 'note="two\\nlines"' in sample

    def test_help_text_escapes_backslash_and_newline(self):
        reg = MetricsRegistry()
        reg.describe("edge_total", "line one\nline \\ two")
        reg.counter("edge_total").inc()
        text = prometheus_text(reg)
        # describe() collapses whitespace, so the newline never survives
        # to the HELP line; backslashes are escaped per the format.
        [help_line] = [
            line for line in text.splitlines() if line.startswith("# HELP")
        ]
        assert "\n" not in help_line
        assert "\\\\" in help_line


class TestHelpLines:
    def test_registered_description_wins(self):
        reg = MetricsRegistry()
        reg.describe("a_total", "What a_total counts.")
        reg.counter("a_total")
        assert "# HELP a_total What a_total counts." in prometheus_text(reg)

    def test_docstring_fallback(self):
        reg = MetricsRegistry()
        reg.counter("b_total")
        text = prometheus_text(reg)
        assert "# HELP b_total Monotonic event counter (thread-safe)." in text

    def test_help_precedes_type_per_family(self):
        reg = MetricsRegistry()
        reg.counter("x_total", shard="0")
        reg.counter("x_total", shard="1")
        reg.histogram("y_seconds").observe(0.1)
        lines = prometheus_text(reg).splitlines()
        for name in ("x_total", "y_seconds"):
            help_i = lines.index(
                next(ln for ln in lines if ln.startswith(f"# HELP {name}"))
            )
            assert lines[help_i + 1].startswith(f"# TYPE {name}")
        # One header pair per family, not per labelled child.
        assert sum(ln.startswith("# HELP x_total") for ln in lines) == 1


class TestEmptyRegistry:
    def test_empty_registry_renders_empty_string(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestNonFiniteValues:
    def test_nan_and_negative_observations_ignored(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds")
        h.observe(float("nan"))
        h.observe(-1.0)
        assert h.count == 0
        text = prometheus_text(reg)
        assert "lat_seconds_count 0" in text
        # Percentiles of an empty histogram render as NaN, not a crash.
        assert 'lat_seconds{quantile="0.5"} NaN' in text

    def test_inf_observation_lands_in_overflow_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds")
        h.observe(float("inf"))
        h.observe(0.001)
        assert h.count == 2
        text = prometheus_text(reg)
        assert "lat_seconds_sum +Inf" in text
        # The inf observation counts into the overflow bucket, so the tail
        # percentile reports that bucket's (finite, huge) bound.
        assert h.percentile(99) > 1e6 and math.isfinite(h.percentile(50))

    def test_inf_gauge_formats_signed(self):
        reg = MetricsRegistry()
        reg.gauge("up_high").set(float("inf"))
        reg.gauge("down_low").set(float("-inf"))
        reg.gauge("not_a_number").set(float("nan"))
        text = prometheus_text(reg)
        assert "up_high +Inf" in text
        assert "down_low -Inf" in text
        assert "not_a_number NaN" in text


class TestKindConflicts:
    def test_one_name_one_kind(self):
        reg = MetricsRegistry()
        reg.counter("thing_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("thing_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.histogram("thing_total")

    def test_conflict_even_with_different_labels(self):
        reg = MetricsRegistry()
        reg.counter("multi_total", shard="0")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("multi_total", shard="1")
