"""Bench regression comparison: report diffing and the CLI exit code."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import (
    compare_dirs,
    compare_reports,
    load_reports,
    render_comparison,
)

pytestmark = pytest.mark.obs


def _report(figure: str, p50s: dict[tuple, float], *, smoke: bool = False) -> dict:
    return {
        "figure": figure,
        "config": {"smoke": smoke},
        "latency": [
            {
                "row": i,
                "row_label": row_label,
                "column": column,
                "percentiles": {"p50": p50, "p95": p50 * 2, "p99": p50 * 3, "n": 50},
            }
            for i, ((row_label, column), p50) in enumerate(p50s.items())
        ],
    }


BASE = {"fig_x": _report("fig_x", {("64", "seconds"): 0.010, ("1", "seconds"): 0.002})}


class TestCompareReports:
    def test_identical_reports_pass(self):
        result = compare_reports(BASE, BASE)
        assert result["ok"]
        assert result["compared"] == 2
        assert result["regressions"] == []

    def test_injected_regression_beyond_threshold_fails(self):
        current = {
            "fig_x": _report(
                "fig_x", {("64", "seconds"): 0.013, ("1", "seconds"): 0.002}
            )
        }
        result = compare_reports(BASE, current, threshold_pct=20.0)
        assert not result["ok"]
        [reg] = result["regressions"]
        assert reg["row_label"] == "64"
        assert reg["delta_pct"] == pytest.approx(30.0)
        assert "REGRESSION" in render_comparison(result)

    def test_regression_within_threshold_passes(self):
        current = {
            "fig_x": _report(
                "fig_x", {("64", "seconds"): 0.0115, ("1", "seconds"): 0.002}
            )
        }
        assert compare_reports(BASE, current, threshold_pct=20.0)["ok"]

    def test_improvements_never_fail(self):
        current = {
            "fig_x": _report(
                "fig_x", {("64", "seconds"): 0.004, ("1", "seconds"): 0.002}
            )
        }
        result = compare_reports(BASE, current)
        assert result["ok"]
        assert len(result["improvements"]) == 1

    def test_sub_noise_entries_skipped(self):
        base = {"fig_x": _report("fig_x", {("1", "seconds"): 0.0001})}
        current = {"fig_x": _report("fig_x", {("1", "seconds"): 0.0009})}
        result = compare_reports(base, current, min_seconds=0.0005)
        assert result["ok"]
        assert result["compared"] == 0

    def test_smoke_mismatch_skips_figure(self):
        current = {
            "fig_x": _report(
                "fig_x", {("64", "seconds"): 9.0}, smoke=True
            )
        }
        result = compare_reports(BASE, current)
        assert result["ok"]
        assert result["skipped"] == [
            {"figure": "fig_x", "reason": "smoke_mismatch"}
        ]

    def test_missing_figures_reported_not_fatal(self):
        result = compare_reports(BASE, {})
        assert result["ok"]
        assert result["skipped"][0]["reason"] == "missing_in_current"


class TestDirsAndCli:
    def _write(self, directory, reports):
        directory.mkdir(parents=True, exist_ok=True)
        for figure, report in reports.items():
            (directory / f"BENCH_{figure}.json").write_text(
                json.dumps(report), encoding="utf-8"
            )

    def test_load_reports_skips_garbage(self, tmp_path):
        self._write(tmp_path, BASE)
        (tmp_path / "BENCH_broken.json").write_text("{nope", encoding="utf-8")
        reports = load_reports(tmp_path)
        assert list(reports) == ["fig_x"]

    def test_compare_dirs_round_trip(self, tmp_path):
        self._write(tmp_path / "base", BASE)
        self._write(tmp_path / "cur", BASE)
        result = compare_dirs(tmp_path / "base", tmp_path / "cur")
        assert result["ok"] and result["compared"] == 2

    def test_cli_exits_nonzero_on_injected_regression(self, tmp_path):
        """The acceptance criterion: >20% injected p50 regression fails."""
        from repro.bench.__main__ import main

        self._write(tmp_path / "base", BASE)
        self._write(
            tmp_path / "cur",
            {
                "fig_x": _report(
                    "fig_x",
                    {("64", "seconds"): 0.0125, ("1", "seconds"): 0.002},
                )
            },
        )
        out = tmp_path / "cmp.json"
        code = main(
            [
                "--compare",
                str(tmp_path / "base"),
                "--compare-current",
                str(tmp_path / "cur"),
                "--compare-output",
                str(out),
            ]
        )
        assert code == 1
        written = json.loads(out.read_text(encoding="utf-8"))
        assert not written["ok"]
        assert written["regressions"][0]["delta_pct"] == pytest.approx(25.0)

    def test_cli_exits_zero_on_identical(self, tmp_path):
        from repro.bench.__main__ import main

        self._write(tmp_path / "base", BASE)
        self._write(tmp_path / "cur", BASE)
        code = main(
            [
                "--compare",
                str(tmp_path / "base"),
                "--compare-current",
                str(tmp_path / "cur"),
            ]
        )
        assert code == 0

    def test_cli_honours_threshold_flag(self, tmp_path):
        from repro.bench.__main__ import main

        self._write(tmp_path / "base", BASE)
        self._write(
            tmp_path / "cur",
            {
                "fig_x": _report(
                    "fig_x",
                    {("64", "seconds"): 0.0125, ("1", "seconds"): 0.002},
                )
            },
        )
        args = [
            "--compare",
            str(tmp_path / "base"),
            "--compare-current",
            str(tmp_path / "cur"),
            "--compare-threshold",
        ]
        assert main([*args, "50"]) == 0
        assert main([*args, "10"]) == 1
