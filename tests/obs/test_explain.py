"""EXPLAIN ANALYZE end-to-end through the query service."""

from __future__ import annotations

import pytest
from _service_utils import DIM, MODEL

from repro.service import QueryService

pytestmark = pytest.mark.obs


def _query(service, qvec, *, top_k=5):
    return service.engine.query("corpus").esimilar(
        "emb", qvec, model=MODEL, top_k=top_k
    )


def test_explain_analyze_renders_the_span_tree(obs_engine, query_vectors):
    # obs disabled entirely: explain_analyze must still force a trace.
    with QueryService(obs_engine, obs_enabled=False) as service:
        with service.session("cli") as session:
            response = session.execute(
                _query(service, query_vectors[0]), explain_analyze=True
            )
    assert response.table.num_rows == 5
    assert response.query_id is not None
    text = response.explain
    lines = text.splitlines()
    assert lines[0].startswith(f"EXPLAIN ANALYZE {response.query_id} ")
    assert "tag=cli/q" in lines[0]
    assert "status=ok" in lines[0]
    for name in ("query", "admission", "plan.cache", "cache.lookup", "execute"):
        assert name in text, f"span {name!r} missing from:\n{text}"
    # The coalesced single query still records the shared scan + rescore.
    assert "coalesce.scan" in text
    assert "rescore" in text
    assert "ms wall" in text and "ms cpu" in text


def test_explain_analyze_shows_cache_hit(obs_engine, query_vectors):
    with QueryService(obs_engine, obs_enabled=False) as service:
        with service.session("cli") as session:
            query = _query(service, query_vectors[1])
            first = session.execute(query, explain_analyze=True)
            second = session.execute(query, explain_analyze=True)
    assert "hit=false" in first.explain
    assert "hit=true" in second.explain
    assert second.query_id != first.query_id
    # A cache hit never reaches the engine: no execute span.
    assert "execute" not in second.explain


def test_explain_analyze_direct_path(obs_engine, query_vectors):
    with QueryService(obs_engine, coalesce=False, obs_enabled=False) as service:
        with service.session("cli") as session:
            response = session.execute(
                _query(service, query_vectors[2]), explain_analyze=True
            )
    assert "mode=direct" in response.explain
    assert "planner.eselect" in response.explain


def test_explain_analyze_ejoin_shows_engine_run():
    # Big enough that the tensor join splits into multiple blocks and
    # actually runs on the morsel executor (small joins execute inline).
    from _service_utils import make_corpus_table

    from repro.embedding import HashingEmbedder
    from repro.engine import ExecutionEngine
    from repro.query import Engine
    from repro.relational import Catalog

    catalog = Catalog()
    catalog.register("corpus", make_corpus_table(4000, stream="obs-tests/ejoin"))
    catalog.register("other", make_corpus_table(120, stream="obs-tests/ejoin-r"))
    engine = Engine(catalog)
    engine.models.register(MODEL, HashingEmbedder(dim=DIM))
    engine.executor = ExecutionEngine(n_threads=2)

    with QueryService(engine, obs_enabled=False) as service:
        with service.session("cli") as session:
            query = service.engine.query("corpus").ejoin(
                "other", left_on="emb", right_on="emb", model=MODEL, top_k=3
            )
            response = session.execute(query, explain_analyze=True)
    assert "planner.ejoin" in response.explain
    assert "engine.run" in response.explain
    # engine.run nests under the planner span, which nests under execute.
    for line in response.explain.splitlines():
        if "engine.run" in line:
            assert "morsels=" in line
    assert response.table.num_rows > 0


def test_plain_execute_still_returns_a_table(obs_engine, query_vectors):
    with QueryService(obs_engine, obs_enabled=False) as service:
        with service.session("cli") as session:
            table = session.execute(_query(service, query_vectors[3]))
    assert table.num_rows == 5


def test_failed_query_trace_retires_with_status(obs_engine, query_vectors):
    with QueryService(obs_engine, obs_sample_rate=1.0) as service:
        with service.session("cli") as session:
            # Wrong query dimensionality: fails during execution, inside
            # the trace scope, not at build time.
            bad = service.engine.query("corpus").esimilar(
                "emb", query_vectors[0][: DIM // 2], model=MODEL, top_k=5
            )
            with pytest.raises(Exception):
                session.execute(bad, explain_analyze=True)
        traces = service.recent_traces()
    assert traces, "failed query must still retire into the ring"
    assert traces[-1].status == "failed"
    assert traces[-1].error
