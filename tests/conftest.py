"""Shared test fixtures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings as _hypothesis_settings

# Property tests explore deterministically so the tier-1 gate cannot flake
# on a lucky random walk; per-test @settings still override other fields.
_hypothesis_settings.register_profile("deterministic", derandomize=True)
_hypothesis_settings.load_profile("deterministic")

from repro.embedding import HashingEmbedder
from repro.relational import DataType, Field, Schema, Table
from repro.workloads import unit_vectors


@pytest.fixture()
def small_vectors() -> tuple[np.ndarray, np.ndarray]:
    """Two small, deterministic unit-vector relations."""
    left = unit_vectors(30, 8, seed=101)
    right = unit_vectors(40, 8, seed=202)
    return left, right


@pytest.fixture()
def hash_model() -> HashingEmbedder:
    return HashingEmbedder(dim=16, seed=7)


@pytest.fixture()
def people_table() -> Table:
    schema = Schema.of(
        Field("id", DataType.INT64),
        Field("name", DataType.STRING),
        Field("age", DataType.INT64),
        Field("score", DataType.FLOAT64),
    )
    rows = [
        {"id": 1, "name": "ada", "age": 36, "score": 9.5},
        {"id": 2, "name": "bob", "age": 41, "score": 7.25},
        {"id": 3, "name": "cyd", "age": 29, "score": 8.0},
        {"id": 4, "name": "dan", "age": 36, "score": 5.5},
        {"id": 5, "name": "eve", "age": 52, "score": 6.75},
    ]
    return Table.from_dicts(schema, rows)
