"""Unit tests for naive and prefetch E-NLJ operators."""

import numpy as np
import pytest

from repro.core import ThresholdCondition, TopKCondition, naive_nlj, prefetch_nlj
from repro.errors import DimensionalityError, JoinError
from repro.vector import Kernel

THRESHOLD = ThresholdCondition(0.4)


@pytest.fixture()
def words():
    left = ["barbecue", "grill", "piano", "sqlite"]
    right = ["barbeque", "grilling", "pianos", "postgres", "violin"]
    return left, right


class TestNaiveNLJ:
    def test_quadratic_model_calls(self, words, hash_model):
        """The naive formulation embeds BOTH tuples per pair:
        2 * |R| * |S| model calls (E-NL Join Cost, Section IV-A)."""
        left, right = words
        result = naive_nlj(left, right, hash_model, THRESHOLD)
        assert result.stats.model_calls == 2 * len(left) * len(right)
        assert hash_model.usage.calls == 2 * len(left) * len(right)

    def test_matches_prefetch_results(self, words, hash_model):
        left, right = words
        naive = naive_nlj(left, right, hash_model, THRESHOLD)
        prefetch = prefetch_nlj(left, right, THRESHOLD, model=hash_model)
        assert naive.pairs() == prefetch.pairs()

    def test_scalar_kernel_same_result(self, words, hash_model):
        left, right = words
        a = naive_nlj(left, right, hash_model, THRESHOLD, kernel=Kernel.SCALAR)
        b = naive_nlj(left, right, hash_model, THRESHOLD, kernel=Kernel.VECTORIZED)
        assert a.pairs() == b.pairs()

    def test_topk_condition(self, words, hash_model):
        left, right = words
        result = naive_nlj(left, right, hash_model, TopKCondition(1))
        assert len(result) == len(left)

    def test_gemm_kernel_rejected(self, words, hash_model):
        left, right = words
        with pytest.raises(JoinError, match="tensor"):
            naive_nlj(left, right, hash_model, THRESHOLD, kernel=Kernel.GEMM)

    def test_strategy_label(self, words, hash_model):
        left, right = words
        result = naive_nlj(left, right, hash_model, THRESHOLD)
        assert result.stats.strategy.startswith("naive-nlj")


class TestPrefetchNLJ:
    def test_linear_model_calls(self, words, hash_model):
        """Prefetch embeds once per tuple: |R| + |S| calls."""
        left, right = words
        result = prefetch_nlj(left, right, THRESHOLD, model=hash_model)
        assert result.stats.model_calls == len(left) + len(right)
        assert hash_model.usage.calls == len(left) + len(right)

    def test_vector_inputs_no_model_needed(self, small_vectors):
        left, right = small_vectors
        result = prefetch_nlj(left, right, THRESHOLD)
        assert result.stats.model_calls == 0

    def test_raw_items_without_model_rejected(self, words):
        left, right = words
        with pytest.raises(JoinError, match="model"):
            prefetch_nlj(left, right, THRESHOLD)

    def test_scalar_equals_vectorized(self, small_vectors):
        left, right = small_vectors
        a = prefetch_nlj(left[:10], right[:10], THRESHOLD, kernel=Kernel.SCALAR)
        b = prefetch_nlj(left[:10], right[:10], THRESHOLD, kernel=Kernel.VECTORIZED)
        assert a.pairs() == b.pairs()

    def test_matches_bruteforce(self, small_vectors):
        left, right = small_vectors
        from repro.vector import cosine_matrix_gemm

        scores = cosine_matrix_gemm(left, right)
        expected = set(zip(*np.nonzero(scores >= THRESHOLD.threshold)))
        got = prefetch_nlj(left, right, THRESHOLD).pairs()
        assert got == {(int(i), int(j)) for i, j in expected}

    def test_topk_per_left_row(self, small_vectors):
        left, right = small_vectors
        result = prefetch_nlj(left, right, TopKCondition(3))
        counts = np.bincount(result.left_ids, minlength=len(left))
        assert (counts == 3).all()

    def test_topk_with_min_similarity(self, small_vectors):
        left, right = small_vectors
        result = prefetch_nlj(
            left, right, TopKCondition(3, min_similarity=0.5)
        )
        assert (result.scores >= 0.5).all()

    def test_swap_loops_threshold_same_result(self, small_vectors):
        left, right = small_vectors
        plain = prefetch_nlj(left, right, THRESHOLD)
        swapped = prefetch_nlj(left, right, THRESHOLD, swap_loops=True)
        assert plain.pairs() == swapped.pairs()

    def test_swap_loops_topk_rejected(self, small_vectors):
        left, right = small_vectors
        with pytest.raises(JoinError, match="symmetric"):
            prefetch_nlj(left, right, TopKCondition(2), swap_loops=True)

    def test_dim_mismatch(self, small_vectors):
        left, right = small_vectors
        with pytest.raises(DimensionalityError):
            prefetch_nlj(left, right[:, :4], THRESHOLD)

    def test_non_2d_input_rejected(self):
        with pytest.raises(DimensionalityError):
            prefetch_nlj(np.ones(4), np.ones((2, 4)), THRESHOLD)

    def test_empty_result(self, small_vectors):
        left, right = small_vectors
        result = prefetch_nlj(left, right, ThresholdCondition(0.9999))
        assert len(result) == 0
        assert result.stats.similarity_evaluations == len(left) * len(right)

    def test_gemm_kernel_rejected(self, small_vectors):
        left, right = small_vectors
        with pytest.raises(JoinError, match="tensor_join"):
            prefetch_nlj(left, right, THRESHOLD, kernel=Kernel.GEMM)

    def test_similarity_evaluation_counter(self, small_vectors):
        left, right = small_vectors
        result = prefetch_nlj(left, right, THRESHOLD)
        assert result.stats.similarity_evaluations == len(left) * len(right)
