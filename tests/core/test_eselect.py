"""Unit tests for the E-selection operator."""

import numpy as np
import pytest

from repro.core import (
    ThresholdCondition,
    TopKCondition,
    eselect,
    eselect_index,
)
from repro.errors import DimensionalityError, JoinError
from repro.index import FlatIndex, HNSWIndex
from repro.vector import normalize_rows


@pytest.fixture()
def relation(small_vectors):
    left, _ = small_vectors
    return left


@pytest.fixture()
def query(small_vectors):
    _, right = small_vectors
    return right[0]


class TestScanSelection:
    def test_threshold_matches_bruteforce(self, relation, query):
        result = eselect(relation, query, ThresholdCondition(0.3))
        scores = normalize_rows(relation) @ query
        expected = set(np.nonzero(scores >= 0.3)[0].tolist())
        assert set(result.ids.tolist()) == expected

    def test_topk(self, relation, query):
        result = eselect(relation, query, TopKCondition(5))
        scores = normalize_rows(relation) @ query
        expected = np.argsort(-scores, kind="stable")[:5]
        assert result.ids.tolist() == expected.tolist()

    def test_topk_min_similarity(self, relation, query):
        result = eselect(
            relation, query, TopKCondition(10, min_similarity=0.5)
        )
        assert (result.scores >= 0.5).all()

    def test_raw_items_with_model(self, hash_model):
        items = ["barbecue", "barbeque", "piano"]
        result = eselect(items, "barbecue", TopKCondition(2), model=hash_model)
        assert result.ids[0] == 0  # exact match first
        assert result.ids[1] == 1  # misspelling second
        # |R| + 1 model calls: linear cost (E-Selection Cost).
        assert hash_model.usage.calls == len(items) + 1

    def test_query_dim_mismatch(self, relation):
        with pytest.raises(DimensionalityError):
            eselect(relation, np.ones(3, dtype=np.float32), TopKCondition(1))

    def test_query_must_be_1d(self, relation):
        with pytest.raises(DimensionalityError):
            eselect(relation, np.ones((2, 8)), TopKCondition(1))

    def test_raw_query_needs_model(self, relation):
        with pytest.raises(JoinError, match="model"):
            eselect(relation, "word", TopKCondition(1))

    def test_stats(self, relation, query):
        result = eselect(relation, query, ThresholdCondition(0.3))
        assert result.stats.strategy == "eselect/scan"
        assert result.stats.similarity_evaluations == len(relation)
        assert result.stats.pairs_emitted == len(result)


class TestIndexSelection:
    @pytest.fixture()
    def index(self, relation):
        idx = FlatIndex(relation.shape[1])
        idx.add(relation)
        return idx

    def test_topk_matches_scan(self, relation, query, index):
        got = eselect_index(index, query, TopKCondition(4))
        expected = eselect(relation, query, TopKCondition(4))
        assert got.ids.tolist() == expected.ids.tolist()

    def test_threshold_emulation_complete_with_large_probe_k(
        self, relation, query, index
    ):
        got = eselect_index(
            index, query, ThresholdCondition(0.3), probe_k=len(relation)
        )
        expected = eselect(relation, query, ThresholdCondition(0.3))
        assert set(got.ids.tolist()) == set(expected.ids.tolist())

    def test_small_probe_k_truncates(self, relation, query, index):
        got = eselect_index(index, query, ThresholdCondition(-1.0), probe_k=3)
        assert len(got) == 3

    def test_prefilter(self, relation, query, index):
        allowed = np.zeros(len(relation), dtype=bool)
        allowed[:10] = True
        got = eselect_index(index, query, TopKCondition(5), allowed=allowed)
        assert set(got.ids.tolist()) <= set(range(10))

    def test_hnsw_variant(self, relation, query):
        idx = HNSWIndex(relation.shape[1], m=8, ef_construction=64, seed=8)
        idx.add(relation)
        got = eselect_index(idx, query, TopKCondition(3))
        expected = eselect(relation, query, TopKCondition(3))
        overlap = set(got.ids.tolist()) & set(expected.ids.tolist())
        assert len(overlap) >= 2

    def test_invalid_probe_k(self, query, index):
        with pytest.raises(JoinError):
            eselect_index(index, query, ThresholdCondition(0.1), probe_k=0)

    def test_dim_mismatch(self, index):
        with pytest.raises(DimensionalityError):
            eselect_index(index, np.ones(5, dtype=np.float32), TopKCondition(1))
