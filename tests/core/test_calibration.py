"""Unit tests for cost-model calibration."""

import pytest

from repro.core import CalibrationReport, calibrate, calibrated_params
from repro.embedding import HashingEmbedder
from repro.errors import JoinError
from repro.index import FlatIndex
from repro.workloads import unit_vectors


@pytest.fixture(scope="module")
def report():
    model = HashingEmbedder(dim=32, seed=19)
    return calibrate(model, dim=32, n_rows=256)


class TestCalibrate:
    def test_all_timings_positive(self, report):
        assert report.access_per_tuple > 0
        assert report.model_per_item > 0
        assert report.nlj_per_dim_element > 0
        assert report.gemm_per_dim_element > 0

    def test_gemm_not_slower_than_nlj(self, report):
        """BLAS batching should beat the row-at-a-time kernel per element."""
        assert report.gemm_per_dim_element <= report.nlj_per_dim_element

    def test_model_costs_more_than_access(self, report):
        """An embedding call dwarfs streaming one tuple (why prefetching
        matters)."""
        assert report.model_per_item > report.access_per_tuple

    def test_probe_cost_with_index(self):
        model = HashingEmbedder(dim=16, seed=20)
        index = FlatIndex(16)
        index.add(unit_vectors(500, 16, seed=21))
        report = calibrate(model, dim=16, n_rows=128, index=index)
        assert report.probe_per_distance is not None
        assert report.probe_per_distance > 0

    def test_too_few_rows(self):
        with pytest.raises(JoinError):
            calibrate(HashingEmbedder(dim=8), n_rows=10)


class TestToParams:
    def test_normalized_to_access(self, report):
        params = report.to_params()
        assert params.access == 1.0
        params.validate()

    def test_gemm_efficiency_in_range(self, report):
        params = report.to_params()
        assert 0 < params.gemm_efficiency <= 1.0

    def test_convenience_wrapper(self):
        params = calibrated_params(
            HashingEmbedder(dim=16, seed=22), dim=16, n_rows=128
        )
        params.validate()
        assert params.model > 0

    def test_degenerate_timings_floored(self):
        report = CalibrationReport(
            access_per_tuple=0.0,
            model_per_item=0.0,
            nlj_per_dim_element=0.0,
            gemm_per_dim_element=0.0,
            probe_per_distance=None,
        )
        params = report.to_params()
        params.validate()
