"""Unit tests for the quantized tensor join (int8/PQ scan + fp32 re-rank)."""

import numpy as np
import pytest

from repro.config import configure, get_config
from repro.core import (
    QuantizedRelation,
    ThresholdCondition,
    TopKCondition,
    ejoin,
    quantized_eselect,
    quantized_tensor_join,
    tensor_join,
)
from repro.engine import ExecutionEngine, serial_engine
from repro.errors import DimensionalityError, JoinError
from repro.workloads import embedding_like_vectors, unit_vectors

pytestmark = pytest.mark.quant

METHODS = ("int8", "pq")


@pytest.fixture()
def relations() -> tuple[np.ndarray, np.ndarray]:
    left = unit_vectors(60, 16, seed=31)
    right = unit_vectors(500, 16, seed=32)
    return left, right


class TestExactness:
    """Full candidate multiple == the exact fp32 join, scores included."""

    @pytest.mark.parametrize("method", METHODS)
    def test_topk_full_multiple_matches_fp32(self, relations, method):
        left, right = relations
        condition = TopKCondition(5)
        ref = tensor_join(left, right, condition).sorted()
        got = quantized_tensor_join(
            left, right, condition, method=method, rerank_multiple=100
        ).sorted()
        assert got.pairs() == ref.pairs()
        np.testing.assert_allclose(got.scores, ref.scores, atol=1e-5)

    @pytest.mark.parametrize("method", METHODS)
    def test_threshold_matches_fp32_exactly(self, relations, method):
        # The quantizer error bound makes the prescreen sound (no false
        # negatives) and the re-rank filters exactly.
        left, right = relations
        condition = ThresholdCondition(0.4)
        ref = tensor_join(left, right, condition)
        got = quantized_tensor_join(left, right, condition, method=method)
        assert got.pairs() == ref.pairs()

    @pytest.mark.parametrize("method", METHODS)
    def test_topk_ties_break_by_smallest_right_id(self, method):
        left = unit_vectors(4, 8, seed=41)
        right = np.vstack([left[0], left[0], left[0], left[1]])
        got = quantized_tensor_join(
            left[:1], right, TopKCondition(2), method=method,
            rerank_multiple=10,
        ).sorted()
        assert got.right_ids.tolist() == [0, 1]


class TestRecall:
    @pytest.mark.parametrize("method,multiple", [("int8", 4), ("pq", 12)])
    def test_modest_multiple_recall_floor(self, method, multiple):
        data, _ = embedding_like_vectors(
            4096 + 128, 64, rank=16, n_clusters=128, noise=1.0, seed=43
        )
        left, right = data[:128], data[128:]
        condition = TopKCondition(10)
        ref = tensor_join(left, right, condition)
        got = quantized_tensor_join(
            left, right, condition, method=method, rerank_multiple=multiple
        )
        recall = len(got.pairs() & ref.pairs()) / len(ref.pairs())
        assert recall >= 0.95, f"{method} recall {recall:.3f}"


class TestBatchingAndEngine:
    @pytest.mark.parametrize("method", METHODS)
    def test_budget_invariance(self, relations, method):
        left, right = relations
        store = QuantizedRelation.build(right, method)
        condition = TopKCondition(3)
        small = quantized_tensor_join(
            left, store, condition, rerank_multiple=4,
            buffer_budget_bytes=8 << 10,
        )
        large = quantized_tensor_join(
            left, store, condition, rerank_multiple=4,
            buffer_budget_bytes=8 << 20,
        )
        assert small.pairs() == large.pairs()

    @pytest.mark.parametrize("method", METHODS)
    def test_engine_matches_serial(self, relations, method):
        left, right = relations
        store = QuantizedRelation.build(right, method)
        condition = TopKCondition(3)
        serial = quantized_tensor_join(
            left, store, condition, rerank_multiple=4, engine=serial_engine()
        )
        engine = ExecutionEngine(n_threads=4, morsel_rows=16)
        parallel = quantized_tensor_join(
            left, store, condition, rerank_multiple=4, engine=engine,
            buffer_budget_bytes=64 << 10,
        )
        assert parallel.pairs() == serial.pairs()

    def test_explicit_batch_edges(self, relations):
        left, right = relations
        ref = quantized_tensor_join(
            left, right, TopKCondition(3), method="int8", rerank_multiple=4
        )
        got = quantized_tensor_join(
            left, right, TopKCondition(3), method="int8", rerank_multiple=4,
            batch_left=7, batch_right=13,
        )
        assert got.pairs() == ref.pairs()


class TestStoreAndStats:
    def test_store_reuse_and_operand_bytes(self, relations):
        left, right = relations
        store = QuantizedRelation.build(right, "int8")
        first = quantized_tensor_join(left, store, TopKCondition(2))
        second = quantized_tensor_join(left, store, TopKCondition(2))
        assert first.pairs() == second.pairs()
        assert first.stats.strategy == "tensor-int8"
        assert store.code_bytes == right.size  # one byte per dimension
        assert first.stats.extra["bytes_per_code"] == right.shape[1]
        assert first.stats.extra["operand_bytes"] < (
            left.nbytes + right.nbytes
        )

    def test_pq_store_records_code_bytes(self, relations):
        _, right = relations
        store = QuantizedRelation.build(right, "pq", m=4, ks=16)
        assert store.quantizer.bytes_per_code == 4
        assert store.codes.nbytes == len(right) * 4

    def test_rerank_candidates_tracked(self, relations):
        left, right = relations
        got = quantized_tensor_join(
            left, right, TopKCondition(4), method="int8", rerank_multiple=3
        )
        assert 0 < got.stats.extra["rerank_candidates"] <= len(left) * 12

    def test_method_conflict_with_store(self, relations):
        _, right = relations
        store = QuantizedRelation.build(right, "int8")
        with pytest.raises(JoinError, match="conflicts"):
            quantized_tensor_join(
                right[:5], store, TopKCondition(1), method="pq"
            )

    def test_unknown_method(self, relations):
        left, right = relations
        with pytest.raises(JoinError, match="unknown quantization method"):
            quantized_tensor_join(
                left, right, TopKCondition(1), method="fp8"
            )

    def test_dim_mismatch(self, relations):
        left, right = relations
        store = QuantizedRelation.build(right, "int8")
        with pytest.raises(DimensionalityError):
            quantized_tensor_join(
                unit_vectors(5, 8, seed=1), store, TopKCondition(1)
            )

    def test_empty_inputs(self):
        empty = np.empty((0, 8), dtype=np.float32)
        got = quantized_tensor_join(
            empty, unit_vectors(10, 8, seed=2), TopKCondition(1),
            method="int8",
        )
        assert len(got) == 0
        got = quantized_tensor_join(
            unit_vectors(10, 8, seed=2), empty, TopKCondition(1),
            method="int8",
        )
        assert len(got) == 0

    def test_min_similarity_applied_on_exact_scores(self, relations):
        left, right = relations
        got = quantized_tensor_join(
            left, right, TopKCondition(5, min_similarity=0.3),
            method="int8", rerank_multiple=100,
        )
        assert (got.scores >= 0.3).all()


class TestDispatch:
    def test_ejoin_strategy_names(self, relations):
        left, right = relations
        ref = tensor_join(left, right, TopKCondition(3)).pairs()
        for strategy in ("tensor-int8", "tensor-pq"):
            got = ejoin(left, right, TopKCondition(3), strategy=strategy)
            assert got.stats.strategy == strategy
            # Generous default multiple on tiny data: near-exact.
            assert len(got.pairs() & ref) / len(ref) >= 0.9

    def test_auto_respects_configured_precision(self, relations):
        left, right = relations
        configure(default_precision="int8")
        try:
            got = ejoin(left, right, TopKCondition(3), strategy="auto")
            assert got.stats.strategy == "tensor-int8"
        finally:
            configure(default_precision="fp32")
        got = ejoin(left, right, TopKCondition(3), strategy="auto")
        assert got.stats.strategy == "tensor"

    def test_quantized_eselect(self, relations):
        left, right = relations
        result = quantized_eselect(
            right, left[0], TopKCondition(5), method="int8",
            rerank_multiple=100,
        )
        from repro.core import eselect

        ref = eselect(right, left[0], TopKCondition(5))
        assert result.stats.strategy == "eselect/int8"
        assert set(result.ids.tolist()) == set(ref.ids.tolist())

    def test_rerank_multiple_default_from_config(self, relations):
        left, right = relations
        assert get_config().default_rerank_multiple == 4
        got = quantized_tensor_join(
            left, right, TopKCondition(2), method="int8"
        )
        assert got.stats.extra["candidate_multiple"] == 4
