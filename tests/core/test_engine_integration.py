"""Engine-executed operators: exactness, memory bounds, and plumbing."""

import pytest

from repro.core import (
    ThresholdCondition,
    TopKCondition,
    ejoin,
    index_join,
    parallel_join,
    prefetch_nlj,
    resolve_batch_shape,
    tensor_join,
)
from repro.engine import ExecutionEngine, serial_engine
from repro.errors import BufferBudgetError, JoinError
from repro.index import FlatIndex
from repro.vector.topk import StreamingTopK
from repro.workloads import unit_vectors

THRESHOLD = ThresholdCondition(0.4)


def sorted_triples(result):
    ordered = result.sorted()
    return (
        ordered.left_ids.tolist(),
        ordered.right_ids.tolist(),
        ordered.scores.tolist(),
    )


class TestEngineExactness:
    @pytest.mark.parametrize("n_threads", [2, 4])
    def test_parallel_tensor_matches_single_thread_exactly(self, n_threads):
        left = unit_vectors(257, 16, seed=5)
        right = unit_vectors(301, 16, seed=6)
        single = parallel_join(left, right, THRESHOLD, n_threads=1)
        multi = parallel_join(left, right, THRESHOLD, n_threads=n_threads)
        assert sorted_triples(multi) == sorted_triples(single)

    def test_parallel_topk_matches_single_thread_exactly(self):
        left = unit_vectors(100, 8, seed=9)
        right = unit_vectors(120, 8, seed=10)
        single = parallel_join(left, right, TopKCondition(5), n_threads=1)
        multi = parallel_join(left, right, TopKCondition(5), n_threads=4)
        assert sorted_triples(multi) == sorted_triples(single)

    def test_tensor_join_with_parallel_engine(self, small_vectors):
        left, right = small_vectors
        engine = ExecutionEngine(n_threads=3)
        par = tensor_join(
            left, right, THRESHOLD, batch_left=7, engine=engine
        )
        seq = tensor_join(left, right, THRESHOLD, batch_left=7)
        assert sorted_triples(par) == sorted_triples(seq)
        assert engine.stats.morsels_dispatched > 0

    def test_nlj_with_parallel_engine(self, small_vectors):
        left, right = small_vectors
        engine = ExecutionEngine(n_threads=3, morsel_rows=4)
        par = prefetch_nlj(left, right, THRESHOLD, engine=engine)
        seq = prefetch_nlj(left, right, THRESHOLD)
        assert sorted_triples(par) == sorted_triples(seq)

    def test_index_join_with_parallel_engine(self, small_vectors):
        left, right = small_vectors
        index = FlatIndex(right.shape[1])
        index.add(right)
        engine = ExecutionEngine(n_threads=3, morsel_rows=4)
        par = index_join(left, index, TopKCondition(3), engine=engine)
        seq = index_join(left, index, TopKCondition(3))
        assert par.pairs() == seq.pairs()
        # Probe counters are lock-protected, so the parallel run reports
        # exactly the sequential probe count (|left| * |right| for flat).
        assert (
            par.stats.similarity_evaluations
            == seq.stats.similarity_evaluations
            == len(left) * len(right)
        )

    def test_ejoin_forwards_engine(self, small_vectors):
        left, right = small_vectors
        engine = ExecutionEngine(n_threads=2, morsel_rows=8)
        result = ejoin(
            left, right, THRESHOLD, strategy="parallel-tensor", engine=engine
        )
        assert result.stats.strategy == "parallel-tensor/2t"
        assert engine.stats.runs > 0

    def test_calibrated_policy_reaches_parallel_morsels(self):
        """parallel_join forwards the engine's calibrated policy, so inner
        tensor joins use adaptive block sizing, not full-chunk blocks."""
        from repro.engine import BatchPolicy

        left = unit_vectors(2000, 100, seed=61)
        right = unit_vectors(2000, 100, seed=62)
        engine = ExecutionEngine(n_threads=2, morsel_rows=2048)
        engine.policy = BatchPolicy(gemm_seconds_per_fma=3e-9)
        edge = engine.policy.adaptive_edge(100)
        result = parallel_join(left, right, THRESHOLD, engine=engine)
        # Without the policy each morsel would run one chunk x 2000 block.
        assert result.stats.peak_buffer_elements <= edge * edge

    def test_parallel_join_reports_morsels(self, small_vectors):
        left, right = small_vectors
        result = parallel_join(left, right, THRESHOLD, n_threads=2)
        assert result.stats.extra["morsels"] >= 1

    def test_conflicting_threads_and_engine_rejected(self, small_vectors):
        left, right = small_vectors
        with pytest.raises(JoinError, match="not both"):
            parallel_join(
                left, right, THRESHOLD,
                n_threads=2, engine=ExecutionEngine(n_threads=4),
            )

    def test_ejoin_rejects_conflict_regardless_of_size(self, small_vectors):
        """The conflict fires up front, not only when auto picks the
        parallel strategy for large inputs."""
        left, right = small_vectors
        with pytest.raises(JoinError, match="not both"):
            ejoin(
                left, right, THRESHOLD,
                n_threads=2, engine=ExecutionEngine(n_threads=4),
            )


class TestTopKMemoryBudget:
    """Acceptance: top-k tensor joins hold peak intermediate memory within
    the configured Figure 7 buffer budget, end to end."""

    def test_peak_intermediate_within_budget(self):
        left = unit_vectors(400, 32, seed=21)
        right = unit_vectors(900, 32, seed=22)
        k = 8
        budget = 64 * 1024  # far smaller than 400*900*4 = 1.44 MB dense
        result = tensor_join(
            left,
            right,
            TopKCondition(k),
            buffer_budget_bytes=budget,
        )
        peak = result.stats.extra["peak_intermediate_bytes"]
        assert peak > 0
        assert peak <= budget
        # The dense GEMM buffer alone also respects the budget.
        assert result.stats.peak_buffer_elements * 4 <= budget
        # And the result is still exact.
        exact = tensor_join(left, right, TopKCondition(k))
        assert result.pairs() == exact.pairs()

    def test_threshold_peak_tracked(self, small_vectors):
        left, right = small_vectors
        result = tensor_join(
            left, right, THRESHOLD, buffer_budget_bytes=1024
        )
        assert result.stats.extra["peak_intermediate_bytes"] <= 1024

    def test_budget_reserves_merge_state(self):
        """The resolved dense block shrinks to leave room for merge state."""
        left = unit_vectors(64, 8, seed=31)
        right = unit_vectors(512, 8, seed=32)
        budget = 16 * 1024
        topk = tensor_join(
            left, right, TopKCondition(16), buffer_budget_bytes=budget
        )
        thresh = tensor_join(
            left, right, THRESHOLD, buffer_budget_bytes=budget
        )
        assert (
            topk.stats.peak_buffer_elements
            < thresh.stats.peak_buffer_elements
        )

    @staticmethod
    def _concurrent_bytes(result, engine):
        """Worst-case resident bytes: concurrently-held blocks x per-block
        peak (the per-block peak already includes top-k merge state)."""
        bl, _ = result.stats.extra["batch_shape"]
        blocks = -(-result.stats.n_left // bl)
        holders = min(engine.n_threads, blocks)
        return holders * result.stats.extra["peak_intermediate_bytes"]

    def test_budget_split_across_engine_workers(self):
        """Concurrent workers each hold a block; their sum stays bounded."""
        left = unit_vectors(400, 16, seed=51)
        right = unit_vectors(400, 16, seed=52)
        budget = 64 * 1024
        engine = ExecutionEngine(n_threads=4)
        result = tensor_join(
            left, right, THRESHOLD, buffer_budget_bytes=budget, engine=engine
        )
        assert self._concurrent_bytes(result, engine) <= budget
        assert result.pairs() == tensor_join(left, right, THRESHOLD).pairs()

    @pytest.mark.parametrize("condition", [THRESHOLD, TopKCondition(8)])
    def test_budget_holds_when_split_creates_more_blocks(self, condition):
        """Shrinking the per-worker budget raises the block count; the
        share iteration must converge so holders x per-block <= budget
        (regression: a one-shot split gave 3 blocks x half-budget)."""
        left = unit_vectors(4000, 8, seed=57)
        right = unit_vectors(4000, 8, seed=58)
        budget = 16 * 1024 * 1024
        engine = ExecutionEngine(n_threads=8)
        result = tensor_join(
            left, right, condition, buffer_budget_bytes=budget, engine=engine
        )
        assert self._concurrent_bytes(result, engine) <= budget

    @pytest.mark.parametrize("budget", [None, 1 << 30])
    def test_parallel_engine_tensor_join_actually_parallelizes(self, budget):
        """An engine-parallel tensor join must split into blocks rather
        than one serial full block — with no budget AND with a budget so
        generous it would never force a split on its own."""
        left = unit_vectors(3000, 8, seed=59)
        right = unit_vectors(500, 8, seed=60)
        engine = ExecutionEngine(n_threads=4)
        result = tensor_join(
            left, right, THRESHOLD, engine=engine, buffer_budget_bytes=budget
        )
        bl, _ = result.stats.extra["batch_shape"]
        assert bl < 3000
        assert engine.stats.morsels_dispatched > 1
        assert result.pairs() == tensor_join(left, right, THRESHOLD).pairs()

    def test_small_join_splits_for_parallelism_within_budget(self):
        """A small engine-parallel join is morselized for concurrency, and
        the budget bounds the concurrently-resident blocks; an engine-less
        join of the same size keeps the full budget for its single block."""
        left = unit_vectors(100, 16, seed=55)
        right = unit_vectors(100, 16, seed=56)
        budget = 64 * 1024
        engine = ExecutionEngine(n_threads=8)
        par = tensor_join(
            left, right, THRESHOLD, buffer_budget_bytes=budget, engine=engine
        )
        assert self._concurrent_bytes(par, engine) <= budget
        assert par.stats.extra["batch_shape"][0] < 100  # actually split
        serial = tensor_join(
            left, right, THRESHOLD, buffer_budget_bytes=budget
        )
        assert serial.stats.extra["batch_shape"] == (100, 100)
        assert par.pairs() == serial.pairs()

    def test_parallel_join_budget_split(self):
        left = unit_vectors(300, 16, seed=53)
        right = unit_vectors(300, 16, seed=54)
        budget = 64 * 1024
        result = parallel_join(
            left, right, THRESHOLD, n_threads=4,
            buffer_budget_bytes=budget,
        )
        assert result.stats.peak_buffer_elements * 4 * 4 <= budget

    def test_budget_too_small_for_merge_state(self):
        left = unit_vectors(16, 8, seed=41)
        right = unit_vectors(16, 8, seed=42)
        tiny = StreamingTopK.state_bytes_per_row(64) // 2
        with pytest.raises(BufferBudgetError):
            tensor_join(
                left, right, TopKCondition(64), buffer_budget_bytes=tiny
            )


class TestResolveBatchShapeEdges:
    def test_empty_left_relation(self):
        assert resolve_batch_shape(0, 5) == (1, 5)

    def test_empty_right_relation(self):
        assert resolve_batch_shape(5, 0) == (5, 1)

    def test_both_empty(self):
        assert resolve_batch_shape(0, 0) == (1, 1)

    def test_budget_smaller_than_one_cell(self):
        with pytest.raises(BufferBudgetError, match="FP32 cell"):
            resolve_batch_shape(10, 10, buffer_budget_bytes=3)

    def test_budget_of_exactly_one_cell(self):
        assert resolve_batch_shape(10, 10, buffer_budget_bytes=4) == (1, 1)

    def test_batches_exceeding_inputs_are_clamped(self):
        assert resolve_batch_shape(
            10, 10, batch_left=50, batch_right=30
        ) == (10, 10)

    def test_zero_batch_rejected(self):
        with pytest.raises(BufferBudgetError):
            resolve_batch_shape(10, 10, batch_left=0, batch_right=0)


class TestSerialEngineDefault:
    def test_serial_engine_inline(self, small_vectors):
        left, right = small_vectors
        result = tensor_join(
            left, right, THRESHOLD, engine=serial_engine()
        )
        assert result.pairs() == tensor_join(left, right, THRESHOLD).pairs()
