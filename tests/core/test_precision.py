"""Unit tests for the reduced-precision tensor join."""

import numpy as np
import pytest

from repro.core import (
    ThresholdCondition,
    TopKCondition,
    join_with_precision,
    precision_error_bound,
    quantize_fp16,
    tensor_join,
    tensor_join_fp16,
)
from repro.errors import JoinError
from repro.vector import normalize_rows


class TestQuantize:
    def test_dtype_and_footprint(self, small_vectors):
        left, _ = small_vectors
        half = quantize_fp16(left)
        assert half.dtype == np.float16
        assert half.nbytes == left.astype(np.float32).nbytes // 2

    def test_quantization_error_small(self, small_vectors):
        left, _ = small_vectors
        full = normalize_rows(left)
        half = quantize_fp16(left).astype(np.float32)
        assert np.abs(full - half).max() < 2.0**-10


class TestErrorBound:
    def test_monotone_in_dim(self):
        assert precision_error_bound(256) > precision_error_bound(16)

    def test_reasonable_magnitude(self):
        assert precision_error_bound(100) < 0.02


class TestFp16Join:
    def test_scores_within_bound(self, small_vectors):
        left, right = small_vectors
        cond = TopKCondition(3)
        full = tensor_join(left, right, cond).sorted()
        half = tensor_join_fp16(left, right, cond).sorted()
        bound = precision_error_bound(left.shape[1])
        # Compare matched scores pairwise on the common pairs.
        common = full.pairs() & half.pairs()
        full_scores = {
            (li, r): s
            for li, r, s in zip(
                full.left_ids.tolist(), full.right_ids.tolist(), full.scores
            )
        }
        half_scores = {
            (li, r): s
            for li, r, s in zip(
                half.left_ids.tolist(), half.right_ids.tolist(), half.scores
            )
        }
        assert len(common) >= 0.9 * len(full.pairs())
        for pair in common:
            assert abs(full_scores[pair] - half_scores[pair]) <= bound

    def test_threshold_differences_only_near_boundary(self, small_vectors):
        left, right = small_vectors
        t = 0.4
        full = tensor_join(left, right, ThresholdCondition(t))
        half = tensor_join_fp16(left, right, ThresholdCondition(t))
        bound = precision_error_bound(left.shape[1])
        scores = normalize_rows(left) @ normalize_rows(right).T
        for li, r in full.pairs() ^ half.pairs():
            assert abs(float(scores[li, r]) - t) <= 2 * bound

    def test_operand_bytes_recorded(self, small_vectors):
        left, right = small_vectors
        result = tensor_join_fp16(left, right, TopKCondition(1))
        expected = (left.size + right.size) * 2  # fp16 bytes
        assert result.stats.extra["operand_bytes"] == expected

    def test_empty_inputs(self):
        result = tensor_join_fp16(
            np.empty((0, 4), dtype=np.float32),
            np.empty((0, 4), dtype=np.float32),
            TopKCondition(1),
        )
        assert len(result) == 0

    def test_batching_supported(self, small_vectors):
        left, right = small_vectors
        full = tensor_join_fp16(left, right, ThresholdCondition(0.4))
        batched = tensor_join_fp16(
            left, right, ThresholdCondition(0.4), batch_left=7, batch_right=9
        )
        assert full.pairs() == batched.pairs()


class TestDispatch:
    def test_fp32_dispatch(self, small_vectors):
        left, right = small_vectors
        result = join_with_precision(
            left, right, TopKCondition(1), precision="fp32"
        )
        assert result.stats.strategy == "tensor"

    def test_fp16_dispatch(self, small_vectors):
        left, right = small_vectors
        result = join_with_precision(
            left, right, TopKCondition(1), precision="fp16"
        )
        assert result.stats.strategy == "tensor-fp16"

    def test_int8_dispatch(self, small_vectors):
        left, right = small_vectors
        result = join_with_precision(
            left, right, TopKCondition(1), precision="int8"
        )
        assert result.stats.strategy == "tensor-int8"

    def test_pq_dispatch(self, small_vectors):
        left, right = small_vectors
        result = join_with_precision(
            left, right, TopKCondition(1), precision="pq"
        )
        assert result.stats.strategy == "tensor-pq"

    def test_unknown_precision(self, small_vectors):
        left, right = small_vectors
        with pytest.raises(JoinError, match="unknown precision"):
            join_with_precision(left, right, TopKCondition(1), precision="int4")
