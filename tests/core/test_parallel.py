"""Unit tests for data-parallel join execution."""

import pytest

from repro.core import (
    ThresholdCondition,
    TopKCondition,
    parallel_join,
    partition_rows,
    prefetch_nlj,
    tensor_join,
)
from repro.errors import JoinError
from repro.vector import Kernel

THRESHOLD = ThresholdCondition(0.4)


class TestPartitionRows:
    def test_covers_range(self):
        parts = partition_rows(100, 7)
        assert parts[0][0] == 0
        assert parts[-1][1] == 100
        for (a, b), (c, _) in zip(parts, parts[1:]):
            assert b == c

    def test_no_empty_parts(self):
        parts = partition_rows(3, 10)
        assert len(parts) == 3
        assert all(hi > lo for lo, hi in parts)

    def test_single_part(self):
        assert partition_rows(5, 1) == [(0, 5)]

    def test_invalid_count(self):
        with pytest.raises(JoinError):
            partition_rows(10, 0)

    def test_balanced_sizes(self):
        parts = partition_rows(100, 3)
        sizes = [hi - lo for lo, hi in parts]
        assert max(sizes) - min(sizes) <= 1


class TestParallelJoin:
    @pytest.mark.parametrize("n_threads", [1, 2, 4])
    def test_tensor_matches_sequential(self, small_vectors, n_threads):
        left, right = small_vectors
        par = parallel_join(left, right, THRESHOLD, n_threads=n_threads)
        seq = tensor_join(left, right, THRESHOLD)
        assert par.pairs() == seq.pairs()

    @pytest.mark.parametrize("n_threads", [1, 3])
    def test_nlj_matches_sequential(self, small_vectors, n_threads):
        left, right = small_vectors
        par = parallel_join(
            left, right, THRESHOLD, strategy="nlj", n_threads=n_threads
        )
        seq = prefetch_nlj(left, right, THRESHOLD)
        assert par.pairs() == seq.pairs()

    def test_topk_partition_safe(self, small_vectors):
        """Top-k is per left tuple, so left-partitioning preserves it."""
        left, right = small_vectors
        par = parallel_join(left, right, TopKCondition(3), n_threads=4)
        seq = tensor_join(left, right, TopKCondition(3))
        assert par.pairs() == seq.pairs()

    def test_more_threads_than_rows(self, small_vectors):
        left, right = small_vectors
        par = parallel_join(left[:2], right, THRESHOLD, n_threads=16)
        seq = tensor_join(left[:2], right, THRESHOLD)
        assert par.pairs() == seq.pairs()

    def test_stats_aggregated(self, small_vectors):
        left, right = small_vectors
        result = parallel_join(left, right, THRESHOLD, n_threads=3)
        assert result.stats.similarity_evaluations == len(left) * len(right)
        assert result.stats.strategy == "parallel-tensor/3t"

    def test_unknown_strategy(self, small_vectors):
        left, right = small_vectors
        with pytest.raises(JoinError, match="unknown parallel strategy"):
            parallel_join(left, right, THRESHOLD, strategy="hash")

    def test_scalar_kernel_supported(self, small_vectors):
        left, right = small_vectors
        par = parallel_join(
            left[:5],
            right[:5],
            THRESHOLD,
            strategy="nlj",
            n_threads=2,
            kernel=Kernel.SCALAR,
        )
        seq = prefetch_nlj(left[:5], right[:5], THRESHOLD)
        assert par.pairs() == seq.pairs()

    def test_batching_forwarded(self, small_vectors):
        left, right = small_vectors
        par = parallel_join(
            left, right, THRESHOLD, n_threads=2, batch_left=4, batch_right=6
        )
        assert par.stats.peak_buffer_elements <= 24
        assert par.pairs() == tensor_join(left, right, THRESHOLD).pairs()
