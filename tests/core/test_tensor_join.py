"""Unit tests for the tensor (GEMM) join formulation."""

import numpy as np
import pytest

from repro.core import (
    ThresholdCondition,
    TopKCondition,
    prefetch_nlj,
    resolve_batch_shape,
    tensor_join,
    tensor_join_non_batched,
)
from repro.errors import BufferBudgetError, DimensionalityError
from repro.vector import normalize_rows

THRESHOLD = ThresholdCondition(0.4)


class TestEquivalence:
    def test_threshold_matches_nlj(self, small_vectors):
        left, right = small_vectors
        assert (
            tensor_join(left, right, THRESHOLD).pairs()
            == prefetch_nlj(left, right, THRESHOLD).pairs()
        )

    def test_topk_matches_nlj(self, small_vectors):
        left, right = small_vectors
        for k in (1, 3, 7):
            assert (
                tensor_join(left, right, TopKCondition(k)).pairs()
                == prefetch_nlj(left, right, TopKCondition(k)).pairs()
            )

    def test_topk_with_min_similarity(self, small_vectors):
        left, right = small_vectors
        cond = TopKCondition(5, min_similarity=0.3)
        assert (
            tensor_join(left, right, cond).pairs()
            == prefetch_nlj(left, right, cond).pairs()
        )

    def test_scores_match_nlj(self, small_vectors):
        left, right = small_vectors
        a = tensor_join(left, right, THRESHOLD).sorted()
        b = prefetch_nlj(left, right, THRESHOLD).sorted()
        assert np.allclose(a.scores, b.scores, atol=1e-5)


class TestBatching:
    @pytest.mark.parametrize("bl,br", [(1, 1), (7, 13), (30, 40), (64, 5)])
    def test_batch_shape_invariance_threshold(self, small_vectors, bl, br):
        left, right = small_vectors
        full = tensor_join(left, right, THRESHOLD)
        batched = tensor_join(left, right, THRESHOLD, batch_left=bl, batch_right=br)
        assert full.pairs() == batched.pairs()

    @pytest.mark.parametrize("bl,br", [(1, 1), (7, 13), (30, 40)])
    def test_batch_shape_invariance_topk(self, small_vectors, bl, br):
        left, right = small_vectors
        cond = TopKCondition(4)
        full = tensor_join(left, right, cond)
        batched = tensor_join(left, right, cond, batch_left=bl, batch_right=br)
        assert full.pairs() == batched.pairs()

    def test_peak_buffer_tracks_batch(self, small_vectors):
        left, right = small_vectors
        result = tensor_join(left, right, THRESHOLD, batch_left=5, batch_right=8)
        assert result.stats.peak_buffer_elements == 40

    def test_batch_invocations_counted(self, small_vectors):
        left, right = small_vectors  # 30 x 40
        result = tensor_join(left, right, THRESHOLD, batch_left=10, batch_right=20)
        assert result.stats.batch_invocations == 3 * 2

    def test_buffer_budget_respected(self, small_vectors):
        left, right = small_vectors
        budget = 400  # bytes -> 100 cells
        result = tensor_join(left, right, THRESHOLD, buffer_budget_bytes=budget)
        assert result.stats.peak_buffer_elements * 4 <= budget
        assert result.pairs() == tensor_join(left, right, THRESHOLD).pairs()

    def test_budget_too_small(self):
        with pytest.raises(BufferBudgetError):
            resolve_batch_shape(10, 10, buffer_budget_bytes=2)


class TestResolveBatchShape:
    def test_defaults_to_full(self):
        assert resolve_batch_shape(100, 200) == (100, 200)

    def test_explicit_clamped(self):
        assert resolve_batch_shape(10, 10, batch_left=50, batch_right=3) == (10, 3)

    def test_budget_square(self):
        bl, br = resolve_batch_shape(1000, 1000, buffer_budget_bytes=4 * 10_000)
        assert bl * br <= 10_000

    def test_empty_inputs(self):
        assert resolve_batch_shape(0, 5) == (1, 5)


class TestNonBatched:
    def test_same_results_as_batched(self, small_vectors):
        left, right = small_vectors
        assert (
            tensor_join_non_batched(left, right, THRESHOLD).pairs()
            == tensor_join(left, right, THRESHOLD).pairs()
        )

    def test_topk(self, small_vectors):
        left, right = small_vectors
        cond = TopKCondition(2)
        assert (
            tensor_join_non_batched(left, right, cond).pairs()
            == tensor_join(left, right, cond).pairs()
        )

    def test_one_invocation_per_left_row(self, small_vectors):
        left, right = small_vectors
        result = tensor_join_non_batched(left, right, THRESHOLD)
        assert result.stats.batch_invocations == len(left)


class TestInputHandling:
    def test_raw_items_with_model(self, hash_model):
        left = ["alpha", "beta"]
        right = ["alpha", "gamma", "beta"]
        result = tensor_join(left, right, ThresholdCondition(0.95), model=hash_model)
        assert (0, 0) in result.pairs()
        assert (1, 2) in result.pairs()
        assert result.stats.model_calls == 5

    def test_assume_normalized_skips_renormalization(self, small_vectors):
        left, right = small_vectors  # already unit vectors
        a = tensor_join(left, right, THRESHOLD)
        b = tensor_join(left, right, THRESHOLD, assume_normalized=True)
        assert a.pairs() == b.pairs()

    def test_unnormalized_inputs_handled(self):
        rng = np.random.default_rng(60)
        left = (rng.standard_normal((10, 4)) * 5).astype(np.float32)
        right = (rng.standard_normal((12, 4)) * 0.1).astype(np.float32)
        got = tensor_join(left, right, THRESHOLD).pairs()
        expected = tensor_join(
            normalize_rows(left), normalize_rows(right), THRESHOLD
        ).pairs()
        assert got == expected

    def test_dim_mismatch(self, small_vectors):
        left, right = small_vectors
        with pytest.raises(DimensionalityError):
            tensor_join(left, right[:, :3], THRESHOLD)

    def test_empty_left(self, small_vectors):
        _, right = small_vectors
        result = tensor_join(np.empty((0, 8), dtype=np.float32), right, THRESHOLD)
        assert len(result) == 0

    def test_empty_right(self, small_vectors):
        left, _ = small_vectors
        result = tensor_join(left, np.empty((0, 8), dtype=np.float32), THRESHOLD)
        assert len(result) == 0

    def test_stats_populated(self, small_vectors):
        left, right = small_vectors
        result = tensor_join(left, right, THRESHOLD)
        assert result.stats.strategy == "tensor"
        assert result.stats.n_left == 30
        assert result.stats.n_right == 40
        assert result.stats.similarity_evaluations == 1200
        assert result.stats.seconds > 0
