"""Unit tests for join conditions."""

import pytest

from repro.core import ThresholdCondition, TopKCondition
from repro.core.conditions import validate_condition
from repro.errors import JoinError


class TestThresholdCondition:
    def test_valid_range(self):
        assert ThresholdCondition(0.9).threshold == 0.9
        assert ThresholdCondition(-1.0).threshold == -1.0
        assert ThresholdCondition(1.0).threshold == 1.0

    def test_out_of_range(self):
        with pytest.raises(JoinError):
            ThresholdCondition(1.5)
        with pytest.raises(JoinError):
            ThresholdCondition(-1.01)

    def test_str(self):
        assert "0.9" in str(ThresholdCondition(0.9))

    def test_frozen_and_hashable(self):
        assert ThresholdCondition(0.5) == ThresholdCondition(0.5)
        assert hash(ThresholdCondition(0.5)) == hash(ThresholdCondition(0.5))


class TestTopKCondition:
    def test_valid(self):
        c = TopKCondition(5)
        assert c.k == 5
        assert c.min_similarity is None

    def test_k_validation(self):
        with pytest.raises(JoinError):
            TopKCondition(0)

    def test_min_similarity_validation(self):
        with pytest.raises(JoinError):
            TopKCondition(3, min_similarity=2.0)
        c = TopKCondition(3, min_similarity=0.8)
        assert c.min_similarity == 0.8

    def test_str(self):
        assert str(TopKCondition(32)) == "top-32"
        assert "sim >= 0.9" in str(TopKCondition(32, min_similarity=0.9))


class TestValidateCondition:
    def test_accepts_known(self):
        for c in (ThresholdCondition(0.1), TopKCondition(2)):
            assert validate_condition(c) is c

    def test_rejects_unknown(self):
        with pytest.raises(JoinError, match="unsupported"):
            validate_condition("sim > 0.9")
