"""Unit tests for the JoinResult offset-pair representation."""

import numpy as np
import pytest

from repro.core import JoinResult, JoinStats
from repro.errors import JoinError
from repro.relational import DataType, Field, Schema, Table


def make_result() -> JoinResult:
    return JoinResult(
        np.asarray([0, 0, 2, 1]),
        np.asarray([1, 0, 2, 1]),
        np.asarray([0.9, 0.8, 0.95, 0.7]),
    )


def make_tables() -> tuple[Table, Table]:
    schema = Schema.of(Field("id", DataType.INT64), Field("tag", DataType.STRING))
    left = Table.from_arrays(
        schema, {"id": np.asarray([10, 11, 12]), "tag": ["a", "b", "c"]}
    )
    right = Table.from_arrays(
        schema, {"id": np.asarray([20, 21, 22]), "tag": ["x", "y", "z"]}
    )
    return left, right


class TestConstruction:
    def test_lengths_validated(self):
        with pytest.raises(JoinError, match="ragged"):
            JoinResult(np.asarray([0]), np.asarray([0, 1]), np.asarray([0.5]))

    def test_pairs_emitted_recorded(self):
        assert make_result().stats.pairs_emitted == 4

    def test_empty(self):
        r = JoinResult.empty()
        assert len(r) == 0
        assert r.pairs() == set()

    def test_concat(self):
        merged = JoinResult.concat([make_result(), make_result()])
        assert len(merged) == 8

    def test_concat_empty_list(self):
        assert len(JoinResult.concat([])) == 0

    def test_dtype_coercion(self):
        r = JoinResult([0], [1], [0.5])
        assert r.left_ids.dtype == np.int64
        assert r.scores.dtype == np.float32


class TestViews:
    def test_pairs(self):
        assert make_result().pairs() == {(0, 1), (0, 0), (2, 2), (1, 1)}

    def test_sorted_canonical(self):
        r = make_result().sorted()
        assert r.left_ids.tolist() == [0, 0, 1, 2]
        assert r.right_ids.tolist() == [0, 1, 1, 2]

    def test_to_sparse(self):
        sp = make_result().to_sparse((3, 3))
        assert sp.shape == (3, 3)
        assert sp.nnz == 4
        dense = sp.toarray()
        assert dense[2, 2] == pytest.approx(0.95)

    def test_nbytes(self):
        assert make_result().nbytes() == 4 * (8 + 8 + 4)

    def test_top_per_left(self):
        best = make_result().top_per_left()
        assert len(best) == 3
        pairs = dict(zip(best.left_ids.tolist(), best.right_ids.tolist()))
        assert pairs[0] == 1  # 0.9 beats 0.8

    def test_top_per_left_empty(self):
        assert len(JoinResult.empty().top_per_left()) == 0


class TestMaterialize:
    def test_gathers_payloads(self):
        left, right = make_tables()
        out = make_result().materialize(left, right)
        assert out.num_rows == 4
        assert "similarity" in out.schema
        row = out.sort_by("similarity", descending=True).row(0)
        assert row["l_tag"] == "c" and row["r_tag"] == "z"

    def test_out_of_range_offsets_rejected(self):
        left, right = make_tables()
        bad = JoinResult(np.asarray([9]), np.asarray([0]), np.asarray([0.5]))
        with pytest.raises(JoinError, match="exceed"):
            bad.materialize(left, right)

    def test_custom_prefixes_and_score_name(self):
        left, right = make_tables()
        out = make_result().materialize(
            left, right, prefixes=("a_", "b_"), score_column="cos"
        )
        assert "a_tag" in out.schema and "cos" in out.schema


class TestStats:
    def test_defaults(self):
        stats = JoinStats()
        assert stats.strategy == ""
        assert stats.model_calls == 0

    def test_attached_stats_preserved(self):
        stats = JoinStats(strategy="test", model_calls=7)
        r = JoinResult(np.asarray([0]), np.asarray([0]), np.asarray([1.0]), stats)
        assert r.stats.strategy == "test"
        assert r.stats.model_calls == 7
