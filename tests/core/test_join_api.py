"""Unit tests for the unified ejoin() entry point."""

import numpy as np
import pytest

from repro.core import (
    STRATEGIES,
    ThresholdCondition,
    TopKCondition,
    ejoin,
    tensor_join,
)
from repro.errors import JoinError
from repro.index import FlatIndex

THRESHOLD = ThresholdCondition(0.4)


@pytest.fixture()
def flat_index(small_vectors):
    _, right = small_vectors
    idx = FlatIndex(right.shape[1])
    idx.add(right)
    return idx


class TestDispatch:
    def test_all_scan_strategies_agree(self, small_vectors):
        left, right = small_vectors
        reference = tensor_join(left, right, THRESHOLD).pairs()
        for strategy in ("nlj", "nlj-scalar", "tensor", "parallel-tensor"):
            got = ejoin(left, right, THRESHOLD, strategy=strategy)
            assert got.pairs() == reference, strategy

    def test_index_strategy(self, small_vectors, flat_index):
        left, right = small_vectors
        got = ejoin(
            left, None, TopKCondition(2), strategy="index", index=flat_index
        )
        expected = tensor_join(left, right, TopKCondition(2))
        assert got.pairs() == expected.pairs()

    def test_naive_strategy_with_items(self, hash_model):
        left = ["aa", "bb"]
        right = ["aa", "cc"]
        result = ejoin(
            left, right, ThresholdCondition(0.95), model=hash_model,
            strategy="naive-nlj",
        )
        assert (0, 0) in result.pairs()

    def test_strategy_names_constant(self):
        assert "auto" in STRATEGIES and "tensor" in STRATEGIES


class TestValidation:
    def test_condition_required(self, small_vectors):
        left, right = small_vectors
        with pytest.raises(JoinError, match="condition"):
            ejoin(left, right, None)

    def test_unknown_strategy(self, small_vectors):
        left, right = small_vectors
        with pytest.raises(JoinError, match="unknown strategy"):
            ejoin(left, right, THRESHOLD, strategy="hash-join")

    def test_index_strategy_needs_index(self, small_vectors):
        left, right = small_vectors
        with pytest.raises(JoinError, match="index"):
            ejoin(left, right, THRESHOLD, strategy="index")

    def test_tensor_needs_right(self, small_vectors):
        left, _ = small_vectors
        with pytest.raises(JoinError, match="right"):
            ejoin(left, None, THRESHOLD, strategy="tensor")

    def test_naive_needs_model(self, small_vectors):
        left, right = small_vectors
        with pytest.raises(JoinError, match="model"):
            ejoin(left, right, THRESHOLD, strategy="naive-nlj")

    def test_auto_without_inputs(self, small_vectors):
        left, _ = small_vectors
        with pytest.raises(JoinError, match="right input or index"):
            ejoin(left, None, THRESHOLD, strategy="auto")


class TestAutoSelection:
    def test_auto_small_input_uses_tensor(self, small_vectors):
        left, right = small_vectors
        result = ejoin(left, right, THRESHOLD, strategy="auto")
        assert result.stats.strategy == "tensor"

    def test_auto_large_input_parallel(self):
        rng = np.random.default_rng(80)
        left = rng.standard_normal((2100, 4)).astype(np.float32)
        right = rng.standard_normal((2100, 4)).astype(np.float32)
        result = ejoin(left, right, ThresholdCondition(0.99), strategy="auto")
        assert result.stats.strategy.startswith("parallel-tensor")

    def test_auto_prefers_index_at_full_selectivity(self, small_vectors, flat_index):
        """With an index and no filter, the cost model picks the probe for
        top-1 against a large-enough base (emulated via cost params)."""
        left, right = small_vectors
        from repro.core import CostParams

        cheap_probe = CostParams(probe_hop=0.0001, probe_beam=0.001)
        result = ejoin(
            left,
            right,
            TopKCondition(1),
            strategy="auto",
            index=flat_index,
            cost_params=cheap_probe,
            selectivity_hint=1.0,
        )
        assert result.stats.strategy.startswith("index")

    def test_auto_prefers_scan_at_low_selectivity(self, small_vectors, flat_index):
        left, right = small_vectors
        result = ejoin(
            left,
            right,
            TopKCondition(1),
            strategy="auto",
            index=flat_index,
            selectivity_hint=0.01,
        )
        assert result.stats.strategy == "tensor"

    def test_auto_index_only_base(self, small_vectors, flat_index):
        left, _ = small_vectors
        result = ejoin(
            left, None, TopKCondition(1), strategy="auto", index=flat_index,
            selectivity_hint=0.0001,
        )
        assert result.stats.strategy.startswith("index")


class TestRawItems:
    def test_items_with_model(self, hash_model):
        left = ["barbecue", "piano"]
        right = ["barbeque", "pianos", "sqlite"]
        result = ejoin(
            left, right, TopKCondition(1), model=hash_model, strategy="tensor"
        )
        best = dict(zip(result.left_ids.tolist(), result.right_ids.tolist()))
        assert best[0] == 0  # barbecue -> barbeque
        assert best[1] == 1  # piano -> pianos

    def test_parallel_tensor_with_items(self, hash_model):
        result = ejoin(
            ["a", "b"],
            ["a", "c"],
            ThresholdCondition(0.9),
            model=hash_model,
            strategy="parallel-tensor",
            n_threads=2,
        )
        assert (0, 0) in result.pairs()
