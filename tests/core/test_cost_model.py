"""Unit tests for the cost model and access-path selection."""

import pytest

from repro.core import (
    CostParams,
    choose_access_path,
    crossover_selectivity,
    e_selection_cost,
    index_probe_cost,
    naive_nlj_cost,
    prefetch_nlj_cost,
    scan_join_cost_filtered,
    tensor_join_cost,
)
from repro.errors import JoinError


@pytest.fixture()
def params():
    return CostParams()


class TestCostEquations:
    def test_selection_linear(self, params):
        assert e_selection_cost(200, 100, params) == pytest.approx(
            2 * e_selection_cost(100, 100, params)
        )

    def test_naive_quadratic_in_model(self, params):
        """Doubling both sides quadruples naive cost but far less than
        quadruples prefetch cost when model dominates."""
        expensive = CostParams(model=10_000.0, compute_per_dim=0.001)
        naive_1 = naive_nlj_cost(100, 100, 100, expensive)
        naive_2 = naive_nlj_cost(200, 200, 100, expensive)
        assert naive_2 / naive_1 == pytest.approx(4.0)
        pre_1 = prefetch_nlj_cost(100, 100, 100, expensive)
        pre_2 = prefetch_nlj_cost(200, 200, 100, expensive)
        assert pre_2 / pre_1 < 3.0  # model term is linear

    def test_prefetch_dominates_naive(self, params):
        for n in (10, 100, 1000):
            assert prefetch_nlj_cost(n, n, 100, params) < naive_nlj_cost(
                n, n, 100, params
            )

    def test_tensor_beats_prefetch(self, params):
        assert tensor_join_cost(1000, 1000, 100, params) < prefetch_nlj_cost(
            1000, 1000, 100, params
        )

    def test_scalar_kernel_penalty(self, params):
        fast = prefetch_nlj_cost(100, 100, 100, params)
        slow = prefetch_nlj_cost(100, 100, 100, params, scalar_kernel=True)
        assert slow > fast

    def test_validation(self):
        with pytest.raises(JoinError):
            CostParams(model=-1).validate()
        CostParams().validate()


class TestIndexProbeCost:
    def test_logarithmic_in_base(self, params):
        small = index_probe_cost(1_000, 1, 100, params)
        big = index_probe_cost(1_000_000, 1, 100, params)
        assert big < small * 10  # log growth, not linear

    def test_filter_penalty(self, params):
        full = index_probe_cost(10_000, 1, 100, params, selectivity=1.0)
        filtered = index_probe_cost(10_000, 1, 100, params, selectivity=0.01)
        assert filtered > full

    def test_deeper_k_costs_more(self, params):
        k1 = index_probe_cost(10_000, 1, 100, params, ef_search=1)
        k32 = index_probe_cost(10_000, 64, 100, params, ef_search=1)
        assert k32 > k1

    def test_empty_base(self, params):
        assert index_probe_cost(0, 1, 100, params) == 0.0


class TestAccessPathSelection:
    def test_scan_wins_low_selectivity(self, params):
        decision = choose_access_path(
            1_000, 1_000_000, 1, 100, selectivity=0.01, params=params
        )
        assert decision.choice == "scan"

    def test_index_wins_high_selectivity_top1(self, params):
        decision = choose_access_path(
            1_000, 1_000_000, 1, 100, selectivity=1.0, params=params
        )
        assert decision.choice == "index"

    def test_no_index_forces_scan(self, params):
        decision = choose_access_path(
            1_000, 1_000_000, 1, 100, selectivity=1.0, index_available=False
        )
        assert decision.choice == "scan"
        assert decision.index_cost == float("inf")

    def test_decision_ratio(self, params):
        decision = choose_access_path(100, 10_000, 1, 100, selectivity=0.05)
        assert decision.ratio == pytest.approx(
            decision.index_cost / decision.scan_cost
        )

    def test_filtered_scan_cheaper_than_full(self, params):
        full = scan_join_cost_filtered(100, 100_000, 100, params, selectivity=1.0)
        filtered = scan_join_cost_filtered(
            100, 100_000, 100, params, selectivity=0.01
        )
        assert filtered < full


class TestCrossover:
    def test_topk1_crossover_exists(self, params):
        """Figure 15 shape: for top-1 there is a selectivity above which
        the index wins."""
        crossover = crossover_selectivity(10_000, 1_000_000, 1, 100)
        assert crossover is not None
        assert 0.0 < crossover <= 1.0

    def test_deeper_k_pushes_crossover_up(self, params):
        """Figure 16 shape: top-32 moves the crossover to higher
        selectivity (or off the chart)."""
        c1 = crossover_selectivity(10_000, 1_000_000, 1, 100)
        c32 = crossover_selectivity(10_000, 1_000_000, 32, 100, ef_search=64)
        if c32 is not None:
            assert c32 >= c1
        # c32 may be None (index never wins) — also a valid Fig-16 shape.

    def test_monotone_decision_in_selectivity(self, params):
        """Once the index wins, it keeps winning at higher selectivity."""
        seen_index = False
        for step in range(1, 101):
            sel = step / 100
            decision = choose_access_path(
                10_000, 1_000_000, 1, 100, selectivity=sel
            )
            if decision.choice == "index":
                seen_index = True
            elif seen_index:
                pytest.fail(f"decision flipped back to scan at {sel}")
