"""Unit tests for the index-probe E-join."""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_PROBE_K,
    ThresholdCondition,
    TopKCondition,
    build_index_for_join,
    index_join,
    tensor_join,
)
from repro.errors import DimensionalityError, JoinError
from repro.index import FlatIndex, HNSWIndex


@pytest.fixture()
def flat_index(small_vectors):
    _, right = small_vectors
    idx = FlatIndex(right.shape[1])
    idx.add(right)
    return idx


class TestExactIndexEquivalence:
    def test_topk_matches_tensor(self, small_vectors, flat_index):
        """Against an exact (flat) index, the index join equals the scan."""
        left, right = small_vectors
        for k in (1, 3):
            got = index_join(left, flat_index, TopKCondition(k)).pairs()
            expected = tensor_join(left, right, TopKCondition(k)).pairs()
            assert got == expected

    def test_topk_min_similarity(self, small_vectors, flat_index):
        left, right = small_vectors
        cond = TopKCondition(5, min_similarity=0.4)
        got = index_join(left, flat_index, cond).pairs()
        expected = tensor_join(left, right, cond).pairs()
        assert got == expected


class TestThresholdEmulation:
    def test_threshold_via_probe_k(self, small_vectors, flat_index):
        """A range condition on an index = top-probe_k + post-filter."""
        left, right = small_vectors
        cond = ThresholdCondition(0.4)
        got = index_join(left, flat_index, cond, probe_k=40).pairs()
        expected = tensor_join(left, right, cond).pairs()
        assert got == expected  # probe_k covers the whole base: no loss

    def test_small_probe_k_loses_pairs(self, small_vectors, flat_index):
        """With probe_k below the real match count, the index misses pairs
        (the Figure 17 flexibility limitation)."""
        left, right = small_vectors
        cond = ThresholdCondition(0.0)  # matches ~half of all pairs
        limited = index_join(left, flat_index, cond, probe_k=2)
        exact = tensor_join(left, right, cond)
        assert len(limited) < len(exact)
        assert limited.pairs() <= exact.pairs()

    def test_default_probe_k(self, small_vectors, flat_index):
        left, _ = small_vectors
        result = index_join(left, flat_index, ThresholdCondition(0.4))
        assert result.stats.extra["probe_k"] == DEFAULT_PROBE_K

    def test_invalid_probe_k(self, small_vectors, flat_index):
        left, _ = small_vectors
        with pytest.raises(JoinError):
            index_join(left, flat_index, ThresholdCondition(0.4), probe_k=0)


class TestPreFilter:
    def test_allowed_ids_only(self, small_vectors, flat_index):
        left, right = small_vectors
        allowed = np.zeros(len(right), dtype=bool)
        allowed[5:15] = True
        result = index_join(left, flat_index, TopKCondition(2), allowed=allowed)
        assert set(result.right_ids.tolist()) <= set(range(5, 15))

    def test_prefilter_matches_filtered_scan(self, small_vectors, flat_index):
        left, right = small_vectors
        allowed = np.zeros(len(right), dtype=bool)
        allowed[:20] = True
        got = index_join(left, flat_index, TopKCondition(1), allowed=allowed).pairs()
        scan = tensor_join(left, right[:20], TopKCondition(1)).pairs()
        assert got == scan


class TestHNSWJoin:
    def test_high_recall_against_exact(self, small_vectors):
        left, right = small_vectors
        hnsw = HNSWIndex(right.shape[1], m=8, ef_construction=64, ef_search=40, seed=70)
        hnsw.add(right)
        got = index_join(left, hnsw, TopKCondition(3)).pairs()
        expected = tensor_join(left, right, TopKCondition(3)).pairs()
        recall = len(got & expected) / len(expected)
        assert recall >= 0.9

    def test_stats(self, small_vectors):
        left, right = small_vectors
        hnsw = HNSWIndex(right.shape[1], m=4, ef_construction=32, seed=71)
        hnsw.add(right)
        result = index_join(left, hnsw, TopKCondition(1))
        assert result.stats.strategy == "index/hnswindex"
        assert result.stats.similarity_evaluations > 0
        assert result.stats.n_right == len(right)


class TestValidation:
    def test_dim_mismatch(self, small_vectors, flat_index):
        left, _ = small_vectors
        with pytest.raises(DimensionalityError):
            index_join(left[:, :4], flat_index, TopKCondition(1))

    def test_raw_items_need_model(self, flat_index):
        with pytest.raises(JoinError, match="model"):
            index_join(["a", "b"], flat_index, TopKCondition(1))


class TestBuildIndexForJoin:
    def test_from_vectors(self, small_vectors):
        _, right = small_vectors
        idx = build_index_for_join(right, lambda d: FlatIndex(d))
        assert len(idx) == len(right)
        assert idx.dim == right.shape[1]

    def test_from_raw_items(self, hash_model):
        idx = build_index_for_join(
            ["a", "b", "c"], lambda d: FlatIndex(d), model=hash_model
        )
        assert len(idx) == 3
        assert idx.dim == hash_model.dim
