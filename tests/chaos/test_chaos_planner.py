"""Chaos: planner access paths route around injected faults via breakers.

Fallback never changes answers, only speed: every fallback target in the
chain (pq -> int8 -> fp32 scan, index -> scan) is an exact path, so the
results under faults must be bit-identical to a clean fp32/scan run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra import (
    EJoinNode,
    ExecutionContext,
    ExecutionReport,
    ScanNode,
    execute,
)
from repro.config import configure
from repro.core import TopKCondition
from repro.embedding import HashingEmbedder, ModelRegistry
from repro.index import FlatIndex
from repro.reliability.breaker import breakers
from repro.reliability.faults import FaultInjector, install_injector
from repro.relational import Catalog, DataType, Field, Schema, Table

from _chaos_utils import assert_tables_equal

pytestmark = pytest.mark.chaos

DIM = 16


def make_ctx() -> ExecutionContext:
    schema = Schema.of(
        Field("id", DataType.INT64), Field("emb", DataType.TENSOR, dim=DIM)
    )

    def table(n: int, seed: int) -> Table:
        rng = np.random.default_rng(seed)
        return Table.from_arrays(
            schema,
            {
                "id": np.arange(n),
                "emb": rng.standard_normal((n, DIM)).astype(np.float32),
            },
        )

    catalog = Catalog()
    catalog.register("probes", table(40, 1))
    catalog.register("base", table(300, 2))
    models = ModelRegistry()
    models.register("hash", HashingEmbedder(dim=DIM, seed=3))
    return ExecutionContext(catalog, models=models)


def make_join(**kwargs) -> EJoinNode:
    return EJoinNode(
        ScanNode("probes"),
        ScanNode("base"),
        "emb",
        "emb",
        "hash",
        TopKCondition(3),
        prefetch=True,
        **kwargs,
    )


@pytest.fixture(autouse=True)
def _restore_precision():
    yield
    configure(default_precision="fp32", default_min_recall=0.95)


def test_quant_build_faults_fall_back_to_exact_and_trip_breaker():
    """Failing int8 store builds: every query still answers exactly via
    the fp32 scan; after the threshold the breaker stops even trying."""
    reference = execute(make_join(), make_ctx())  # clean fp32 scan

    configure(default_precision="int8", default_min_recall=0.9)
    clean = ExecutionReport()
    execute(make_join(), make_ctx(), report=clean)
    assert clean.strategies == ["tensor-int8"]  # faults are the only cause

    ctx = make_ctx()
    injector = install_injector(
        FaultInjector(1.0, seed=3, sites=("quant.build",), kinds=("permanent",))
    )
    for _ in range(3):  # default breaker threshold
        report = ExecutionReport()
        out = execute(make_join(), ctx, report=report)
        assert report.fallbacks == ["base/emb/hash/int8"]
        assert report.strategies == ["tensor"]
        assert_tables_equal(out, reference, context="int8 fallback")
    assert breakers().snapshot()["base/emb/hash/int8"]["state"] == "open"

    # Open breaker: the planner routes straight to fp32 without touching
    # the failing build path at all.
    checks_before = injector.stats.snapshot()["by_site"].get("quant.build", 0)
    report = ExecutionReport()
    out = execute(make_join(), ctx, report=report)
    assert report.fallbacks == []
    assert report.strategies == ["tensor"]
    assert_tables_equal(out, reference, context="breaker-gated")
    checks_after = injector.stats.snapshot()["by_site"].get("quant.build", 0)
    assert checks_after == checks_before


def test_pq_faults_walk_the_chain_down_to_int8():
    """A failing pq store falls to int8 (still quantized) when only the
    pq path is broken, not all the way to fp32."""
    configure(default_precision="pq", default_min_recall=0.9)
    ctx = make_ctx()
    # Pre-open only the pq breaker; int8 stays healthy.
    for _ in range(3):
        breakers().record_failure(("base", "emb", "hash", "pq"))
    report = ExecutionReport()
    out = execute(make_join(), ctx, report=report)
    assert report.strategies in (["tensor-int8"], ["tensor"])
    assert out.num_rows > 0


def test_index_probe_faults_fall_back_to_scan_and_trip_breaker():
    def with_index(ctx: ExecutionContext) -> ExecutionContext:
        base = ctx.catalog.get("base")
        index = FlatIndex(DIM)
        index.add(base.array("emb"))
        ctx.register_index("base", "emb", index)
        return ctx

    reference = execute(make_join(), make_ctx())  # clean scan

    ctx = with_index(make_ctx())
    injector = install_injector(
        FaultInjector(1.0, seed=4, sites=("index.probe",), kinds=("transient",))
    )
    for _ in range(3):
        report = ExecutionReport()
        out = execute(make_join(strategy_hint="index"), ctx, report=report)
        assert report.fallbacks == ["base/emb/hash/index"]
        assert report.strategies == ["tensor"]
        assert_tables_equal(out, reference, context="index fallback")
    assert breakers().snapshot()["base/emb/hash/index"]["state"] == "open"

    # Auto path with the breaker open: the cost model sees "no index"
    # and lands on the scan without a single probe.
    probes_before = injector.stats.snapshot()["by_site"].get("index.probe", 0)
    report = ExecutionReport()
    out = execute(make_join(), ctx, report=report)
    assert report.fallbacks == []
    assert report.strategies == ["tensor"]
    assert_tables_equal(out, reference, context="breaker-gated index")
    assert injector.stats.snapshot()["by_site"].get("index.probe", 0) == (
        probes_before
    )


def test_index_breaker_success_closes_again():
    """A healthy probe after the cooldown trial closes the breaker."""
    key = ("base", "emb", "hash", "index")
    registry = breakers()
    for _ in range(3):
        registry.record_failure(key)
    assert registry.snapshot()["base/emb/hash/index"]["state"] == "open"
    registry.record_success(key)
    assert registry.snapshot()["base/emb/hash/index"]["state"] == "closed"
