"""Helpers shared by the chaos test modules."""

from __future__ import annotations

import numpy as np

from repro.embedding import HashingEmbedder
from repro.query import Engine
from repro.relational import Catalog, DataType, Field, Table
from repro.relational.column import Column
from repro.workloads import unit_vectors

DIM = 16
N_ROWS = 400
MODEL = "m"


def make_corpus_table(n: int = N_ROWS, *, stream: str = "chaos/base") -> Table:
    vectors = unit_vectors(n, DIM, stream=stream)
    return Table.from_columns(
        [
            Column(Field("id", DataType.INT64), np.arange(n)),
            Column(Field("emb", DataType.TENSOR, dim=DIM), vectors),
        ]
    )


def make_engine() -> Engine:
    catalog = Catalog()
    catalog.register("corpus", make_corpus_table())
    catalog.register("other", make_corpus_table(120, stream="chaos/other"))
    engine = Engine(catalog)
    engine.models.register(MODEL, HashingEmbedder(dim=DIM))
    return engine


def assert_tables_equal(a: Table, b: Table, *, context: str = "") -> None:
    assert a.schema.names == b.schema.names, f"{context}: schemas differ"
    for name in a.schema.names:
        left, right = a.array(name), b.array(name)
        assert np.array_equal(left, right), (
            f"{context}: column {name!r} differs: {left[:5]} vs {right[:5]}"
        )
