"""Chaos: the service under seeded fault storms stays exact and bounded.

The acceptance contract these tests pin down: with deterministic faults
injected into kernels, workers, and the dispatcher, every result the
service returns without the ``degraded`` flag is bit-identical to
fault-free serial execution; kills and hangs are recovered within the
watchdog's bound instead of hanging the query.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.config import configure, get_config
from repro.errors import PermanentFault
from repro.reliability.faults import FaultInjector, install_injector
from repro.service import QueryService

from _chaos_utils import MODEL, assert_tables_equal, make_engine

pytestmark = pytest.mark.chaos

#: The storm arms every site a non-degraded query can cross.
STORM_SITES = (
    "kernel.gemm",
    "kernel.rescore",
    "engine.worker",
    "service.dispatch",
)


def _builders(engine, qvecs) -> list:
    """Mixed eselect/ejoin traffic over the shared catalog."""
    builders = []
    for i, q in enumerate(qvecs):
        kind = i % 3
        if kind == 0:
            builders.append(
                engine.query("corpus").esimilar("emb", q, model=MODEL, top_k=3)
            )
        elif kind == 1:
            builders.append(
                engine.query("corpus")
                .esimilar("emb", q, model=MODEL, top_k=5)
                .select(["id", "similarity"])
            )
        else:
            builders.append(
                engine.query("other").ejoin(
                    "corpus",
                    left_on="emb",
                    right_on="emb",
                    model=MODEL,
                    top_k=2,
                )
            )
    return builders


def _drive(service: QueryService, builders, n_clients: int = 8):
    """Run the builders through concurrent sessions; return (results, errors)."""
    results = [None] * len(builders)
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_clients)

    def client(worker: int) -> None:
        try:
            with service.session(f"chaos-{worker}") as session:
                barrier.wait()
                for i in range(worker, len(builders), n_clients):
                    results[i] = session.execute(builders[i])
        except BaseException as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(w,), daemon=True)
        for w in range(n_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads), "a chaos client hung"
    return results, errors


def test_transient_storm_results_bit_identical(query_vectors):
    """1%-class transient fault storm: full availability, exact results."""
    serial = [b.execute() for b in _builders(make_engine(), query_vectors)]

    engine = make_engine()
    service = QueryService(engine, coalesce=True, coalesce_window_s=0.01)
    injector = install_injector(
        FaultInjector(
            0.05, seed=1234, sites=STORM_SITES, kinds=("transient",)
        )
    )
    builders = _builders(engine, query_vectors)
    results, errors = _drive(service, builders)

    assert errors == []
    assert injector.stats.snapshot()["injected"] > 0, "storm never fired"
    for i, (got, want) in enumerate(zip(results, serial)):
        assert_tables_equal(got, want, context=f"query {i}")
    health = service.health()
    assert health.retries["retries"] > 0  # recovery actually happened
    assert health.faults["injected"] == injector.stats.snapshot()["injected"]


def test_latency_spikes_only_slow_never_corrupt(query_vectors):
    serial = [b.execute() for b in _builders(make_engine(), query_vectors[:12])]
    engine = make_engine()
    service = QueryService(engine, coalesce=True, coalesce_window_s=0.01)
    injector = install_injector(
        FaultInjector(
            0.2,
            seed=7,
            sites=STORM_SITES,
            kinds=("latency",),
            latency_s=0.002,
        )
    )
    results, errors = _drive(service, _builders(engine, query_vectors[:12]))
    assert errors == []
    assert injector.stats.snapshot()["by_kind"].get("latency", 0) > 0
    for i, (got, want) in enumerate(zip(results, serial)):
        assert_tables_equal(got, want, context=f"query {i}")


def test_worker_kills_recovered_bit_identically(query_vectors):
    """Abrupt worker deaths: watchdog/sweep recovery, results exact."""
    configure(default_threads=4, default_morsel_rows=32)
    try:
        serial = [
            b.execute() for b in _builders(make_engine(), query_vectors[:12])
        ]
        engine = make_engine()
        service = QueryService(engine, coalesce=True, coalesce_window_s=0.01)
        injector = install_injector(
            FaultInjector(
                0.3,
                seed=2,
                sites=("engine.worker",),
                kinds=("transient", "kill"),
            )
        )
        results, errors = _drive(service, _builders(engine, query_vectors[:12]))
        assert errors == []
        assert injector.stats.snapshot()["by_kind"].get("kill", 0) >= 1
        for i, (got, want) in enumerate(zip(results, serial)):
            assert_tables_equal(got, want, context=f"query {i}")
    finally:
        configure(default_threads=None, default_morsel_rows=1024)


def test_injected_hangs_bounded_by_watchdog(query_vectors):
    """A hang far longer than any query must not set the pace: the
    watchdog stalls the hung worker out and re-runs its morsel."""
    config = get_config()
    saved = (config.default_threads, config.default_morsel_rows)
    configure(default_threads=4, default_morsel_rows=16, watchdog_stall_s=0.05)
    try:
        serial = [
            b.execute() for b in _builders(make_engine(), query_vectors[:6])
        ]
        engine = make_engine()
        service = QueryService(engine, coalesce=False)
        injector = install_injector(
            FaultInjector(
                0.3,
                seed=21,
                sites=("engine.worker",),
                kinds=("hang",),
                hang_s=30.0,
                max_faults=2,
            )
        )
        start = time.perf_counter()
        results, errors = _drive(
            service, _builders(engine, query_vectors[:6]), n_clients=3
        )
        elapsed = time.perf_counter() - start
        assert errors == []
        assert injector.stats.snapshot()["by_kind"].get("hang", 0) >= 1
        assert elapsed < 15.0, f"queries hung for {elapsed:.1f}s"
        assert engine.executor.stats.watchdog_stalls >= 1
        for i, (got, want) in enumerate(zip(results, serial)):
            assert_tables_equal(got, want, context=f"query {i}")
    finally:
        configure(
            default_threads=saved[0],
            default_morsel_rows=saved[1],
            watchdog_stall_s=5.0,
        )


def test_permanent_faults_fail_fast_and_cleanly(query_vectors):
    """Permanent faults are not retried: the query fails immediately,
    later queries are unaffected, and counters stay consistent."""
    engine = make_engine()
    service = QueryService(engine, coalesce=False)
    install_injector(
        FaultInjector(
            1.0,
            seed=5,
            sites=("service.dispatch",),
            kinds=("permanent",),
            max_faults=2,
        )
    )
    builders = _builders(engine, query_vectors[:6])
    with service.session("perm") as session:
        failures = 0
        results = []
        for b in builders:
            try:
                results.append(session.execute(b))
            except PermanentFault:
                failures += 1
        assert failures == 2
        assert len(results) == 4
    snapshot = service.stats_snapshot()
    assert snapshot["service"]["failed"] == 2
    assert snapshot["service"]["completed"] == 4


def test_health_snapshot_reports_ok_when_quiet(query_vectors):
    engine = make_engine()
    service = QueryService(engine, coalesce=False)
    with service.session("quiet") as session:
        session.execute(_builders(engine, query_vectors[:1])[0])
    health = service.health()
    assert health.status == "ok"
    assert health.open_breakers == 0
    assert health.faults == {}
    assert health.service["completed"] == 1
    as_dict = health.as_dict()
    assert set(as_dict) == {
        "status",
        "breakers",
        "open_breakers",
        "retries",
        "watchdog",
        "faults",
        "qos",
        "service",
        "shard",
    }
    assert as_dict["shard"] == {}  # no shard pool configured
