"""Fixtures for the chaos suite: clean reliability state per test.

Every test here installs a process-wide fault injector and exercises the
process-wide breaker registry, so each one starts and ends with both
cleared — a leaked injector would poison whatever test runs next.
"""

from __future__ import annotations

import numpy as np
import pytest

from _chaos_utils import DIM
from repro.reliability.breaker import reset_breakers
from repro.reliability.faults import clear_injector
from repro.workloads import unit_vectors


@pytest.fixture(autouse=True)
def _clean_reliability_state():
    clear_injector()
    reset_breakers()
    yield
    clear_injector()
    reset_breakers()


@pytest.fixture()
def query_vectors() -> np.ndarray:
    return unit_vectors(32, DIM, stream="chaos/queries")
