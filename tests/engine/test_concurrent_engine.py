"""Concurrent use of a shared Engine matches serial execution exactly.

Satellite of the service PR: N threads issue mixed eselect/ejoin queries
against one shared catalog/engine and must produce bit-identical results
to running the same queries serially — including the shared-store paths
(embed-once stores, normalize-once matrices, quantized stores), whose
get-or-build is serialized by the engine's store lock.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro.config as config_mod
from repro.embedding import HashingEmbedder
from repro.embedding.cache import EmbeddingStore
from repro.query import Engine
from repro.relational import Catalog, DataType, Field, Table
from repro.relational.column import Column
from repro.workloads import unit_vectors

DIM = 12
MODEL = "m"


def _table(n: int, stream: str) -> Table:
    return Table.from_columns(
        [
            Column(Field("id", DataType.INT64), np.arange(n)),
            Column(Field("emb", DataType.TENSOR, dim=DIM), unit_vectors(n, DIM, stream=stream)),
        ]
    )


def _make_engine() -> Engine:
    catalog = Catalog()
    catalog.register("left", _table(90, "conc/left"))
    catalog.register("right", _table(300, "conc/right"))
    engine = Engine(catalog)
    engine.models.register(MODEL, HashingEmbedder(dim=DIM))
    return engine


def _builders(engine: Engine, qvecs) -> list:
    out = []
    for i, q in enumerate(qvecs):
        kind = i % 3
        if kind == 0:
            out.append(
                engine.query("right").esimilar("emb", q, model=MODEL, top_k=4)
            )
        elif kind == 1:
            out.append(
                engine.query("right").esimilar(
                    "emb", q, model=MODEL, threshold=0.3
                )
            )
        else:
            out.append(
                engine.query("left").ejoin(
                    "right", left_on="emb", right_on="emb", model=MODEL, top_k=2
                )
            )
    return out


def _run_concurrently(engine: Engine, builders: list, n_threads: int) -> list:
    results = [None] * len(builders)
    errors: list = []
    barrier = threading.Barrier(n_threads)

    def worker(w: int) -> None:
        try:
            barrier.wait()
            for i in range(w, len(builders), n_threads):
                results[i] = builders[i].execute()
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True)
        for w in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return results


def _assert_equal(a: Table, b: Table, context: str) -> None:
    assert a.schema.names == b.schema.names, context
    for name in a.schema.names:
        assert np.array_equal(a.array(name), b.array(name)), (
            f"{context}: column {name!r} differs"
        )


def test_concurrent_mixed_queries_match_serial():
    qvecs = unit_vectors(18, DIM, stream="conc/queries")
    serial_engine = _make_engine()
    serial = [b.execute() for b in _builders(serial_engine, qvecs)]

    shared_engine = _make_engine()
    results = _run_concurrently(shared_engine, _builders(shared_engine, qvecs), 6)
    for i, (a, b) in enumerate(zip(serial, results)):
        _assert_equal(a, b, f"query {i}")


def test_concurrent_repeats_on_one_engine_match_first_run():
    """Cache-hit paths: re-running the same queries on the same engine
    (warm stores, warm normalized matrices) is still bit-identical."""
    qvecs = unit_vectors(12, DIM, stream="conc/repeat")
    engine = _make_engine()
    first = [b.execute() for b in _builders(engine, qvecs)]
    repeat = _run_concurrently(engine, _builders(engine, qvecs), 4)
    for i, (a, b) in enumerate(zip(first, repeat)):
        _assert_equal(a, b, f"repeat query {i}")


@pytest.mark.quant
def test_concurrent_quantized_store_built_once():
    """Racing eselects under a quantized precision build one store."""
    original = config_mod.get_config().default_precision
    config_mod.configure(default_precision="int8")
    try:
        engine = _make_engine()
        qvecs = unit_vectors(8, DIM, stream="conc/quant")
        builders = [
            engine.query("right").esimilar("emb", q, model=MODEL, top_k=3)
            for q in qvecs
        ]
        serial_engine = _make_engine()
        serial = [
            serial_engine.query("right")
            .esimilar("emb", q, model=MODEL, top_k=3)
            .execute()
            for q in qvecs
        ]
        results = _run_concurrently(engine, builders, 4)
        for i, (a, b) in enumerate(zip(serial, results)):
            _assert_equal(a, b, f"quant query {i}")
        stores = [
            key for key in engine._quant_stores if key[0] == "right"
        ]
        assert len(stores) <= 1  # racing builds deduplicated by the lock
    finally:
        config_mod.configure(default_precision=original)


def test_embedding_store_concurrent_add_items_consistent():
    """Racing add_items embed each unique item exactly once."""
    model = HashingEmbedder(dim=DIM)
    store = EmbeddingStore(model)
    words = [f"word-{i}" for i in range(40)]
    barrier = threading.Barrier(8)
    errors: list = []

    def worker(w: int) -> None:
        try:
            barrier.wait()
            for _ in range(5):
                store.embed_items(words)
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True) for w in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    assert len(store) == len(words)
    expected = model.embed_batch(words)
    assert np.array_equal(store.embed_items(words), expected)


def test_tagged_engine_views_share_stats():
    engine = _make_engine()
    ctx_a = engine.context(tag="qa")
    ctx_b = engine.context(tag="qb")
    ctx_a.engine.run([lambda: 1, lambda: 2])
    ctx_b.engine.run([lambda: 3])
    stats = engine.executor.stats
    assert stats.by_tag == {"qa": 2, "qb": 1}
    assert stats.morsels_dispatched == 3


def test_by_tag_attribution_is_bounded():
    """Unique per-query tags must not grow engine stats without bound."""
    from repro.engine import ExecutionEngine
    from repro.engine.executor import MAX_TRACKED_TAGS

    engine = ExecutionEngine(n_threads=1)
    extra = 50
    for i in range(MAX_TRACKED_TAGS + extra):
        engine.with_tag(f"q{i}").run([lambda: None])
    stats = engine.stats
    assert len(stats.by_tag) <= MAX_TRACKED_TAGS + 1  # incl. the aggregate
    assert sum(stats.by_tag.values()) == MAX_TRACKED_TAGS + extra
    assert stats.by_tag["<evicted>"] == extra
    # The most recent tags are the ones retained.
    assert f"q{MAX_TRACKED_TAGS + extra - 1}" in stats.by_tag
