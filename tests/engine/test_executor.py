"""Unit tests for the ExecutionEngine facade."""

import numpy as np
import pytest

from repro.config import configure, get_config
from repro.engine import BatchPolicy, ExecutionEngine, serial_engine


@pytest.fixture()
def restore_config():
    config = get_config()
    saved = (
        config.default_threads,
        config.default_morsel_rows,
        config.default_buffer_budget_bytes,
        config.work_stealing,
    )
    yield config
    (
        config.default_threads,
        config.default_morsel_rows,
        config.default_buffer_budget_bytes,
        config.work_stealing,
    ) = saved


class TestEngineConstruction:
    def test_defaults_from_config(self, restore_config):
        configure(
            default_threads=3,
            default_morsel_rows=77,
            default_buffer_budget_bytes=4096,
            work_stealing=False,
        )
        engine = ExecutionEngine()
        assert engine.n_threads == 3
        assert engine.morsel_rows == 77
        assert engine.policy.buffer_budget_bytes == 4096
        assert engine.work_stealing is False

    def test_explicit_arguments_win(self, restore_config):
        configure(default_threads=2)
        engine = ExecutionEngine(n_threads=5, morsel_rows=10)
        assert engine.n_threads == 5
        assert engine.morsel_rows == 10

    def test_serial_engine(self):
        assert serial_engine().n_threads == 1

    def test_invalid_morsel_rows(self):
        with pytest.raises(ValueError, match="morsel_rows"):
            ExecutionEngine(morsel_rows=0)


class TestMorselization:
    def test_morsels_cover_input(self):
        engine = ExecutionEngine(n_threads=4, morsel_rows=100)
        morsels = engine.morsels_for(1000)
        assert morsels[0].start == 0
        assert morsels[-1].stop == 1000
        assert sum(len(m) for m in morsels) == 1000

    def test_morsels_give_stealing_slack(self):
        """Each worker should see several morsels, not one static slab."""
        engine = ExecutionEngine(n_threads=4, morsel_rows=10_000)
        morsels = engine.morsels_for(4000)
        assert len(morsels) >= 4 * 4

    def test_small_input_single_morsel(self):
        engine = ExecutionEngine(n_threads=1, morsel_rows=1024)
        assert len(engine.morsels_for(10)) == 1

    def test_empty_input(self):
        assert ExecutionEngine(n_threads=2).morsels_for(0) == []


class TestMapMorsels:
    @pytest.mark.parametrize("n_threads", [1, 4])
    def test_results_in_input_order(self, n_threads):
        engine = ExecutionEngine(n_threads=n_threads, morsel_rows=7)
        results = engine.map_morsels(100, lambda m: (m.start, m.stop))
        flat = [r for r in results]
        assert flat[0][0] == 0
        assert flat[-1][1] == 100
        for (_, hi), (lo, _) in zip(flat, flat[1:]):
            assert hi == lo

    def test_stats_accumulate(self):
        engine = ExecutionEngine(n_threads=2, morsel_rows=5)
        engine.map_morsels(50, lambda m: len(m))
        assert engine.stats.runs == 1
        assert engine.stats.morsels_dispatched == len(engine.morsels_for(50))

    def test_sum_matches_sequential(self):
        data = np.arange(1000, dtype=np.float64)
        engine = ExecutionEngine(n_threads=4, morsel_rows=13)
        parts = engine.map_morsels(
            1000, lambda m: float(data[m.start : m.stop].sum())
        )
        assert sum(parts) == pytest.approx(float(data.sum()))


class TestCalibration:
    def test_calibrate_adopts_measured_policy(self, hash_model):
        engine = ExecutionEngine(n_threads=1)
        engine.policy = BatchPolicy(buffer_budget_bytes=1 << 20)
        policy = engine.calibrate(hash_model, dim=16, n_rows=128)
        assert policy.gemm_seconds_per_fma is not None
        assert policy.gemm_seconds_per_fma > 0
        assert policy.buffer_budget_bytes == 1 << 20
        assert engine.policy is policy
        # The calibrated policy produces a usable batch shape.
        bl, br = engine.policy.resolve(10_000, 10_000, 16)
        assert 1 <= bl <= 10_000 and 1 <= br <= 10_000
