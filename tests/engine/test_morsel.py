"""Unit tests for morsel generation and row partitioning."""

import pytest

from repro.engine import Morsel, make_morsels, partition_rows
from repro.errors import JoinError


class TestPartitionRowsEdges:
    def test_empty_relation(self):
        assert partition_rows(0, 4) == []

    def test_negative_rows(self):
        assert partition_rows(-3, 2) == []

    def test_more_parts_than_rows(self):
        parts = partition_rows(3, 100)
        assert parts == [(0, 1), (1, 2), (2, 3)]

    def test_single_row(self):
        assert partition_rows(1, 8) == [(0, 1)]

    def test_invalid_part_count(self):
        with pytest.raises(JoinError, match="n_parts"):
            partition_rows(10, 0)
        with pytest.raises(JoinError, match="n_parts"):
            partition_rows(10, -1)

    @pytest.mark.parametrize("n,n_parts", [(7, 3), (100, 7), (10, 10), (11, 4)])
    def test_off_by_one_boundaries(self, n, n_parts):
        """Parts tile [0, n) exactly: contiguous, disjoint, full coverage."""
        parts = partition_rows(n, n_parts)
        assert parts[0][0] == 0
        assert parts[-1][1] == n
        for (_, hi), (lo, _) in zip(parts, parts[1:]):
            assert hi == lo
        assert sum(hi - lo for lo, hi in parts) == n
        sizes = [hi - lo for lo, hi in parts]
        assert max(sizes) - min(sizes) <= 1


class TestMakeMorsels:
    def test_exact_division(self):
        morsels = make_morsels(100, 25)
        assert [(m.start, m.stop) for m in morsels] == [
            (0, 25), (25, 50), (50, 75), (75, 100)
        ]
        assert [m.seq for m in morsels] == [0, 1, 2, 3]

    def test_remainder_spread(self):
        morsels = make_morsels(10, 4)
        assert sum(len(m) for m in morsels) == 10
        assert all(len(m) <= 4 for m in morsels)

    def test_empty(self):
        assert make_morsels(0, 16) == []

    def test_invalid_morsel_rows(self):
        with pytest.raises(JoinError, match="morsel_rows"):
            make_morsels(10, 0)

    def test_morsel_len(self):
        assert len(Morsel(0, 3, 9)) == 6
