"""Unit tests for the work-stealing scheduler."""

import threading
import time

import pytest

from repro.engine import SchedulerStats, WorkStealingScheduler
from repro.errors import JoinError


class TestWorkStealingScheduler:
    def test_results_in_task_order(self):
        scheduler = WorkStealingScheduler(4)
        tasks = [lambda i=i: i * i for i in range(50)]
        assert scheduler.run(tasks) == [i * i for i in range(50)]

    def test_single_worker_inline(self):
        scheduler = WorkStealingScheduler(1)
        order = []
        tasks = [lambda i=i: order.append(i) for i in range(5)]
        scheduler.run(tasks)
        assert order == [0, 1, 2, 3, 4]

    def test_empty_batch(self):
        assert WorkStealingScheduler(4).run([]) == []

    def test_invalid_worker_count(self):
        with pytest.raises(JoinError, match="n_workers"):
            WorkStealingScheduler(0)

    def test_exception_propagates(self):
        scheduler = WorkStealingScheduler(3)

        def boom():
            raise ValueError("task failed")

        with pytest.raises(ValueError, match="task failed"):
            scheduler.run([lambda: 1, boom, lambda: 2])

    def test_uses_multiple_threads(self):
        scheduler = WorkStealingScheduler(4)
        seen = set()

        def task():
            seen.add(threading.current_thread().name)
            time.sleep(0.005)
            return True

        results = scheduler.run([task for _ in range(16)])
        assert all(results)
        assert len(seen) > 1

    def test_stealing_rebalances_skew(self):
        """A worker stuck on a slow morsel loses its queue to thieves."""
        scheduler = WorkStealingScheduler(2)
        stats = SchedulerStats()

        def slow():
            time.sleep(0.05)
            return "slow"

        # Worker 0's slice starts with the slow task; worker 1's tasks are
        # instant, so it should steal from worker 0's backlog.
        tasks = [slow] + [lambda: "fast" for _ in range(19)]
        results = scheduler.run(tasks, stats=stats)
        assert results[0] == "slow"
        assert stats.steals > 0

    def test_no_stealing_mode(self):
        scheduler = WorkStealingScheduler(2, work_stealing=False)
        stats = SchedulerStats()
        results = scheduler.run(
            [lambda i=i: i for i in range(10)], stats=stats
        )
        assert results == list(range(10))
        assert stats.steals == 0

    def test_worker_count_capped_by_tasks(self):
        stats = SchedulerStats()
        WorkStealingScheduler(8).run([lambda: 1, lambda: 2], stats=stats)
        assert stats.n_workers == 2
