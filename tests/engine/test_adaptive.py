"""Unit tests for adaptive batch-shape policy."""

import pytest

from repro.engine import BatchPolicy
from repro.errors import BufferBudgetError


class FakeCalibration:
    """Duck-typed stand-in for core.calibration.CalibrationReport."""

    def __init__(self, gemm_per_dim_element: float):
        self.gemm_per_dim_element = gemm_per_dim_element


class TestAdaptiveEdge:
    def test_no_measurement_means_no_edge(self):
        assert BatchPolicy().adaptive_edge(100) is None

    def test_edge_targets_block_time(self):
        # 1e-9 s per dim-element, 100-D, 0.02 s target -> 2e5 cells.
        policy = BatchPolicy(
            gemm_seconds_per_fma=1e-9, target_block_seconds=0.02
        )
        edge = policy.adaptive_edge(100)
        assert edge is not None
        assert policy.min_edge <= edge <= policy.max_edge
        # The edge^2 block should take roughly the target time.
        assert edge * edge * 100 * 1e-9 == pytest.approx(0.02, rel=0.1)

    def test_edge_clamped(self):
        fast = BatchPolicy(gemm_seconds_per_fma=1e-15)
        assert fast.adaptive_edge(1) == fast.max_edge
        slow = BatchPolicy(gemm_seconds_per_fma=1.0)
        assert slow.adaptive_edge(1024) == slow.min_edge

    def test_from_calibration(self):
        policy = BatchPolicy.from_calibration(
            FakeCalibration(2e-9), buffer_budget_bytes=1 << 20
        )
        assert policy.gemm_seconds_per_fma == 2e-9
        assert policy.buffer_budget_bytes == 1 << 20


class TestResolve:
    def test_defaults_to_full_matrix(self):
        assert BatchPolicy().resolve(100, 200, 8) == (100, 200)

    def test_explicit_batches_clamped_to_inputs(self):
        assert BatchPolicy().resolve(
            10, 10, 8, batch_left=50, batch_right=3
        ) == (10, 3)

    def test_budget_square(self):
        bl, br = BatchPolicy().resolve(
            1000, 1000, 8, buffer_budget_bytes=4 * 10_000
        )
        assert bl * br <= 10_000
        assert bl == br == 100

    def test_budget_below_one_cell(self):
        with pytest.raises(BufferBudgetError, match="FP32 cell"):
            BatchPolicy().resolve(10, 10, 8, buffer_budget_bytes=2)

    def test_empty_relations(self):
        assert BatchPolicy().resolve(0, 5, 8) == (1, 5)
        assert BatchPolicy().resolve(5, 0, 8) == (5, 1)
        assert BatchPolicy().resolve(0, 0, 8) == (1, 1)

    def test_calibrated_edge_seeds_shape(self):
        policy = BatchPolicy(
            gemm_seconds_per_fma=1e-9, target_block_seconds=0.02
        )
        bl, br = policy.resolve(100_000, 100_000, 100)
        edge = policy.adaptive_edge(100)
        assert (bl, br) == (edge, edge)

    def test_derived_right_edge_capped_by_calibrated_edge(self):
        """A huge budget must not inflate batch_right past the time-target
        edge (one wide block would defeat work stealing)."""
        policy = BatchPolicy(
            buffer_budget_bytes=1 << 30, gemm_seconds_per_fma=3e-9
        )
        edge = policy.adaptive_edge(100)
        bl, br = policy.resolve(100_000, 1_000_000, 100)
        assert bl == edge and br <= edge

    def test_budget_caps_calibrated_edge(self):
        policy = BatchPolicy(
            gemm_seconds_per_fma=1e-12, buffer_budget_bytes=4 * 10_000
        )
        bl, br = policy.resolve(100_000, 100_000, 100)
        assert bl * br <= 10_000

    def test_reserve_shrinks_dense_block(self):
        plain = BatchPolicy().resolve(
            1000, 1000, 8, buffer_budget_bytes=40_000
        )
        reserved = BatchPolicy().resolve(
            1000, 1000, 8, buffer_budget_bytes=40_000,
            reserve_bytes_per_left_row=36,
        )
        assert reserved[0] * reserved[1] < plain[0] * plain[1]
        # Dense block plus reserved state stays within the budget.
        bl, br = reserved
        assert bl * br * 4 + bl * 36 <= 40_000

    def test_reserve_too_large_for_budget(self):
        with pytest.raises(BufferBudgetError):
            BatchPolicy().resolve(
                1000, 1000, 8, buffer_budget_bytes=64,
                reserve_bytes_per_left_row=1 << 20,
            )

    def test_explicit_sizes_never_budget_capped(self):
        """A caller pinning both edges (mini-batch ablations) gets exactly
        those edges even when they exceed the budget."""
        policy = BatchPolicy(buffer_budget_bytes=4 * 100)
        assert policy.resolve(
            5000, 5000, 8, batch_left=2000, batch_right=2000
        ) == (2000, 2000)

    def test_single_explicit_edge_kept_other_derived(self):
        bl, br = BatchPolicy().resolve(
            1000, 1000, 8, batch_left=50, buffer_budget_bytes=4 * 1000
        )
        assert bl == 50
        assert br == 1000 // 50  # remaining budget cells per left row

    def test_instance_budget_used_when_not_overridden(self):
        policy = BatchPolicy(buffer_budget_bytes=4 * 100)
        bl, br = policy.resolve(1000, 1000, 8)
        assert bl * br <= 100
