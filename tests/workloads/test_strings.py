"""Unit tests for the dirty-string workload."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import generate_dirty_strings


@pytest.fixture(scope="module")
def workload():
    return generate_dirty_strings(n_feed=200, seed=95)


class TestStructure:
    def test_sizes(self, workload):
        assert workload.feed.num_rows == 200
        assert workload.catalog.num_rows > 0
        assert len(workload.truth) == 200
        assert len(workload.kinds) == 200

    def test_truth_ids_valid(self, workload):
        n_words = workload.catalog.num_rows
        assert all(0 <= v < n_words for v in workload.truth.values())

    def test_feed_schema(self, workload):
        assert workload.feed.schema.names == ("id", "text", "day", "views")

    def test_kinds_vocabulary(self, workload):
        assert set(workload.kinds.values()) <= {
            "exact", "misspelled", "plural", "synonym",
        }

    def test_corruption_rates_validated(self):
        with pytest.raises(WorkloadError):
            generate_dirty_strings(
                misspelling_rate=0.5, plural_rate=0.5, synonym_rate=0.5
            )


class TestGroundTruth:
    def test_exact_rows_match_catalog(self, workload):
        words = workload.catalog.array("word").tolist()
        for feed_id, kind in workload.kinds.items():
            if kind == "exact":
                text = workload.feed.array("text")[feed_id]
                assert text == words[workload.truth[feed_id]]

    def test_synonym_rows_same_topic_word(self, workload):
        words = workload.catalog.array("word").tolist()
        for feed_id, kind in workload.kinds.items():
            if kind == "synonym":
                text = workload.feed.array("text")[feed_id]
                assert text == words[workload.truth[feed_id]]

    def test_deterministic(self):
        a = generate_dirty_strings(n_feed=30, seed=96)
        b = generate_dirty_strings(n_feed=30, seed=96)
        assert a.feed.array("text").tolist() == b.feed.array("text").tolist()

    def test_all_kinds_present(self, workload):
        assert set(workload.kinds.values()) == {
            "exact", "misspelled", "plural", "synonym",
        }
