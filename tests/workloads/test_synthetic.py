"""Unit tests for synthetic vector workloads."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.vector import l2_norms
from repro.workloads import (
    clustered_vectors,
    paired_relations,
    random_vectors,
    unit_vectors,
)


class TestRandomVectors:
    def test_shape_and_dtype(self):
        v = random_vectors(10, 4, seed=1)
        assert v.shape == (10, 4)
        assert v.dtype == np.float32

    def test_seeded_determinism(self):
        assert np.allclose(random_vectors(5, 3, seed=2), random_vectors(5, 3, seed=2))

    def test_stream_determinism(self):
        a = random_vectors(5, 3, stream="x")
        b = random_vectors(5, 3, stream="x")
        c = random_vectors(5, 3, stream="y")
        assert np.allclose(a, b)
        assert not np.allclose(a, c)

    def test_invalid_shape(self):
        with pytest.raises(WorkloadError):
            random_vectors(-1, 4)
        with pytest.raises(WorkloadError):
            random_vectors(4, 0)


class TestUnitVectors:
    def test_normalized(self):
        v = unit_vectors(20, 6, seed=3)
        assert np.allclose(l2_norms(v), 1.0, atol=1e-5)


class TestClusteredVectors:
    def test_labels_shape(self):
        v, labels = clustered_vectors(100, 8, n_clusters=4, seed=4)
        assert v.shape == (100, 8)
        assert labels.shape == (100,)
        assert set(labels.tolist()) <= set(range(4))

    def test_intra_cluster_similarity_higher(self):
        v, labels = clustered_vectors(200, 16, n_clusters=4, noise=0.1, seed=5)
        sims = v @ v.T
        same = sims[labels[:, None] == labels[None, :]]
        diff = sims[labels[:, None] != labels[None, :]]
        assert same.mean() > diff.mean() + 0.3

    def test_validation(self):
        with pytest.raises(WorkloadError):
            clustered_vectors(10, 4, n_clusters=0)
        with pytest.raises(WorkloadError):
            clustered_vectors(10, 4, noise=-1)


class TestPairedRelations:
    def test_ground_truth_near_duplicates(self):
        left, right, truth = paired_relations(
            50, 80, 16, overlap=0.2, noise=0.01, seed=6
        )
        assert len(truth) == 10
        for li, ri in truth:
            assert float(left[li] @ right[ri]) > 0.95

    def test_non_duplicates_far(self):
        left, right, truth = paired_relations(
            50, 80, 16, overlap=0.1, noise=0.01, seed=7
        )
        dup_left = {li for li, _ in truth}
        non_dup = [i for i in range(50) if i not in dup_left]
        sims = left[non_dup] @ right.T
        assert sims.max() < 0.95

    def test_zero_overlap(self):
        _, _, truth = paired_relations(10, 10, 4, overlap=0.0, seed=8)
        assert truth == set()

    def test_overlap_validation(self):
        with pytest.raises(WorkloadError):
            paired_relations(10, 10, 4, overlap=1.5)
