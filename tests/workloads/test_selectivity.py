"""Unit tests for selectivity-controlled workloads."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    SEL_ATTR,
    filter_bitmap,
    selectivity_predicate,
    selectivity_values,
    vector_relation,
)


class TestSelectivityValues:
    def test_exact_fractions(self):
        values = selectivity_values(1000, seed=1)
        for pct in (10, 25, 50, 90):
            assert (values < pct).mean() == pytest.approx(pct / 100)

    def test_range(self):
        values = selectivity_values(100, seed=2)
        assert values.min() >= 0.0
        assert values.max() < 100.0

    def test_deterministic(self):
        assert np.allclose(
            selectivity_values(50, seed=3), selectivity_values(50, seed=3)
        )

    def test_negative_n(self):
        with pytest.raises(WorkloadError):
            selectivity_values(-1)


class TestVectorRelation:
    def test_schema(self):
        t = vector_relation(100, 8, seed=4)
        assert t.schema.names == ("id", SEL_ATTR, "vec")
        assert t.num_rows == 100
        assert t.array("vec").shape == (100, 8)

    def test_ids_sequential(self):
        t = vector_relation(10, 4, seed=5)
        assert t.array("id").tolist() == list(range(10))


class TestPredicates:
    def test_predicate_selectivity(self):
        t = vector_relation(500, 4, seed=6)
        for pct in (5, 30, 75):
            bitmap = filter_bitmap(t, pct)
            assert bitmap.mean() == pytest.approx(pct / 100, abs=0.005)

    def test_extremes(self):
        t = vector_relation(100, 4, seed=7)
        assert filter_bitmap(t, 0).sum() == 0
        assert filter_bitmap(t, 100).sum() == 100

    def test_validation(self):
        with pytest.raises(WorkloadError):
            selectivity_predicate(101)
        with pytest.raises(WorkloadError):
            selectivity_predicate(-1)
