"""Unit tests for table persistence."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational import DataType, Field, Schema, Table
from repro.relational.io import (
    load_table,
    save_table,
    schema_from_json,
    schema_to_json,
)
from repro.workloads import unit_vectors


@pytest.fixture()
def mixed_table():
    schema = Schema.of(
        Field("id", DataType.INT64),
        Field("name", DataType.STRING),
        Field("score", DataType.FLOAT64),
        Field("day", DataType.DATE),
        Field("vec", DataType.TENSOR, dim=6),
    )
    return Table.from_arrays(
        schema,
        {
            "id": np.arange(10, dtype=np.int64),
            "name": [f"row-{i}" for i in range(10)],
            "score": np.linspace(0, 1, 10),
            "day": np.arange(19000, 19010, dtype=np.int64),
            "vec": unit_vectors(10, 6, seed=501),
        },
    )


class TestSchemaJson:
    def test_roundtrip(self, mixed_table):
        payload = schema_to_json(mixed_table.schema)
        assert schema_from_json(payload) == mixed_table.schema

    def test_malformed_payload(self):
        with pytest.raises(SchemaError):
            schema_from_json("{}")
        with pytest.raises(SchemaError):
            schema_from_json('{"fields": [{"name": "x", "dtype": "nope"}]}')


class TestTableRoundTrip:
    def test_full_roundtrip(self, mixed_table, tmp_path):
        path = save_table(mixed_table, tmp_path / "t")
        loaded = load_table(path)
        assert loaded.schema == mixed_table.schema
        assert loaded.array("id").tolist() == mixed_table.array("id").tolist()
        assert loaded.array("name").tolist() == mixed_table.array("name").tolist()
        assert np.allclose(loaded.array("vec"), mixed_table.array("vec"))
        assert loaded.array("day").tolist() == mixed_table.array("day").tolist()

    def test_suffix_added(self, mixed_table, tmp_path):
        path = save_table(mixed_table, tmp_path / "plain")
        assert path.suffix == ".npz"

    def test_load_by_basename(self, mixed_table, tmp_path):
        save_table(mixed_table, tmp_path / "t")
        loaded = load_table(tmp_path / "t")
        assert loaded.num_rows == 10

    def test_empty_table(self, mixed_table, tmp_path):
        empty = mixed_table.head(0)
        path = save_table(empty, tmp_path / "empty")
        loaded = load_table(path)
        assert loaded.num_rows == 0
        assert loaded.schema == empty.schema

    def test_not_an_archive(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, x=np.ones(3))
        with pytest.raises(SchemaError, match="not a repro table"):
            load_table(bogus)

    def test_reserved_column_name(self, tmp_path):
        schema = Schema.of(Field("__schema__", DataType.INT64))
        table = Table.from_arrays(schema, {"__schema__": np.ones(2, dtype=np.int64)})
        with pytest.raises(SchemaError, match="reserved"):
            save_table(table, tmp_path / "bad")

    def test_joinable_after_roundtrip(self, mixed_table, tmp_path):
        """Persisted tensor columns feed the E-join unchanged."""
        from repro.core import TopKCondition, tensor_join

        path = save_table(mixed_table, tmp_path / "t")
        loaded = load_table(path)
        before = tensor_join(
            mixed_table.array("vec"), mixed_table.array("vec"), TopKCondition(2)
        )
        after = tensor_join(
            loaded.array("vec"), loaded.array("vec"), TopKCondition(2)
        )
        assert before.pairs() == after.pairs()
