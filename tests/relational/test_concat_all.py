"""Tests for n-ary table/column concatenation and O(n) operator output."""

import numpy as np
import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.relational import Column, DataType, Field, Schema, Table
from repro.relational.operators import Scan


@pytest.fixture()
def schema() -> Schema:
    return Schema.of(
        Field("id", DataType.INT64),
        Field("name", DataType.STRING),
        Field("emb", DataType.TENSOR, dim=4),
    )


def make_table(schema: Schema, start: int, n: int) -> Table:
    return Table.from_arrays(
        schema,
        {
            "id": np.arange(start, start + n),
            "name": [f"row{start + i}" for i in range(n)],
            "emb": np.full((n, 4), float(start), dtype=np.float32),
        },
    )


class TestTableConcatAll:
    def test_matches_pairwise_chain(self, schema):
        parts = [make_table(schema, i * 10, 3 + i) for i in range(5)]
        chained = parts[0]
        for part in parts[1:]:
            chained = chained.concat_rows(part)
        merged = Table.concat_all(parts)
        assert merged.num_rows == chained.num_rows
        assert merged.array("id").tolist() == chained.array("id").tolist()
        assert merged.array("name").tolist() == chained.array("name").tolist()
        np.testing.assert_array_equal(
            merged.array("emb"), chained.array("emb")
        )

    def test_single_table_is_identity(self, schema):
        table = make_table(schema, 0, 4)
        assert Table.concat_all([table]) is table

    def test_empty_list_rejected(self):
        with pytest.raises(SchemaError, match="at least one"):
            Table.concat_all([])

    def test_schema_mismatch_rejected(self, schema):
        table = make_table(schema, 0, 2)
        other = table.rename({"id": "key"})
        with pytest.raises(SchemaError, match="cannot concat"):
            Table.concat_all([table, other])

    def test_concat_rows_delegates(self, schema):
        a, b = make_table(schema, 0, 2), make_table(schema, 5, 3)
        out = a.concat_rows(b)
        assert out.num_rows == 5
        assert out.array("id").tolist() == [0, 1, 5, 6, 7]


class TestColumnConcatAll:
    def test_matches_pairwise(self):
        field = Field("x", DataType.FLOAT32)
        cols = [
            Column(field, np.full(i + 1, float(i), dtype=np.float32))
            for i in range(4)
        ]
        merged = Column.concat_all(cols)
        assert len(merged) == sum(len(c) for c in cols)

    def test_type_mismatch_rejected(self):
        a = Column(Field("x", DataType.FLOAT32), np.zeros(2, np.float32))
        b = Column(Field("x", DataType.INT64), np.zeros(2, np.int64))
        with pytest.raises(TypeMismatchError):
            Column.concat_all([a, b])

    def test_empty_rejected(self):
        with pytest.raises(TypeMismatchError, match="at least one"):
            Column.concat_all([])


class TestOperatorExecute:
    def test_execute_materializes_all_batches_once(self, schema):
        table = make_table(schema, 0, 1000)
        out = Scan(table, batch_size=64).execute()
        assert out.num_rows == 1000
        assert out.array("id").tolist() == list(range(1000))

    def test_execute_empty_input(self, schema):
        out = Scan(Table.empty(schema)).execute()
        assert out.num_rows == 0
        assert out.schema.names == schema.names
