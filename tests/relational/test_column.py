"""Unit tests for typed columnar storage."""

from datetime import date, datetime

import numpy as np
import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.relational import Column, DataType, Field, date_to_days, days_to_date


class TestDateConversion:
    def test_roundtrip(self):
        d = date(2023, 12, 2)
        assert days_to_date(date_to_days(d)) == d

    def test_epoch(self):
        assert date_to_days(date(1970, 1, 1)) == 0

    def test_from_string(self):
        assert date_to_days("2023-01-02") == date_to_days(date(2023, 1, 2))

    def test_from_datetime(self):
        assert date_to_days(datetime(2023, 1, 2, 15, 30)) == date_to_days(
            date(2023, 1, 2)
        )

    def test_from_int_passthrough(self):
        assert date_to_days(1234) == 1234

    def test_invalid_raises(self):
        with pytest.raises(TypeMismatchError):
            date_to_days(3.14)


class TestColumnConstruction:
    def test_int_column(self):
        col = Column(Field("x", DataType.INT64), [1, 2, 3])
        assert col.data.dtype == np.int64
        assert len(col) == 3

    def test_float_widening(self):
        col = Column(Field("x", DataType.FLOAT64), [1, 2, 3])
        assert col.data.dtype == np.float64

    def test_string_column_object_backed(self):
        col = Column(Field("s", DataType.STRING), ["a", "bb"])
        assert col.data.dtype == object
        assert col.data[1] == "bb"

    def test_date_column_from_dates(self):
        col = Column(Field("d", DataType.DATE), [date(2020, 1, 1), "2020-01-02"])
        assert col.data[1] - col.data[0] == 1

    def test_tensor_column_shape(self):
        data = np.zeros((5, 3), dtype=np.float32)
        col = Column(Field("v", DataType.TENSOR, dim=3), data)
        assert col.data.shape == (5, 3)

    def test_tensor_wrong_dim_rejected(self):
        with pytest.raises(TypeMismatchError, match="dim=3"):
            Column(Field("v", DataType.TENSOR, dim=3), np.zeros((5, 4)))

    def test_tensor_1d_rejected(self):
        with pytest.raises(TypeMismatchError, match="2-D"):
            Column(Field("v", DataType.TENSOR, dim=3), np.zeros(5))

    def test_scalar_2d_rejected(self):
        with pytest.raises(TypeMismatchError, match="1-D"):
            Column(Field("x", DataType.INT64), np.zeros((2, 2), dtype=np.int64))

    def test_from_values_helper(self):
        col = Column.from_values("v", DataType.TENSOR, np.ones((2, 2)), dim=2)
        assert col.name == "v"


class TestColumnOps:
    def make(self) -> Column:
        return Column(Field("x", DataType.INT64), [10, 20, 30, 40])

    def test_take(self):
        assert self.make().take(np.asarray([2, 0])).data.tolist() == [30, 10]

    def test_mask(self):
        col = self.make().mask(np.asarray([True, False, True, False]))
        assert col.data.tolist() == [10, 30]

    def test_mask_wrong_length(self):
        with pytest.raises(SchemaError, match="bitmap length"):
            self.make().mask(np.asarray([True]))

    def test_rename_preserves_data(self):
        col = self.make().rename("y")
        assert col.name == "y"
        assert col.data.tolist() == [10, 20, 30, 40]

    def test_concat(self):
        merged = self.make().concat(self.make())
        assert len(merged) == 8

    def test_concat_type_mismatch(self):
        other = Column(Field("x", DataType.FLOAT64), [1.0])
        with pytest.raises(TypeMismatchError):
            self.make().concat(other)

    def test_nbytes_numeric(self):
        assert self.make().nbytes() == 4 * 8

    def test_nbytes_strings_positive(self):
        col = Column(Field("s", DataType.STRING), ["abc", "de"])
        assert col.nbytes() > 0

    def test_to_pylist_dates_decoded(self):
        col = Column(Field("d", DataType.DATE), [date(2021, 5, 5)])
        assert col.to_pylist() == [date(2021, 5, 5)]

    def test_to_pylist_tensor_rows(self):
        col = Column(Field("v", DataType.TENSOR, dim=2), np.ones((2, 2)))
        out = col.to_pylist()
        assert len(out) == 2
        assert out[0].shape == (2,)
