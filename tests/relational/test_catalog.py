"""Unit tests for the table catalog and statistics."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational import Catalog, ColumnStats, DataType, Field, Schema, Table


@pytest.fixture()
def catalog(people_table):
    cat = Catalog()
    cat.register("people", people_table)
    return cat


class TestCatalog:
    def test_register_and_get(self, catalog, people_table):
        assert catalog.get("people") is people_table
        assert "people" in catalog
        assert catalog.names() == ["people"]

    def test_duplicate_register(self, catalog, people_table):
        with pytest.raises(SchemaError, match="already registered"):
            catalog.register("people", people_table)
        catalog.register("people", people_table, replace=True)

    def test_unknown_table(self, catalog):
        with pytest.raises(SchemaError, match="unknown table"):
            catalog.get("nope")

    def test_drop(self, catalog):
        catalog.drop("people")
        assert "people" not in catalog
        with pytest.raises(SchemaError):
            catalog.drop("people")

    def test_cardinality(self, catalog):
        assert catalog.cardinality("people") == 5


class TestColumnStats:
    def test_numeric_stats(self, catalog):
        stats = catalog.entry("people").column_stats("age")
        assert stats.min_value == 29
        assert stats.max_value == 52
        assert stats.n_distinct == 4

    def test_string_stats(self, catalog):
        stats = catalog.entry("people").column_stats("name")
        assert stats.n_distinct == 5
        assert stats.min_value is None

    def test_tensor_stats(self):
        schema = Schema.of(Field("v", DataType.TENSOR, dim=2))
        t = Table.from_arrays(schema, {"v": np.zeros((4, 2))})
        stats = ColumnStats.compute(t, "v")
        assert stats.n_distinct == 4

    def test_empty_column(self):
        schema = Schema.of(Field("x", DataType.INT64))
        stats = ColumnStats.compute(Table.empty(schema), "x")
        assert stats.n_distinct == 0

    def test_stats_cached(self, catalog):
        entry = catalog.entry("people")
        a = entry.column_stats("age")
        assert entry.column_stats("age") is a


class TestRangeSelectivity:
    def test_full_range(self):
        stats = ColumnStats(n_distinct=10, min_value=0, max_value=100)
        assert stats.estimate_range_selectivity(None, None) == 1.0

    def test_half_range(self):
        stats = ColumnStats(n_distinct=10, min_value=0, max_value=100)
        assert stats.estimate_range_selectivity(0, 50) == pytest.approx(0.5)

    def test_disjoint_range(self):
        stats = ColumnStats(n_distinct=10, min_value=0, max_value=100)
        assert stats.estimate_range_selectivity(200, 300) == 0.0

    def test_no_stats_means_one(self):
        stats = ColumnStats(n_distinct=10)
        assert stats.estimate_range_selectivity(0, 1) == 1.0

    def test_degenerate_span(self):
        stats = ColumnStats(n_distinct=1, min_value=5, max_value=5)
        assert stats.estimate_range_selectivity(0, 10) == 1.0
