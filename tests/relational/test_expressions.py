"""Unit tests for expression evaluation."""

from datetime import date

import numpy as np
import pytest

from repro.errors import ExpressionError
from repro.relational import Col, DataType, Field, Schema, Table, selectivity
from repro.relational.expressions import (
    Literal,
    StringPredicate,
    lift,
    validate_boolean,
)


@pytest.fixture()
def table(people_table):
    return people_table


class TestComparisons:
    @pytest.mark.parametrize(
        "expr_fn,expected",
        [
            (lambda: Col("age") > 36, [False, True, False, False, True]),
            (lambda: Col("age") >= 36, [True, True, False, True, True]),
            (lambda: Col("age") < 36, [False, False, True, False, False]),
            (lambda: Col("age") <= 36, [True, False, True, True, False]),
            (lambda: Col("age") == 36, [True, False, False, True, False]),
            (lambda: Col("age") != 36, [False, True, True, False, True]),
        ],
    )
    def test_numeric_comparisons(self, table, expr_fn, expected):
        assert expr_fn().evaluate(table).tolist() == expected

    def test_column_vs_column(self, table):
        bitmap = (Col("age") > Col("score")).evaluate(table)
        assert bitmap.all()

    def test_string_equality(self, table):
        bitmap = (Col("name") == "bob").evaluate(table)
        assert bitmap.tolist() == [False, True, False, False, False]

    def test_columns_tracked(self):
        expr = (Col("a") > 1) & (Col("b") == Col("c"))
        assert expr.columns() == {"a", "b", "c"}


class TestDates:
    def make(self):
        schema = Schema.of(Field("d", DataType.DATE))
        return Table.from_arrays(
            schema, {"d": [date(2023, 1, 1), date(2023, 6, 1), date(2023, 12, 1)]}
        )

    def test_date_literal_comparison(self):
        bitmap = (Col("d") > date(2023, 3, 1)).evaluate(self.make())
        assert bitmap.tolist() == [False, True, True]

    def test_between(self):
        expr = Col("d").between(date(2023, 2, 1), date(2023, 7, 1))
        assert expr.evaluate(self.make()).tolist() == [False, True, False]

    def test_in_list_with_dates(self):
        expr = Col("d").is_in([date(2023, 1, 1)])
        assert expr.evaluate(self.make()).tolist() == [True, False, False]


class TestBooleanOps:
    def test_and_or_not(self, table):
        both = (Col("age") > 30) & (Col("score") > 7)
        assert both.evaluate(table).tolist() == [True, True, False, False, False]
        either = (Col("age") > 50) | (Col("score") > 9)
        assert either.evaluate(table).tolist() == [True, False, False, False, True]
        negated = ~(Col("age") > 30)
        assert negated.evaluate(table).tolist() == [False, False, True, False, False]


class TestArithmetic:
    def test_add_mul(self, table):
        values = ((Col("age") * 2) + 1).evaluate(table)
        assert values[0] == 73

    def test_div_sub(self, table):
        values = ((Col("score") - 1) / 2).evaluate(table)
        assert values[2] == pytest.approx(3.5)

    def test_arith_in_comparison(self, table):
        bitmap = ((Col("age") + Col("score")) > 48).evaluate(table)
        assert bitmap.tolist() == [False, True, False, False, True]


class TestInList:
    def test_numeric(self, table):
        bitmap = Col("age").is_in([29, 52]).evaluate(table)
        assert bitmap.tolist() == [False, False, True, False, True]

    def test_strings(self, table):
        bitmap = Col("name").is_in(["ada", "eve"]).evaluate(table)
        assert bitmap.tolist() == [True, False, False, False, True]


class TestStringPredicate:
    def test_prefix_suffix_contains(self, table):
        assert StringPredicate("prefix", Col("name"), "a").evaluate(table).tolist() == [
            True, False, False, False, False,
        ]
        assert StringPredicate("suffix", Col("name"), "b").evaluate(table).tolist() == [
            False, True, False, False, False,
        ]
        assert StringPredicate("contains", Col("name"), "v").evaluate(table).tolist() == [
            False, False, False, False, True,
        ]

    def test_unknown_kind(self):
        with pytest.raises(ExpressionError):
            StringPredicate("regex", Col("name"), "a")


class TestValidation:
    def test_lift_wraps_plain_values(self):
        assert isinstance(lift(5), Literal)
        col = Col("x")
        assert lift(col) is col

    def test_validate_boolean_rejects_numeric(self, table):
        with pytest.raises(ExpressionError, match="expected bool"):
            validate_boolean(Col("age") + 1, table)

    def test_validate_boolean_accepts_predicates(self, table):
        bitmap = validate_boolean(Col("age") > 0, table)
        assert bitmap.dtype == np.bool_

    def test_selectivity(self, table):
        assert selectivity(Col("age") > 36, table) == pytest.approx(0.4)

    def test_selectivity_empty_table(self, table):
        empty = table.head(0)
        assert selectivity(Col("age") > 0, empty) == 0.0

    def test_unknown_operators_rejected(self):
        from repro.relational.expressions import Arithmetic, BooleanOp, Comparison

        with pytest.raises(ExpressionError):
            Comparison("<>", Col("a"), Literal(1))
        with pytest.raises(ExpressionError):
            BooleanOp("xor", Col("a") > 1, Col("b") > 1)
        with pytest.raises(ExpressionError):
            Arithmetic("%", Col("a"), Literal(2))
