"""Unit tests for physical relational operators."""

import numpy as np
import pytest

from repro.errors import ExpressionError, SchemaError, TypeMismatchError
from repro.relational import Col, DataType, Field, Schema, Table
from repro.relational.operators import (
    AggSpec,
    Aggregate,
    Filter,
    HashJoin,
    Limit,
    NestedLoopJoin,
    Project,
    Scan,
    Sort,
)


@pytest.fixture()
def orders() -> Table:
    schema = Schema.of(
        Field("order_id", DataType.INT64),
        Field("customer", DataType.INT64),
        Field("amount", DataType.FLOAT64),
    )
    return Table.from_arrays(
        schema,
        {
            "order_id": np.arange(8),
            "customer": np.asarray([1, 2, 1, 3, 2, 1, 3, 9]),
            "amount": np.asarray([10.0, 20.0, 5.0, 7.5, 2.5, 40.0, 1.0, 99.0]),
        },
    )


@pytest.fixture()
def customers() -> Table:
    schema = Schema.of(
        Field("customer", DataType.INT64),
        Field("cname", DataType.STRING),
    )
    return Table.from_arrays(
        schema, {"customer": np.asarray([1, 2, 3]), "cname": ["x", "y", "z"]}
    )


class TestScan:
    def test_full_scan(self, orders):
        assert Scan(orders).execute().num_rows == 8

    def test_batching(self, orders):
        scan = Scan(orders, batch_size=3)
        batches = list(scan.batches())
        assert [b.num_rows for b in batches] == [3, 3, 2]
        assert scan.stats.batches == 3

    def test_invalid_batch_size(self, orders):
        with pytest.raises(ValueError):
            Scan(orders, batch_size=0)

    def test_explain(self, orders):
        assert "Scan(rows=8" in Scan(orders).explain()


class TestFilter:
    def test_filter_rows(self, orders):
        op = Filter(Scan(orders), Col("amount") > 9)
        out = op.execute()
        assert out.num_rows == 4
        assert op.stats.rows_in == 8
        assert op.stats.rows_out == 4

    def test_filter_all_out(self, orders):
        out = Filter(Scan(orders), Col("amount") > 1000).execute()
        assert out.num_rows == 0
        # Schema is preserved even for empty results.
        assert out.schema.names == orders.schema.names

    def test_filter_rejects_non_boolean(self, orders):
        with pytest.raises(ExpressionError):
            Filter(Scan(orders), Col("amount") + 1).execute()

    def test_filter_across_batches(self, orders):
        out = Filter(Scan(orders, batch_size=2), Col("customer") == 1).execute()
        assert out.array("order_id").tolist() == [0, 2, 5]


class TestProject:
    def test_select_columns(self, orders):
        out = Project(Scan(orders), ["amount"]).execute()
        assert out.schema.names == ("amount",)

    def test_computed_column(self, orders):
        out = Project(
            Scan(orders), ["order_id"], computed={"double": Col("amount") * 2}
        ).execute()
        assert out.array("double")[1] == 40.0

    def test_computed_name_collision(self, orders):
        with pytest.raises(SchemaError, match="collide"):
            Project(Scan(orders), ["amount"], computed={"amount": Col("amount")})


class TestHashJoin:
    def test_matches_expected_pairs(self, orders, customers):
        join = HashJoin(Scan(orders), Scan(customers), "customer", "customer")
        out = join.execute()
        # customer 9 has no match; inner join drops it.
        assert out.num_rows == 7
        assert set(out.schema.names) >= {"order_id", "cname"}

    def test_overlapping_names_prefixed(self, orders, customers):
        out = HashJoin(
            Scan(orders), Scan(customers), "customer", "customer"
        ).execute()
        assert "l_customer" in out.schema and "r_customer" in out.schema

    def test_tensor_key_rejected(self):
        schema = Schema.of(Field("v", DataType.TENSOR, dim=2))
        t = Table.from_arrays(schema, {"v": np.zeros((2, 2))})
        with pytest.raises(TypeMismatchError, match="E-join"):
            HashJoin(Scan(t), Scan(t), "v", "v")

    def test_agrees_with_nlj(self, orders, customers):
        hj = HashJoin(
            Scan(orders), Scan(customers), "customer", "customer"
        ).execute()
        nlj = NestedLoopJoin(
            Scan(orders),
            Scan(customers),
            lambda pairs: pairs.array("l_customer") == pairs.array("r_customer"),
        ).execute()
        key = lambda t: sorted(
            zip(t.array("order_id").tolist(), t.array("cname").tolist())
        )
        assert key(hj) == key(nlj)


class TestNestedLoopJoin:
    def test_theta_join(self, orders, customers):
        out = NestedLoopJoin(
            Scan(orders),
            Scan(customers),
            lambda pairs: pairs.array("amount") > 20,
        ).execute()
        # 2 orders above 20, joined with all 3 customers.
        assert out.num_rows == 6

    def test_empty_inner(self, orders, customers):
        out = NestedLoopJoin(
            Scan(orders),
            Scan(customers.head(0)),
            lambda pairs: np.ones(pairs.num_rows, dtype=bool),
        ).execute()
        assert out.num_rows == 0


class TestAggregate:
    def test_group_by_sum(self, orders):
        out = Aggregate(
            Scan(orders),
            ["customer"],
            [AggSpec("sum", "amount", "total"), AggSpec("count", None, "n")],
        ).execute()
        rows = {r["customer"]: r for r in out.to_dicts()}
        assert rows[1]["total"] == 55.0
        assert rows[1]["n"] == 3

    def test_global_aggregate(self, orders):
        out = Aggregate(
            Scan(orders), [], [AggSpec("max", "amount", "mx")]
        ).execute()
        assert out.array("mx")[0] == 99.0

    def test_mean_min(self, orders):
        out = Aggregate(
            Scan(orders),
            [],
            [AggSpec("mean", "amount", "avg"), AggSpec("min", "amount", "mn")],
        ).execute()
        assert out.array("mn")[0] == 1.0
        assert out.array("avg")[0] == pytest.approx(np.mean(orders.array("amount")))

    def test_unknown_agg_rejected(self):
        with pytest.raises(ExpressionError):
            AggSpec("median", "x", "m")

    def test_count_star_only(self):
        with pytest.raises(ExpressionError, match="requires a column"):
            AggSpec("sum", None, "s")

    def test_requires_aggregates(self, orders):
        with pytest.raises(SchemaError):
            Aggregate(Scan(orders), ["customer"], [])


class TestSortLimit:
    def test_sort(self, orders):
        out = Sort(Scan(orders), "amount").execute()
        amounts = out.array("amount").tolist()
        assert amounts == sorted(amounts)

    def test_sort_unknown_key(self, orders):
        with pytest.raises(SchemaError):
            Sort(Scan(orders), "nope")

    def test_limit(self, orders):
        assert Limit(Scan(orders, batch_size=3), 5).execute().num_rows == 5

    def test_limit_zero(self, orders):
        assert Limit(Scan(orders), 0).execute().num_rows == 0

    def test_limit_negative(self, orders):
        with pytest.raises(ValueError):
            Limit(Scan(orders), -1)

    def test_composed_pipeline(self, orders):
        plan = Limit(
            Sort(Filter(Scan(orders), Col("amount") > 2), "amount", descending=True),
            2,
        )
        out = plan.execute()
        assert out.array("amount").tolist() == [99.0, 40.0]
        assert "Sort" in plan.explain() and "Filter" in plan.explain()
