"""Unit tests for the columnar Table."""

import numpy as np
import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.relational import Column, DataType, Field, Schema, Table


def make_table() -> Table:
    schema = Schema.of(
        Field("id", DataType.INT64),
        Field("name", DataType.STRING),
        Field("vec", DataType.TENSOR, dim=2),
    )
    return Table.from_arrays(
        schema,
        {
            "id": np.asarray([1, 2, 3]),
            "name": ["a", "b", "c"],
            "vec": np.arange(6, dtype=np.float32).reshape(3, 2),
        },
    )


class TestConstruction:
    def test_from_arrays(self):
        t = make_table()
        assert t.num_rows == 3
        assert t.array("vec").shape == (3, 2)

    def test_from_dicts(self, people_table):
        assert people_table.num_rows == 5
        assert people_table.array("name")[0] == "ada"

    def test_from_columns(self):
        t = Table.from_columns(
            [Column(Field("x", DataType.INT64), [1, 2])]
        )
        assert t.schema.names == ("x",)

    def test_empty(self):
        t = Table.empty(make_table().schema)
        assert t.num_rows == 0
        assert t.array("vec").shape == (0, 2)

    def test_ragged_columns_rejected(self):
        schema = Schema.of(Field("a", DataType.INT64), Field("b", DataType.INT64))
        with pytest.raises(SchemaError, match="ragged"):
            Table.from_arrays(schema, {"a": [1, 2], "b": [1]})

    def test_mismatched_schema_rejected(self):
        schema = Schema.of(Field("a", DataType.INT64))
        col = Column(Field("b", DataType.INT64), [1])
        with pytest.raises(SchemaError, match="do not match"):
            Table(schema, {"b": col})


class TestAccess:
    def test_row(self):
        row = make_table().row(1)
        assert row["id"] == 2
        assert row["name"] == "b"

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            make_table().row(5)

    def test_to_dicts_roundtrip(self, people_table):
        rows = people_table.to_dicts()
        rebuilt = Table.from_dicts(people_table.schema, rows)
        assert rebuilt.to_dicts() == rows

    def test_unknown_column(self):
        with pytest.raises(SchemaError, match="unknown column"):
            make_table().column("zzz")

    def test_nbytes_positive(self):
        assert make_table().nbytes() > 0

    def test_repr_mentions_types(self):
        assert "vec:tensor[2]" in repr(make_table())


class TestRowOps:
    def test_take_reorders(self):
        t = make_table().take(np.asarray([2, 0]))
        assert t.array("id").tolist() == [3, 1]

    def test_mask(self):
        t = make_table().mask(np.asarray([True, False, True]))
        assert t.array("name").tolist() == ["a", "c"]

    def test_slice_and_head(self):
        assert make_table().slice(1, 3).num_rows == 2
        assert make_table().head(2).num_rows == 2

    def test_slice_clamps(self):
        assert make_table().slice(2, 100).num_rows == 1


class TestColumnOps:
    def test_select(self):
        t = make_table().select(["name"])
        assert t.schema.names == ("name",)

    def test_with_column(self):
        extra = Column(Field("flag", DataType.BOOL), [True, False, True])
        t = make_table().with_column(extra)
        assert "flag" in t.schema

    def test_with_column_length_check(self):
        extra = Column(Field("flag", DataType.BOOL), [True])
        with pytest.raises(SchemaError, match="length"):
            make_table().with_column(extra)

    def test_with_column_duplicate(self):
        extra = Column(Field("id", DataType.INT64), [9, 9, 9])
        with pytest.raises(SchemaError, match="already exists"):
            make_table().with_column(extra)

    def test_drop(self):
        t = make_table().drop("name")
        assert "name" not in t.schema

    def test_rename(self):
        t = make_table().rename({"id": "key"})
        assert t.array("key").tolist() == [1, 2, 3]


class TestTableOps:
    def test_concat_rows(self):
        t = make_table().concat_rows(make_table())
        assert t.num_rows == 6

    def test_concat_rows_schema_mismatch(self):
        other = make_table().rename({"id": "key"})
        with pytest.raises(SchemaError):
            make_table().concat_rows(other)

    def test_zip_columns(self):
        t = make_table().zip_columns(make_table())
        assert t.num_rows == 3
        assert "l_id" in t.schema and "r_id" in t.schema

    def test_zip_columns_length_mismatch(self):
        with pytest.raises(SchemaError, match="lengths"):
            make_table().zip_columns(make_table().head(2))

    def test_sort_by_numeric(self, people_table):
        t = people_table.sort_by("age")
        assert t.array("age").tolist() == sorted(people_table.array("age"))

    def test_sort_by_descending(self, people_table):
        t = people_table.sort_by("score", descending=True)
        scores = t.array("score").tolist()
        assert scores == sorted(scores, reverse=True)

    def test_sort_by_string(self, people_table):
        t = people_table.sort_by("name")
        assert t.array("name")[0] == "ada"

    def test_sort_stability(self, people_table):
        # Two rows with age 36: original order (ada before dan) is kept.
        t = people_table.sort_by("age")
        names_36 = [r["name"] for r in t.to_dicts() if r["age"] == 36]
        assert names_36 == ["ada", "dan"]

    def test_sort_by_tensor_rejected(self):
        with pytest.raises(TypeMismatchError):
            make_table().sort_by("vec")
