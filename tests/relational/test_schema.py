"""Unit tests for schema definitions."""

import pytest

from repro.errors import SchemaError
from repro.relational import DataType, Field, Schema


class TestField:
    def test_basic_field(self):
        f = Field("x", DataType.INT64)
        assert f.name == "x"
        assert f.dim == 0

    def test_tensor_field_requires_dim(self):
        with pytest.raises(SchemaError, match="positive dim"):
            Field("v", DataType.TENSOR)

    def test_tensor_field_with_dim(self):
        f = Field("v", DataType.TENSOR, dim=32)
        assert f.dim == 32

    def test_non_tensor_rejects_dim(self):
        with pytest.raises(SchemaError, match="must not declare dim"):
            Field("x", DataType.INT64, dim=4)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError, match="non-empty"):
            Field("", DataType.INT64)

    def test_numpy_dtype_mapping(self):
        assert Field("x", DataType.FLOAT32).dtype.numpy_dtype == "float32"
        assert Field("d", DataType.DATE).dtype.numpy_dtype == "int64"

    def test_is_numeric(self):
        assert DataType.INT64.is_numeric
        assert DataType.DATE.is_numeric
        assert not DataType.STRING.is_numeric
        assert not DataType.TENSOR.is_numeric

    def test_is_context_rich(self):
        assert DataType.STRING.is_context_rich
        assert DataType.CONTEXT.is_context_rich
        assert not DataType.FLOAT64.is_context_rich


class TestSchema:
    def make(self) -> Schema:
        return Schema.of(
            Field("id", DataType.INT64),
            Field("name", DataType.STRING),
            Field("vec", DataType.TENSOR, dim=4),
        )

    def test_names_order(self):
        assert self.make().names == ("id", "name", "vec")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema.of(Field("x", DataType.INT64), Field("x", DataType.BOOL))

    def test_contains_and_len(self):
        s = self.make()
        assert "name" in s
        assert "missing" not in s
        assert len(s) == 3

    def test_field_lookup(self):
        s = self.make()
        assert s.field("vec").dim == 4
        with pytest.raises(SchemaError, match="unknown column"):
            s.field("nope")

    def test_index_of(self):
        s = self.make()
        assert s.index_of("name") == 1
        with pytest.raises(SchemaError):
            s.index_of("nope")

    def test_select_projection(self):
        s = self.make().select(["vec", "id"])
        assert s.names == ("vec", "id")

    def test_add_and_drop(self):
        s = self.make().add(Field("extra", DataType.BOOL))
        assert "extra" in s
        assert "extra" not in s.drop("extra")
        with pytest.raises(SchemaError, match="already exists"):
            s.add(Field("id", DataType.INT64))

    def test_drop_missing_raises(self):
        with pytest.raises(SchemaError):
            self.make().drop("nope")

    def test_rename(self):
        s = self.make().rename({"id": "key"})
        assert s.names == ("key", "name", "vec")
        with pytest.raises(SchemaError):
            self.make().rename({"nope": "x"})

    def test_concat_disjoint(self):
        a = Schema.of(Field("a", DataType.INT64))
        b = Schema.of(Field("b", DataType.INT64))
        assert a.concat(b).names == ("a", "b")

    def test_concat_overlap_needs_prefixes(self):
        a = Schema.of(Field("x", DataType.INT64))
        b = Schema.of(Field("x", DataType.INT64))
        with pytest.raises(SchemaError, match="overlap"):
            a.concat(b)
        merged = a.concat(b, prefixes=("l_", "r_"))
        assert merged.names == ("l_x", "r_x")

    def test_concat_prefix_only_applies_to_overlap(self):
        a = Schema.of(Field("x", DataType.INT64), Field("only_a", DataType.BOOL))
        b = Schema.of(Field("x", DataType.INT64), Field("only_b", DataType.BOOL))
        merged = a.concat(b, prefixes=("l_", "r_"))
        assert merged.names == ("l_x", "only_a", "r_x", "only_b")
