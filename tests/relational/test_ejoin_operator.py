"""Unit tests for the streaming E-join physical operator."""

import numpy as np
import pytest

from repro.core import ThresholdCondition, TopKCondition, tensor_join
from repro.embedding import HashingEmbedder
from repro.errors import SchemaError
from repro.relational import Col, DataType, Field, Schema, Table
from repro.relational.operators import EJoinOperator, Filter, Scan
from repro.workloads import generate_dirty_strings, unit_vectors


@pytest.fixture()
def tables():
    wl = generate_dirty_strings(n_feed=90, seed=301)
    return wl.feed, wl.catalog


@pytest.fixture()
def model():
    return HashingEmbedder(dim=24, seed=302)


class TestStreamingEJoin:
    def test_matches_bulk_tensor_join(self, tables, model):
        feed, words = tables
        op = EJoinOperator(
            Scan(feed, batch_size=16),
            Scan(words),
            "text",
            "word",
            model,
            TopKCondition(1),
        )
        out = op.execute()
        bulk = tensor_join(
            feed.array("text").tolist(),
            words.array("word").tolist(),
            TopKCondition(1),
            model=HashingEmbedder(dim=24, seed=302),
        )
        got = set(zip(out.array("text").tolist(), out.array("word").tolist()))
        texts = feed.array("text").tolist()
        vocab = words.array("word").tolist()
        expected = {
            (texts[li], vocab[r])
            for li, r in zip(bulk.left_ids.tolist(), bulk.right_ids.tolist())
        }
        assert got == expected

    def test_batch_size_invariance(self, tables, model):
        feed, words = tables
        results = []
        for bs in (7, 32, 1000):
            op = EJoinOperator(
                Scan(feed, batch_size=bs),
                Scan(words),
                "text",
                "word",
                model,
                ThresholdCondition(0.9),
            )
            out = op.execute()
            results.append(
                sorted(zip(out.array("text").tolist(), out.array("word").tolist()))
            )
        assert results[0] == results[1] == results[2]

    def test_embed_once_across_batches(self, tables):
        """The store deduplicates across streamed batches: model calls stay
        linear in distinct strings."""
        feed, words = tables
        model = HashingEmbedder(dim=24, seed=303)
        op = EJoinOperator(
            Scan(feed, batch_size=8),
            Scan(words),
            "text",
            "word",
            model,
            TopKCondition(1),
        )
        op.execute()
        distinct = len(set(feed.array("text").tolist()) | set(words.array("word").tolist()))
        assert model.usage.calls == distinct

    def test_score_column_present_and_valid(self, tables, model):
        feed, words = tables
        op = EJoinOperator(
            Scan(feed), Scan(words), "text", "word", model,
            ThresholdCondition(0.5),
        )
        out = op.execute()
        assert (out.array("similarity") >= 0.5 - 1e-4).all()

    def test_composes_with_filter(self, tables, model):
        feed, words = tables
        op = EJoinOperator(
            Filter(Scan(feed), Col("views") > 5000),
            Scan(words),
            "text",
            "word",
            model,
            TopKCondition(1),
        )
        out = op.execute()
        assert (out.array("views") > 5000).all()

    def test_tensor_column_inputs(self, model):
        schema = Schema.of(
            Field("id", DataType.INT64), Field("vec", DataType.TENSOR, dim=8)
        )
        left = Table.from_arrays(
            schema,
            {"id": np.arange(10), "vec": unit_vectors(10, 8, seed=304)},
        )
        right = Table.from_arrays(
            schema,
            {"id": np.arange(15), "vec": unit_vectors(15, 8, seed=305)},
        )
        op = EJoinOperator(
            Scan(left), Scan(right), "vec", "vec", model, TopKCondition(2)
        )
        out = op.execute()
        assert out.num_rows == 20  # 10 left rows x top-2

    def test_score_column_collision(self, tables, model):
        feed, words = tables
        with pytest.raises(SchemaError, match="collides"):
            EJoinOperator(
                Scan(feed), Scan(words), "text", "word", model,
                TopKCondition(1), score_column="text",
            )

    def test_unknown_columns_rejected(self, tables, model):
        feed, words = tables
        with pytest.raises(SchemaError):
            EJoinOperator(
                Scan(feed), Scan(words), "nope", "word", model, TopKCondition(1)
            )

    def test_explain(self, tables, model):
        feed, words = tables
        op = EJoinOperator(
            Scan(feed), Scan(words), "text", "word", model, TopKCondition(1)
        )
        assert "EJoinOperator" in op.explain()
