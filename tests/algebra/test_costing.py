"""Unit tests for logical-plan cost estimation."""

import pytest

from repro.algebra import (
    EJoinNode,
    EmbedNode,
    EquiJoinNode,
    ESelectNode,
    FilterNode,
    LimitNode,
    ProjectNode,
    ScanNode,
)
from repro.algebra.costing import PlanEstimate, compare_plans, estimate_cost
from repro.core import ThresholdCondition, TopKCondition
from repro.errors import PlanError
from repro.relational import Catalog, Col


@pytest.fixture()
def catalog(people_table):
    cat = Catalog()
    cat.register("small", people_table)
    big = people_table
    for _ in range(5):
        big = big.concat_rows(big)
    cat.register("big", big)  # 160 rows
    return cat


def ejoin(left="small", right="big", prefetch=True, hint=None, condition=None):
    return EJoinNode(
        ScanNode(left),
        ScanNode(right),
        "name",
        "name",
        "m",
        condition or ThresholdCondition(0.9),
        prefetch=prefetch,
        strategy_hint=hint,
    )


class TestNodeEstimates:
    def test_scan_rows(self, catalog):
        est = estimate_cost(ScanNode("big"), catalog)
        assert est.rows == 160
        assert est.cost > 0

    def test_filter_reduces_rows(self, catalog):
        est = estimate_cost(
            FilterNode(ScanNode("big"), Col("age") > 30), catalog
        )
        assert est.rows < 160

    def test_limit_caps_rows(self, catalog):
        est = estimate_cost(LimitNode(ScanNode("big"), 3), catalog)
        assert est.rows == 3

    def test_project_preserves_rows(self, catalog):
        est = estimate_cost(
            ProjectNode(ScanNode("small"), ("name",)), catalog
        )
        assert est.rows == 5

    def test_embed_charges_model(self, catalog):
        plain = estimate_cost(ScanNode("big"), catalog)
        embedded = estimate_cost(
            EmbedNode(ScanNode("big"), "name", "m"), catalog
        )
        assert embedded.cost > plain.cost
        assert "embed" in embedded.breakdown

    def test_eselect_topk_rows(self, catalog):
        est = estimate_cost(
            ESelectNode(ScanNode("big"), "name", "q", "m", TopKCondition(7)),
            catalog,
        )
        assert est.rows == 7

    def test_equijoin(self, catalog):
        est = estimate_cost(
            EquiJoinNode(ScanNode("small"), ScanNode("big"), "name", "name"),
            catalog,
        )
        assert "hash-join" in est.breakdown

    def test_unknown_node(self, catalog):
        class Strange:
            pass

        with pytest.raises(PlanError):
            estimate_cost(Strange(), catalog)


class TestEJoinEstimates:
    def test_naive_costs_more_than_prefetch(self, catalog):
        naive = estimate_cost(ejoin(prefetch=False), catalog)
        prefetch = estimate_cost(ejoin(prefetch=True), catalog)
        assert naive.cost > prefetch.cost

    def test_tensor_cheaper_than_nlj_hint(self, catalog):
        tensor = estimate_cost(ejoin(hint="tensor"), catalog)
        nlj = estimate_cost(ejoin(hint="nlj"), catalog)
        assert tensor.cost < nlj.cost

    def test_filter_pushdown_lowers_cost(self, catalog):
        """The optimizer's pushdown is justified by the estimator."""
        above = FilterNode(ejoin(), Col("age") > 30)
        below = EJoinNode(
            FilterNode(ScanNode("small"), Col("age") > 30),
            ScanNode("big"),
            "name",
            "name",
            "m",
            ThresholdCondition(0.9),
            prefetch=True,
        )
        assert estimate_cost(below, catalog).cost < estimate_cost(above, catalog).cost

    def test_topk_output_rows(self, catalog):
        est = estimate_cost(
            ejoin(condition=TopKCondition(3)), catalog
        )
        assert est.rows == 5 * 3


class TestComparePlans:
    def test_cheapest_first(self, catalog):
        ranked = compare_plans(
            {"naive": ejoin(prefetch=False), "tensor": ejoin(hint="tensor")},
            catalog,
        )
        assert ranked[0][0] == "tensor"
        assert ranked[0][1].cost <= ranked[1][1].cost

    def test_estimate_breakdown_sums(self, catalog):
        est = estimate_cost(ejoin(), catalog)
        assert sum(est.breakdown.values()) == pytest.approx(est.cost)

    def test_plan_estimate_add(self):
        est = PlanEstimate(rows=1, cost=0.0)
        est.add("x", 2.0)
        est.add("x", 3.0)
        assert est.cost == 5.0
        assert est.breakdown["x"] == 5.0
