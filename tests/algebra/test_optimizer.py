"""Unit tests for rewrite rules and the fixpoint optimizer."""

import pytest

from repro.algebra import (
    EJoinNode,
    EmbedNode,
    FilterNode,
    Optimizer,
    ProjectNode,
    PushFilterBelowEmbed,
    ScanNode,
    default_rules,
    visible_columns,
    walk,
)
from repro.algebra.rules import OrderEJoinInputs, PrefetchEmbeddings
from repro.core import ThresholdCondition, TopKCondition
from repro.relational import Catalog, Col


@pytest.fixture()
def catalog(people_table):
    cat = Catalog()
    cat.register("people", people_table)
    cat.register("people_big", people_table.concat_rows(people_table))
    return cat


def make_ejoin(left="people", right="people_big", condition=None):
    return EJoinNode(
        ScanNode(left),
        ScanNode(right),
        "name",
        "name",
        "m",
        condition or ThresholdCondition(0.9),
    )


class TestPushFilterBelowEmbed:
    def test_pushes_relational_predicate(self):
        plan = FilterNode(
            EmbedNode(ScanNode("t"), "text", "m"), Col("views") > 10
        )
        rewritten = PushFilterBelowEmbed().apply(plan)
        assert isinstance(rewritten, EmbedNode)
        assert isinstance(rewritten.child, FilterNode)

    def test_embedding_dependent_predicate_stays(self):
        embed = EmbedNode(ScanNode("t"), "text", "m", "vec")
        plan = FilterNode(embed, Col("vec") == 1)
        assert PushFilterBelowEmbed().apply(plan) is None

    def test_not_applicable_elsewhere(self):
        assert PushFilterBelowEmbed().apply(ScanNode("t")) is None


class TestPrefetchRule:
    def test_marks_ejoin(self):
        rewritten = PrefetchEmbeddings().apply(make_ejoin())
        assert rewritten.prefetch

    def test_idempotent(self):
        marked = PrefetchEmbeddings().apply(make_ejoin())
        assert PrefetchEmbeddings().apply(marked) is None


class TestOrderEJoinInputs:
    def test_swaps_larger_left(self, catalog):
        rule = OrderEJoinInputs(catalog)
        node = make_ejoin(left="people_big", right="people")
        # Already smaller-inner: marked but not swapped.
        result = rule.apply(node)
        assert result.left.table_name == "people_big"
        assert result.metadata["ordered"]

    def test_swaps_smaller_left(self, catalog):
        rule = OrderEJoinInputs(catalog)
        node = make_ejoin(left="people", right="people_big")
        result = rule.apply(node)
        assert result.left.table_name == "people_big"
        assert result.metadata["swapped"]

    def test_topk_not_reordered(self, catalog):
        rule = OrderEJoinInputs(catalog)
        node = make_ejoin(condition=TopKCondition(2))
        assert rule.apply(node) is None


class TestVisibleColumns:
    def test_scan_from_catalog(self, catalog):
        cols = visible_columns(ScanNode("people"), catalog)
        assert cols == {"id", "name", "age", "score"}

    def test_project_restricts(self, catalog):
        plan = ProjectNode(ScanNode("people"), ("id",))
        assert visible_columns(plan, catalog) == {"id"}

    def test_embed_adds_output(self, catalog):
        plan = EmbedNode(ScanNode("people"), "name", "m", "vec")
        assert "vec" in visible_columns(plan, catalog)

    def test_ejoin_union(self, catalog):
        cols = visible_columns(make_ejoin(), catalog)
        assert "name" in cols and "age" in cols

    def test_unknown_without_catalog(self):
        assert visible_columns(ScanNode("t"), None) is None


class TestOptimizer:
    def test_fixpoint_reached(self, catalog):
        plan = FilterNode(make_ejoin(), Col("age") > 30)
        optimizer = Optimizer(catalog=catalog)
        out = optimizer.optimize(plan)
        # Running again changes nothing.
        assert optimizer.optimize(out) == out

    def test_prefetch_applied_everywhere(self, catalog):
        plan = FilterNode(make_ejoin(), Col("age") > 30)
        out = Optimizer(catalog=catalog).optimize(plan)
        joins = [n for n in walk(out) if isinstance(n, EJoinNode)]
        assert joins and all(j.prefetch for j in joins)

    def test_single_side_filter_pushed_into_join(self, catalog):
        # Predicate on 'age' exists on both sides (same schema) -> ambiguous,
        # must NOT be pushed.
        plan = FilterNode(make_ejoin(), Col("age") > 30)
        out = Optimizer(catalog=catalog).optimize(plan)
        assert isinstance(out, FilterNode)

    def test_unambiguous_filter_pushed(self, catalog, people_table):
        catalog.register("other", people_table.rename({"age": "years"}))
        plan = FilterNode(
            EJoinNode(
                ScanNode("people"),
                ScanNode("other"),
                "name",
                "name",
                "m",
                ThresholdCondition(0.9),
            ),
            Col("years") > 30,
        )
        out = Optimizer(catalog=catalog).optimize(plan)
        assert isinstance(out, EJoinNode)
        assert isinstance(out.right, FilterNode) or isinstance(
            out.left, FilterNode
        )

    def test_trace_records_rewrites(self, catalog):
        optimizer = Optimizer(catalog=catalog)
        optimizer.optimize(make_ejoin())
        assert any("prefetch" in s for s in optimizer.trace.steps)

    def test_filter_below_embed_end_to_end(self, catalog):
        plan = FilterNode(
            EmbedNode(ScanNode("people"), "name", "m", "vec"),
            Col("age") > 30,
        )
        out = Optimizer(catalog=catalog).optimize(plan)
        assert isinstance(out, EmbedNode)
        assert isinstance(out.child, FilterNode)

    def test_custom_rule_list(self):
        optimizer = Optimizer(rules=[])
        plan = make_ejoin()
        assert optimizer.optimize(plan) == plan

    def test_default_rules_with_catalog(self, catalog):
        rules = default_rules(catalog)
        assert any(isinstance(r, OrderEJoinInputs) for r in rules)
        assert len(default_rules(None)) == len(rules) - 1
