"""Unit tests for logical plan nodes."""

import pytest

from repro.algebra import (
    EJoinNode,
    EmbedNode,
    EquiJoinNode,
    FilterNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    plan_equal,
    walk,
)
from repro.core import ThresholdCondition
from repro.errors import PlanError
from repro.relational import Col


def make_ejoin() -> EJoinNode:
    return EJoinNode(
        ScanNode("feed"),
        ScanNode("words"),
        "text",
        "word",
        "model",
        ThresholdCondition(0.9),
    )


class TestNodes:
    def test_scan_no_children(self):
        node = ScanNode("t")
        assert node.children() == []
        with pytest.raises(PlanError):
            node.with_children([ScanNode("x")])

    def test_filter_structure(self):
        node = FilterNode(ScanNode("t"), Col("x") > 1)
        assert len(node.children()) == 1
        replaced = node.with_children([ScanNode("u")])
        assert replaced.child.table_name == "u"
        assert replaced.predicate is node.predicate

    def test_project_limit(self):
        plan = LimitNode(ProjectNode(ScanNode("t"), ("a", "b")), 5)
        assert "Limit(5)" in plan.describe()
        assert plan.children()[0].names == ("a", "b")

    def test_embed_default_output_column(self):
        node = EmbedNode(ScanNode("t"), "text", "m")
        assert node.output_column == "__emb_text"

    def test_embed_custom_output(self):
        node = EmbedNode(ScanNode("t"), "text", "m", "vec")
        assert node.output_column == "vec"

    def test_equijoin_children(self):
        node = EquiJoinNode(ScanNode("a"), ScanNode("b"), "x", "y")
        swapped = node.with_children([ScanNode("b"), ScanNode("a")])
        assert swapped.left.table_name == "b"

    def test_ejoin_describe_flags(self):
        node = make_ejoin()
        assert "prefetch" not in node.describe()
        on = EJoinNode(
            node.left, node.right, "text", "word", "model",
            node.condition, prefetch=True, strategy_hint="tensor",
        )
        assert "prefetch" in on.describe()
        assert "strategy=tensor" in on.describe()


class TestTraversal:
    def test_walk_preorder(self):
        plan = FilterNode(make_ejoin(), Col("x") > 1)
        kinds = [type(n).__name__ for n in walk(plan)]
        assert kinds == ["FilterNode", "EJoinNode", "ScanNode", "ScanNode"]

    def test_explain_indented(self):
        text = FilterNode(ScanNode("t"), Col("x") > 1).explain()
        lines = text.splitlines()
        assert lines[0].startswith("Filter")
        assert lines[1].startswith("  Scan")

    def test_plan_equality(self):
        assert plan_equal(make_ejoin(), make_ejoin())
        other = EJoinNode(
            ScanNode("feed"), ScanNode("words"), "text", "word", "model",
            ThresholdCondition(0.8),
        )
        assert not plan_equal(make_ejoin(), other)
