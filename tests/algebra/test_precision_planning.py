"""Optimizer/planner selection of quantized access paths (REPRO_PRECISION)."""

import numpy as np
import pytest

from repro.algebra import (
    EJoinNode,
    ESelectNode,
    ExecutionContext,
    ExecutionReport,
    FilterNode,
    ScanNode,
    execute,
)
from repro.algebra.costing import estimate_cost
from repro.config import configure
from repro.core import TopKCondition, choose_scan_precision
from repro.embedding import HashingEmbedder, ModelRegistry
from repro.relational import Catalog, DataType, Field, Schema, Table

pytestmark = pytest.mark.quant

DIM = 16


@pytest.fixture()
def ctx() -> ExecutionContext:
    schema = Schema.of(
        Field("id", DataType.INT64), Field("emb", DataType.TENSOR, dim=DIM)
    )

    def table(n: int, seed: int) -> Table:
        rng = np.random.default_rng(seed)
        return Table.from_arrays(
            schema,
            {
                "id": np.arange(n),
                "emb": rng.standard_normal((n, DIM)).astype(np.float32),
            },
        )

    catalog = Catalog()
    catalog.register("probes", table(40, 1))
    catalog.register("probes_many", table(800, 4))
    catalog.register("base", table(300, 2))
    models = ModelRegistry()
    models.register("hash", HashingEmbedder(dim=DIM, seed=3))
    return ExecutionContext(catalog, models=models)


@pytest.fixture()
def join_plan() -> EJoinNode:
    return EJoinNode(
        ScanNode("probes"),
        ScanNode("base"),
        "emb",
        "emb",
        "hash",
        TopKCondition(3),
        prefetch=True,
    )


@pytest.fixture(autouse=True)
def _restore_precision():
    yield
    configure(default_precision="fp32", default_min_recall=0.95)


class TestChooser:
    def test_quantized_wins_when_allowed(self):
        decision = choose_scan_precision(
            1000, 50_000, 10, 128, precision="int8"
        )
        assert decision.precision == "int8"
        assert decision.quantized_cost < decision.fp32_cost

    def test_accuracy_floor_gates_pq(self):
        decision = choose_scan_precision(
            1000, 50_000, 10, 128, precision="pq", min_recall=0.999
        )
        assert decision.precision == "fp32"

    def test_fp32_default(self):
        decision = choose_scan_precision(1000, 50_000, 10, 128)
        assert decision.precision == "fp32"


class TestPlanner:
    def test_ejoin_picks_int8_scan(self, ctx, join_plan):
        configure(default_precision="int8", default_min_recall=0.9)
        report = ExecutionReport()
        out = execute(join_plan, ctx, report=report)
        assert report.strategies == ["tensor-int8"]
        assert out.num_rows > 0

    def test_ejoin_picks_pq_once_probes_amortize_training(self, ctx):
        # PQ codebook training is expensive: a 40-probe join stays fp32,
        # a wide probe batch amortizes the build and flips to pq.
        configure(default_precision="pq", default_min_recall=0.9)
        small = EJoinNode(
            ScanNode("probes"), ScanNode("base"), "emb", "emb", "hash",
            TopKCondition(3), prefetch=True,
        )
        report = ExecutionReport()
        execute(small, ctx, report=report)
        assert report.strategies == ["tensor"]
        big = EJoinNode(
            ScanNode("probes_many"), ScanNode("base"), "emb", "emb", "hash",
            TopKCondition(3), prefetch=True,
        )
        report = ExecutionReport()
        out = execute(big, ctx, report=report)
        assert report.strategies == ["tensor-pq"]
        assert out.num_rows > 0
        # The store now exists, so even the small join amortizes it.
        report = ExecutionReport()
        execute(small, ctx, report=report)
        assert report.strategies == ["tensor-pq"]

    def test_fp32_when_floor_unreachable(self, ctx, join_plan):
        configure(default_precision="pq", default_min_recall=0.999)
        report = ExecutionReport()
        execute(join_plan, ctx, report=report)
        assert report.strategies == ["tensor"]

    def test_fp32_by_default(self, ctx, join_plan):
        report = ExecutionReport()
        execute(join_plan, ctx, report=report)
        assert report.strategies == ["tensor"]

    def test_eselect_picks_quantized_scan_once_store_exists(
        self, ctx, join_plan
    ):
        configure(default_precision="int8", default_min_recall=0.9)
        # A join over the same scan source pays the build and caches the
        # encoded store; the subsequent selection amortizes it.
        execute(join_plan, ctx, report=ExecutionReport())
        assert ("base", "emb", "hash", "int8") in ctx.quant_stores
        plan = ESelectNode(
            ScanNode("base"),
            "emb",
            np.ones(DIM, dtype=np.float32),
            "hash",
            TopKCondition(5),
        )
        report = ExecutionReport()
        out = execute(plan, ctx, report=report)
        assert report.strategies == ["eselect/int8"]
        assert out.num_rows == 5

    def test_quantized_results_close_to_fp32(self, ctx, join_plan):
        report_fp32 = ExecutionReport()
        ref = execute(join_plan, ctx, report=report_fp32)
        configure(default_precision="int8")
        report_q = ExecutionReport()
        got = execute(join_plan, ctx, report=report_q)
        ref_pairs = set(zip(ref.array("l_id").tolist(), ref.array("r_id").tolist()))
        got_pairs = set(zip(got.array("l_id").tolist(), got.array("r_id").tolist()))
        overlap = len(ref_pairs & got_pairs) / len(ref_pairs)
        assert overlap >= 0.9


class TestStoreAmortization:
    def test_quant_store_cached_across_executions(self, ctx, join_plan):
        configure(default_precision="int8", default_min_recall=0.9)
        report = ExecutionReport()
        execute(join_plan, ctx, report=report)
        assert report.strategies == ["tensor-int8"]
        key = ("base", "emb", "hash", "int8")
        assert key in ctx.quant_stores
        first = ctx.quant_stores[key]
        execute(join_plan, ctx, report=ExecutionReport())
        assert ctx.quant_stores[key] is first  # encoded once, reused

    def test_cold_one_shot_eselect_stays_fp32_for_pq(self, ctx):
        # A filtered (non-cacheable) source cannot amortize PQ training,
        # so the chooser charges the build and keeps the exact scan.
        from repro.relational import Col

        configure(default_precision="pq", default_min_recall=0.5)
        plan = ESelectNode(
            FilterNode(ScanNode("base"), Col("id") >= 0),
            "emb",
            np.ones(DIM, dtype=np.float32),
            "hash",
            TopKCondition(5),
        )
        report = ExecutionReport()
        execute(plan, ctx, report=report)
        assert report.strategies == ["eselect/scan"]

    def test_build_cost_gates_cold_chooser(self):
        cold = choose_scan_precision(
            1, 20_000, 10, 128, precision="pq", store_built=False
        )
        warm = choose_scan_precision(
            1, 20_000, 10, 128, precision="pq", store_built=True
        )
        assert cold.precision == "fp32"
        assert warm.quantized_cost < cold.quantized_cost


class TestFp16Knob:
    def test_planner_picks_fp16_scan(self, ctx, join_plan):
        configure(default_precision="fp16")
        report = ExecutionReport()
        execute(join_plan, ctx, report=report)
        assert report.strategies == ["tensor-fp16"]

    def test_ejoin_auto_picks_fp16(self):
        from repro.core import ejoin
        from repro.workloads import unit_vectors

        left = unit_vectors(10, 8, seed=1)
        right = unit_vectors(20, 8, seed=2)
        configure(default_precision="fp16")
        got = ejoin(left, right, TopKCondition(2), strategy="auto")
        assert got.stats.strategy == "tensor-fp16"


class TestCosting:
    def test_quantized_precision_changes_breakdown(self, ctx, join_plan):
        fp32 = estimate_cost(join_plan, ctx.catalog, precision="fp32")
        int8 = estimate_cost(join_plan, ctx.catalog, precision="int8")
        assert "ejoin-tensor" in fp32.breakdown
        assert "ejoin-tensor-int8" in int8.breakdown
        assert int8.cost < fp32.cost

    def test_default_precision_comes_from_config(self, ctx, join_plan):
        configure(default_precision="pq")
        # PQ training never amortizes over this small cold join, so the
        # cold estimate stays on the fp32 equation; a warm engine whose
        # store already exists is modelled via assume_stores_built.
        cold = estimate_cost(join_plan, ctx.catalog)
        assert "ejoin-tensor" in cold.breakdown
        warm = estimate_cost(join_plan, ctx.catalog, assume_stores_built=True)
        assert "ejoin-tensor-pq" in warm.breakdown
        assert warm.cost < cold.cost
