"""Unit tests for physical planning and execution."""

import pytest

from repro.algebra import (
    EJoinNode,
    EmbedNode,
    EquiJoinNode,
    ExecutionContext,
    ExecutionReport,
    FilterNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    execute,
)
from repro.core import ThresholdCondition, TopKCondition
from repro.embedding import HashingEmbedder, ModelRegistry
from repro.errors import PlanError
from repro.index import FlatIndex
from repro.relational import Catalog, Col, DataType
from repro.workloads import generate_dirty_strings


@pytest.fixture()
def ctx():
    wl = generate_dirty_strings(n_feed=60, seed=91)
    catalog = Catalog()
    catalog.register("words", wl.catalog)
    catalog.register("feed", wl.feed)
    models = ModelRegistry()
    models.register("hash", HashingEmbedder(dim=24, seed=92))
    return ExecutionContext(catalog, models=models)


class TestRelationalNodes:
    def test_scan(self, ctx):
        out = execute(ScanNode("feed"), ctx)
        assert out.num_rows == 60

    def test_filter(self, ctx):
        out = execute(FilterNode(ScanNode("feed"), Col("views") > 5000), ctx)
        assert (out.array("views") > 5000).all()

    def test_project(self, ctx):
        out = execute(ProjectNode(ScanNode("feed"), ("text",)), ctx)
        assert out.schema.names == ("text",)

    def test_limit(self, ctx):
        out = execute(LimitNode(ScanNode("feed"), 7), ctx)
        assert out.num_rows == 7

    def test_equijoin(self, ctx):
        plan = EquiJoinNode(ScanNode("feed"), ScanNode("words"), "text", "word")
        out = execute(plan, ctx)
        # Exact matches exist in the generated feed.
        assert out.num_rows > 0

    def test_unknown_node(self, ctx):
        class Mystery(ScanNode):
            pass

        # ScanNode subclass still executes; a truly unknown node raises.
        class Unknown:
            def children(self):
                return []

        with pytest.raises(PlanError):
            execute(Unknown(), ctx)


class TestEmbedNode:
    def test_adds_tensor_column(self, ctx):
        out = execute(EmbedNode(ScanNode("feed"), "text", "hash", "vec"), ctx)
        field = out.schema.field("vec")
        assert field.dtype is DataType.TENSOR
        assert field.dim == 24

    def test_embed_once_across_query(self, ctx):
        """Shared store: repeated strings are embedded once."""
        execute(EmbedNode(ScanNode("feed"), "text", "hash", "v1"), ctx)
        calls_first = ctx.models.get("hash").usage.calls
        execute(EmbedNode(ScanNode("feed"), "text", "hash", "v2"), ctx)
        assert ctx.models.get("hash").usage.calls == calls_first


class TestEJoinExecution:
    def make_join(self, prefetch=True, condition=None, strategy=None):
        return EJoinNode(
            ScanNode("feed"),
            ScanNode("words"),
            "text",
            "word",
            "hash",
            condition or TopKCondition(1),
            prefetch=prefetch,
            strategy_hint=strategy,
        )

    def test_scan_path(self, ctx):
        report = ExecutionReport()
        out = execute(self.make_join(), ctx, report=report)
        assert out.num_rows == 60  # top-1 per feed row
        assert "similarity" in out.schema
        assert report.strategies == ["tensor"]

    def test_naive_path_matches_prefetch(self, ctx):
        cond = ThresholdCondition(0.95)
        fast = execute(self.make_join(prefetch=True, condition=cond), ctx)
        slow = execute(self.make_join(prefetch=False, condition=cond), ctx)
        key = lambda t: sorted(
            zip(t.array("text").tolist(), t.array("word").tolist())
        )
        assert key(fast) == key(slow)

    def test_index_path(self, ctx):
        # Register a flat (exact) index over the words column.
        store_model = ctx.models.get("hash")
        words = ctx.catalog.get("words").array("word").tolist()
        index = FlatIndex(store_model.dim)
        index.add(store_model.embed_batch(words))
        ctx.register_index("words", "word", index)

        report = ExecutionReport()
        out = execute(self.make_join(strategy="index"), ctx, report=report)
        assert report.strategies == ["index/flatindex"]
        scan = execute(self.make_join(strategy="tensor"), ctx)
        key = lambda t: sorted(
            zip(t.array("text").tolist(), t.array("word").tolist())
        )
        assert key(out) == key(scan)

    def test_index_path_with_prefilter(self, ctx):
        model = ctx.models.get("hash")
        words_table = ctx.catalog.get("words")
        index = FlatIndex(model.dim)
        index.add(model.embed_batch(words_table.array("word").tolist()))
        ctx.register_index("words", "word", index)

        join = EJoinNode(
            ScanNode("feed"),
            FilterNode(ScanNode("words"), Col("id") < 10),
            "text",
            "word",
            "hash",
            TopKCondition(1),
            prefetch=True,
            strategy_hint="index",
        )
        out = execute(join, ctx)
        # All matched words must come from the pre-filtered id range.
        matched_ids = {
            words_table.array("word").tolist().index(w)
            for w in out.array("word").tolist()
        }
        assert all(i < 10 for i in matched_ids)

    def test_index_hint_without_index_raises(self, ctx):
        with pytest.raises(PlanError, match="registered index"):
            execute(self.make_join(strategy="index"), ctx)

    def test_auto_access_path_prefers_scan_when_filtered(self, ctx):
        model = ctx.models.get("hash")
        words_table = ctx.catalog.get("words")
        index = FlatIndex(model.dim)
        index.add(model.embed_batch(words_table.array("word").tolist()))
        ctx.register_index("words", "word", index)
        join = EJoinNode(
            ScanNode("feed"),
            FilterNode(ScanNode("words"), Col("id") < 3),  # very selective
            "text",
            "word",
            "hash",
            TopKCondition(1),
            prefetch=True,
        )
        report = ExecutionReport()
        execute(join, ctx, report=report)
        assert report.strategies[0] == "tensor"
