"""Property-based tests for cosine kernels (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.vector import (
    cosine_matrix_gemm,
    cosine_matrix_vectorized,
    cosine_scalar,
    cosine_vectorized,
    l2_norms,
    normalize_rows,
)

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False,
    width=32,
)


def vectors(dim):
    return arrays(np.float32, (dim,), elements=finite_floats)


def matrices(rows, dim):
    return arrays(np.float32, (rows, dim), elements=finite_floats)


class TestPairProperties:
    @given(a=vectors(8), b=vectors(8))
    @settings(max_examples=100, deadline=None)
    def test_scalar_matches_vectorized(self, a, b):
        assert cosine_scalar(a, b) == cosine_vectorized(a, b) or abs(
            cosine_scalar(a, b) - cosine_vectorized(a, b)
        ) < 1e-4

    @given(a=vectors(6), b=vectors(6))
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, a, b):
        assert cosine_vectorized(a, b) == cosine_vectorized(b, a)

    @given(a=vectors(6), b=vectors(6))
    @settings(max_examples=100, deadline=None)
    def test_range(self, a, b):
        value = cosine_vectorized(a, b)
        assert -1.0 - 1e-4 <= value <= 1.0 + 1e-4

    @given(a=vectors(6), scale=st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_scale_invariance(self, a, scale):
        b = (a * np.float32(scale)).astype(np.float32)
        if float(np.linalg.norm(a)) > 1e-3:
            assert cosine_vectorized(a, b) > 0.999


class TestMatrixProperties:
    @given(left=matrices(4, 5), right=matrices(6, 5))
    @settings(max_examples=50, deadline=None)
    def test_gemm_matches_vectorized(self, left, right):
        a = cosine_matrix_vectorized(left, right)
        b = cosine_matrix_gemm(left, right)
        assert np.allclose(a, b, atol=2e-3)

    @given(m=matrices(5, 4))
    @settings(max_examples=50, deadline=None)
    def test_normalize_rows_unit_or_zero(self, m):
        norms = l2_norms(normalize_rows(m))
        for n in norms:
            assert abs(n - 1.0) < 1e-3 or n < 1e-6

    @given(m=matrices(4, 4))
    @settings(max_examples=50, deadline=None)
    def test_self_similarity_diagonal(self, m):
        sims = cosine_matrix_gemm(m, m)
        for i in range(m.shape[0]):
            if float(np.linalg.norm(m[i])) > 1e-3:
                assert sims[i, i] > 0.999
