"""Property-based tests for E-join equivalences (the paper's algebraic
claims as executable properties)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    ThresholdCondition,
    TopKCondition,
    parallel_join,
    prefetch_nlj,
    tensor_join,
    tensor_join_non_batched,
)

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False,
    width=32,
)


def relation(max_rows=12, dim=6):
    return st.integers(min_value=1, max_value=max_rows).flatmap(
        lambda n: arrays(np.float32, (n, dim), elements=finite_floats)
    )


def topk_equivalent(a, b, tol=1e-3) -> bool:
    """Top-k equivalence up to ties.

    Different BLAS kernels (GEMM vs matvec, and GEMM under different block
    shapes) round near-tied scores differently, so the partner chosen at the
    k boundary may legitimately differ.  The invariant that *must* hold: for
    every left row, both strategies select matches of the same quality —
    the sorted score lists agree within float tolerance.
    """
    from collections import defaultdict

    def by_left(result):
        groups: dict[int, list[float]] = defaultdict(list)
        for lid, score in zip(result.left_ids.tolist(), result.scores.tolist()):
            groups[lid].append(score)
        return {lid: sorted(s, reverse=True) for lid, s in groups.items()}

    ga, gb = by_left(a), by_left(b)
    if set(ga) != set(gb):
        return False
    for lid in ga:
        if len(ga[lid]) != len(gb[lid]):
            return False
        if not np.allclose(ga[lid], gb[lid], atol=tol):
            return False
    return True


thresholds = st.floats(min_value=-0.99, max_value=0.99)
ks = st.integers(min_value=1, max_value=5)


class TestFormulationEquivalence:
    """Tensor formulation == NLJ formulation (exact algorithms, Sec IV-C)."""

    @given(left=relation(), right=relation(), t=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_threshold_tensor_equals_nlj(self, left, right, t):
        cond = ThresholdCondition(t)
        assert (
            tensor_join(left, right, cond).pairs()
            == prefetch_nlj(left, right, cond).pairs()
        )

    @given(left=relation(), right=relation(), k=ks)
    @settings(max_examples=60, deadline=None)
    def test_topk_tensor_equals_nlj(self, left, right, k):
        cond = TopKCondition(k)
        assert topk_equivalent(
            tensor_join(left, right, cond), prefetch_nlj(left, right, cond)
        )

    @given(left=relation(), right=relation(), t=thresholds)
    @settings(max_examples=40, deadline=None)
    def test_non_batched_equals_batched(self, left, right, t):
        cond = ThresholdCondition(t)
        assert (
            tensor_join_non_batched(left, right, cond).pairs()
            == tensor_join(left, right, cond).pairs()
        )


class TestBlockDecomposition:
    """Block-matrix decomposition invariance (Figure 6 / Section V-B)."""

    @given(
        left=relation(max_rows=16),
        right=relation(max_rows=16),
        bl=st.integers(min_value=1, max_value=8),
        br=st.integers(min_value=1, max_value=8),
        t=thresholds,
    )
    @settings(max_examples=60, deadline=None)
    def test_any_batch_shape_same_result(self, left, right, bl, br, t):
        cond = ThresholdCondition(t)
        full = tensor_join(left, right, cond)
        batched = tensor_join(left, right, cond, batch_left=bl, batch_right=br)
        assert full.pairs() == batched.pairs()

    @given(
        left=relation(max_rows=14),
        right=relation(max_rows=14),
        bl=st.integers(min_value=1, max_value=6),
        br=st.integers(min_value=1, max_value=6),
        k=ks,
    )
    @settings(max_examples=50, deadline=None)
    def test_topk_batch_invariance(self, left, right, bl, br, k):
        cond = TopKCondition(k)
        full = tensor_join(left, right, cond)
        batched = tensor_join(left, right, cond, batch_left=bl, batch_right=br)
        assert topk_equivalent(full, batched)


class TestParallelEquivalence:
    @given(
        left=relation(max_rows=16),
        right=relation(max_rows=16),
        threads=st.integers(min_value=1, max_value=5),
        t=thresholds,
    )
    @settings(max_examples=30, deadline=None)
    def test_partitioned_execution_same_result(self, left, right, threads, t):
        cond = ThresholdCondition(t)
        assert (
            parallel_join(left, right, cond, n_threads=threads).pairs()
            == tensor_join(left, right, cond).pairs()
        )


class TestResultInvariants:
    @given(left=relation(), right=relation(), k=ks)
    @settings(max_examples=40, deadline=None)
    def test_topk_emits_at_most_k_per_left(self, left, right, k):
        result = tensor_join(left, right, TopKCondition(k))
        counts = np.bincount(result.left_ids, minlength=left.shape[0])
        assert (counts <= k).all()
        assert (counts == min(k, right.shape[0])).all()

    @given(left=relation(), right=relation(), t=thresholds)
    @settings(max_examples=40, deadline=None)
    def test_threshold_scores_respect_threshold(self, left, right, t):
        result = tensor_join(left, right, ThresholdCondition(t))
        # float32 GEMM rounding: allow epsilon.
        assert (result.scores >= t - 1e-4).all()

    @given(left=relation(), right=relation(), t=thresholds)
    @settings(max_examples=40, deadline=None)
    def test_offsets_in_range(self, left, right, t):
        result = tensor_join(left, right, ThresholdCondition(t))
        if len(result):
            assert result.left_ids.min() >= 0
            assert result.left_ids.max() < left.shape[0]
            assert result.right_ids.min() >= 0
            assert result.right_ids.max() < right.shape[0]
