"""Property-based tests for the quantized access paths.

Executable claims:

* int8/PQ approximate scores never stray past the quantizer's error bound
  (the soundness the threshold prescreen relies on);
* a re-ranked quantized top-k whose candidate multiple covers the whole
  relation equals the fp32 oracle exactly;
* at a modest multiple, recall@k against the fp32 oracle stays above the
  configured floor on synthetic workloads.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    QuantizedRelation,
    ThresholdCondition,
    TopKCondition,
    quantized_tensor_join,
    tensor_join,
)
from repro.vector import normalize_rows
from repro.vector.quant import Int8Quantizer, ProductQuantizer
from repro.workloads import clustered_vectors, embedding_like_vectors

pytestmark = pytest.mark.quant

finite_floats = st.floats(
    min_value=-8.0, max_value=8.0, allow_nan=False, allow_infinity=False,
    width=32,
)


def relation(min_rows=2, max_rows=40, dim=8):
    return st.integers(min_value=min_rows, max_value=max_rows).flatmap(
        lambda n: arrays(np.float32, (n, dim), elements=finite_floats)
    )


def _quantizer(method: str, dim: int):
    if method == "int8":
        return Int8Quantizer(dim)
    return ProductQuantizer(dim, m=4, ks=16, seed=99)


@pytest.mark.parametrize("method", ["int8", "pq"])
@given(data=relation(), queries=relation(max_rows=6))
@settings(max_examples=25, deadline=None)
def test_score_error_within_bound(method, data, queries):
    base = normalize_rows(data)
    probes = normalize_rows(queries)
    quant = _quantizer(method, 8).fit(base)
    approx = probes @ quant.decode(quant.encode(base)).T
    exact = probes @ base.T
    assert np.abs(approx - exact).max() <= quant.score_error_bound() + 1e-5


def _per_left_sorted_scores(result):
    from collections import defaultdict

    groups = defaultdict(list)
    for lid, score in zip(result.left_ids.tolist(), result.scores.tolist()):
        groups[lid].append(score)
    return {lid: sorted(s, reverse=True) for lid, s in groups.items()}


@pytest.mark.parametrize("method", ["int8", "pq"])
@given(data=relation(min_rows=3), queries=relation(max_rows=5), k=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_full_multiple_equals_fp32_topk(method, data, queries, k):
    # Equivalence up to float ties: GEMM (fp32 join) and the re-rank's
    # einsum may round near-tied scores to different boundary partners,
    # but the selected match quality must agree per left row.
    ref = tensor_join(queries, data, TopKCondition(k))
    got = quantized_tensor_join(
        queries, data, TopKCondition(k), method=method,
        rerank_multiple=len(data) + 1,
    )
    ref_scores = _per_left_sorted_scores(ref)
    got_scores = _per_left_sorted_scores(got)
    assert set(ref_scores) == set(got_scores)
    for lid, expected in ref_scores.items():
        np.testing.assert_allclose(got_scores[lid], expected, atol=1e-5)


@pytest.mark.parametrize("method", ["int8", "pq"])
@given(
    data=relation(min_rows=3),
    queries=relation(max_rows=5),
    threshold=st.floats(min_value=-0.5, max_value=0.875, width=32),
)
@settings(max_examples=25, deadline=None)
def test_threshold_join_equals_fp32(method, data, queries, threshold):
    threshold = float(threshold)
    ref = tensor_join(queries, data, ThresholdCondition(threshold))
    got = quantized_tensor_join(
        queries, data, ThresholdCondition(threshold), method=method
    )
    # Pairs may differ only when float rounding puts the exact score
    # within an ulp-scale band of the threshold.
    scores = normalize_rows(queries) @ normalize_rows(data).T
    for li, ri in got.pairs() ^ ref.pairs():
        assert abs(float(scores[li, ri]) - threshold) <= 1e-5


@pytest.mark.parametrize(
    "method,multiple,floor", [("int8", 4, 0.95), ("pq", 12, 0.95)]
)
@given(seed=st.integers(0, 50))
@settings(max_examples=8, deadline=None)
def test_recall_floor_on_synthetic_workloads(method, multiple, floor, seed):
    data, _ = embedding_like_vectors(
        1024 + 48, 32, rank=12, n_clusters=64, noise=1.0, seed=seed
    )
    left, right = data[:48], data[48:]
    condition = TopKCondition(5)
    ref = tensor_join(left, right, condition)
    got = quantized_tensor_join(
        left, right, condition, method=method, rerank_multiple=multiple
    )
    recall = len(got.pairs() & ref.pairs()) / len(ref.pairs())
    assert recall >= floor


@given(seed=st.integers(0, 50))
@settings(max_examples=8, deadline=None)
def test_int8_recall_on_clustered_workload(seed):
    data, _ = clustered_vectors(
        1024 + 48, 24, n_clusters=16, noise=0.2, seed=seed
    )
    left, right = data[:48], data[48:]
    condition = TopKCondition(5)
    ref = tensor_join(left, right, condition)
    got = quantized_tensor_join(
        left, right, condition, method="int8", rerank_multiple=4
    )
    recall = len(got.pairs() & ref.pairs()) / len(ref.pairs())
    assert recall >= 0.95


@given(data=relation(min_rows=5))
@settings(max_examples=15, deadline=None)
def test_store_deterministic(data):
    a = QuantizedRelation.build(data, "int8")
    b = QuantizedRelation.build(data, "int8")
    assert (a.codes == b.codes).all()
