"""Property-based tests for embedding substrate invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.embedding import EmbeddingStore, HashingEmbedder, pluralize

words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=12,
)


@pytest.fixture(scope="module")
def model():
    return HashingEmbedder(dim=24, seed=55)


class TestEmbedderProperties:
    @given(word=words)
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, word):
        model = HashingEmbedder(dim=16, seed=56)
        assert np.allclose(model.embed(word), model.embed(word))

    @given(word=words)
    @settings(max_examples=100, deadline=None)
    def test_unit_norm_output(self, word):
        model = HashingEmbedder(dim=16, seed=56)
        vec = model.embed(word)
        assert np.linalg.norm(vec) == pytest.approx(1.0, abs=1e-4)

    @given(
        word=st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=4,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_plural_closer_than_scrambled(self, word):
        """A word (long enough to have shared n-grams) is more similar to
        its plural than to an unrelated token."""
        model = HashingEmbedder(dim=64, seed=57)
        plural = pluralize(word)
        unrelated = "zq" + word[::-1] + "xv"
        if plural == unrelated or word == word[::-1]:
            return
        # The reversal only works as an "unrelated" token when it shares no
        # character bigrams with the word (e.g. 'fcyy' vs 'yycf' share 'yy'
        # and are legitimately similar to an n-gram embedder).
        bigrams = {word[i : i + 2] for i in range(len(word) - 1)}
        rev = word[::-1]
        rev_bigrams = {rev[i : i + 2] for i in range(len(rev) - 1)}
        assume(not (bigrams & rev_bigrams))
        base = model.embed(word)
        assert float(base @ model.embed(plural)) >= float(
            base @ model.embed(unrelated)
        ) - 0.05


class TestStoreProperties:
    @given(items=st.lists(words, min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_model_calls_equal_unique_items(self, items):
        """The prefetch bound: M is paid once per distinct item."""
        model = HashingEmbedder(dim=16, seed=58)
        store = EmbeddingStore(model)
        store.add_items(items)
        store.add_items(items)  # repeat: no new calls
        assert model.usage.calls == len(set(items))

    @given(items=st.lists(words, min_size=1, max_size=20, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_id_decode_roundtrip(self, items):
        store = EmbeddingStore(HashingEmbedder(dim=16, seed=59))
        ids = store.add_items(items)
        for item, item_id in zip(items, ids.tolist()):
            assert store.decode_id(item_id) == item
            assert store.id_of(item) == item_id

    @given(items=st.lists(words, min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_embed_items_consistent(self, items):
        store = EmbeddingStore(HashingEmbedder(dim=16, seed=60))
        first = store.embed_items(items)
        second = store.embed_items(items)
        assert np.allclose(first, second)
