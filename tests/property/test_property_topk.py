"""Property-based tests for top-k selection."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.vector import top_k_indices, top_k_per_row

scores_1d = st.integers(min_value=1, max_value=50).flatmap(
    lambda n: arrays(
        np.float64,
        (n,),
        elements=st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
    )
)


class TestTopKProperties:
    @given(scores=scores_1d, k=st.integers(min_value=0, max_value=60))
    @settings(max_examples=100, deadline=None)
    def test_matches_stable_argsort(self, scores, k):
        got = top_k_indices(scores, k)
        expected = np.argsort(-scores, kind="stable")[: max(k, 0)]
        assert got.tolist() == expected.tolist()

    @given(scores=scores_1d, k=st.integers(min_value=1, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_returned_scores_dominate_rest(self, scores, k):
        got = top_k_indices(scores, k)
        chosen = set(got.tolist())
        if len(chosen) < len(scores):
            worst_chosen = min(scores[i] for i in chosen)
            best_rest = max(
                scores[i] for i in range(len(scores)) if i not in chosen
            )
            assert worst_chosen >= best_rest

    @given(scores=scores_1d)
    @settings(max_examples=50, deadline=None)
    def test_unique_indices(self, scores):
        got = top_k_indices(scores, len(scores))
        assert len(set(got.tolist())) == len(scores)

    @given(
        m=st.integers(min_value=1, max_value=8),
        n=st.integers(min_value=1, max_value=8),
        k=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_per_row_consistent_with_1d(self, m, n, k, seed):
        matrix = np.random.default_rng(seed).standard_normal((m, n))
        rows = top_k_per_row(matrix, k)
        for i in range(m):
            assert rows[i].tolist() == top_k_indices(matrix[i], k).tolist()
