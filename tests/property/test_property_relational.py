"""Property-based tests for relational substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import Col, DataType, Field, Schema, Table

values = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=40
)


def make_table(ints):
    schema = Schema.of(Field("x", DataType.INT64), Field("pos", DataType.INT64))
    return Table.from_arrays(
        schema,
        {"x": np.asarray(ints), "pos": np.arange(len(ints), dtype=np.int64)},
    )


class TestTableProperties:
    @given(ints=values)
    @settings(max_examples=80, deadline=None)
    def test_mask_then_concat_partition(self, ints):
        """mask(p) + mask(~p) partitions the table."""
        t = make_table(ints)
        bitmap = np.asarray(ints) > 0
        kept = t.mask(bitmap)
        dropped = t.mask(~bitmap)
        assert kept.num_rows + dropped.num_rows == t.num_rows
        merged = set(kept.array("pos").tolist()) | set(
            dropped.array("pos").tolist()
        )
        assert merged == set(range(t.num_rows))

    @given(ints=values, seed=st.integers(min_value=0, max_value=99))
    @settings(max_examples=80, deadline=None)
    def test_take_permutation_roundtrip(self, ints, seed):
        t = make_table(ints)
        perm = np.random.default_rng(seed).permutation(t.num_rows)
        inverse = np.argsort(perm)
        roundtrip = t.take(perm).take(inverse)
        assert roundtrip.array("x").tolist() == t.array("x").tolist()

    @given(ints=values)
    @settings(max_examples=80, deadline=None)
    def test_sort_is_ordered_permutation(self, ints):
        t = make_table(ints).sort_by("x")
        xs = t.array("x").tolist()
        assert xs == sorted(ints)
        assert sorted(t.array("pos").tolist()) == list(range(len(ints)))

    @given(ints=values, threshold=st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=80, deadline=None)
    def test_filter_complement(self, ints, threshold):
        t = make_table(ints)
        pred = Col("x") > threshold
        bitmap = pred.evaluate(t)
        negated = (~pred).evaluate(t)
        assert (bitmap ^ negated).all()

    @given(ints=values)
    @settings(max_examples=50, deadline=None)
    def test_to_dicts_roundtrip(self, ints):
        t = make_table(ints)
        rebuilt = Table.from_dicts(t.schema, t.to_dicts())
        assert rebuilt.array("x").tolist() == t.array("x").tolist()
