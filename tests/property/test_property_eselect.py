"""Property-based tests for the E-selection operator."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import ThresholdCondition, TopKCondition, eselect, tensor_join

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False,
    width=32,
)


def relation(max_rows=20, dim=5):
    return st.integers(min_value=1, max_value=max_rows).flatmap(
        lambda n: arrays(np.float32, (n, dim), elements=finite_floats)
    )


query_vectors = arrays(np.float32, (5,), elements=finite_floats)
thresholds = st.floats(min_value=-0.99, max_value=0.99)


class TestESelectionProperties:
    @given(rel=relation(), q=query_vectors, t=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_equivalent_to_width_one_join(self, rel, q, t):
        """The E-Selection/E-join algebraic link: selecting from R with
        query q equals joining {q} against R."""
        # Zero-direction queries have undefined cosine; eselect and the
        # join disagree on that degenerate boundary (pre-existing), so the
        # algebraic link is only claimed for normalizable queries.
        assume(float(np.linalg.norm(q)) > 1e-6)
        sel = eselect(rel, q, ThresholdCondition(t))
        join = tensor_join(q[None, :], rel, ThresholdCondition(t))
        assert set(sel.ids.tolist()) == set(join.right_ids.tolist())

    @given(rel=relation(), q=query_vectors, t=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_scores_respect_threshold(self, rel, q, t):
        sel = eselect(rel, q, ThresholdCondition(t))
        assert (sel.scores >= t - 1e-4).all()

    @given(rel=relation(), q=query_vectors, k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_topk_cardinality(self, rel, q, k):
        sel = eselect(rel, q, TopKCondition(k))
        assert len(sel) == min(k, rel.shape[0])

    @given(rel=relation(), q=query_vectors, k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_topk_scores_descending(self, rel, q, k):
        sel = eselect(rel, q, TopKCondition(k))
        scores = sel.scores.tolist()
        assert scores == sorted(scores, reverse=True)

    @given(
        rel=relation(),
        q=query_vectors,
        t1=st.floats(min_value=-0.9, max_value=0.0),
        t2=st.floats(min_value=0.01, max_value=0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_threshold_monotonicity(self, rel, q, t1, t2):
        """A stricter threshold selects a subset."""
        loose = eselect(rel, q, ThresholdCondition(t1))
        strict = eselect(rel, q, ThresholdCondition(t2))
        assert set(strict.ids.tolist()) <= set(loose.ids.tolist())
