"""Unit tests for the hashing n-gram embedder."""

import numpy as np
import pytest

from repro.embedding import HashingEmbedder, char_ngrams, hash_ngram
from repro.vector import cosine_vectorized


class TestCharNgrams:
    def test_includes_wrapped_word(self):
        grams = char_ngrams("cat", 3, 5)
        assert "<cat>" in grams

    def test_boundary_markers(self):
        grams = char_ngrams("cat", 3, 3)
        assert "<ca" in grams
        assert "at>" in grams

    def test_gram_lengths(self):
        grams = char_ngrams("database", 3, 5)
        lengths = {len(g) for g in grams if g != "<database>"}
        assert lengths <= {3, 4, 5}

    def test_short_word(self):
        grams = char_ngrams("ab", 3, 5)
        assert "<ab>" in grams
        assert all(len(g) <= 4 for g in grams)


class TestHashNgram:
    def test_deterministic(self):
        assert hash_ngram("abc", 100) == hash_ngram("abc", 100)

    def test_in_range(self):
        for gram in ["a", "xyz", "<word>"]:
            assert 0 <= hash_ngram(gram, 37) < 37

    def test_different_grams_usually_differ(self):
        buckets = {hash_ngram(f"gram{i}", 1 << 20) for i in range(100)}
        assert len(buckets) > 95


class TestHashingEmbedder:
    def test_deterministic_across_instances(self):
        a = HashingEmbedder(dim=16, seed=5).embed("barbecue")
        b = HashingEmbedder(dim=16, seed=5).embed("barbecue")
        assert np.allclose(a, b)

    def test_case_insensitive(self):
        model = HashingEmbedder(dim=16, seed=5)
        assert np.allclose(model.embed("Word"), model.embed("word"))

    def test_batch_matches_single(self):
        model = HashingEmbedder(dim=16, seed=5)
        batch = model.embed_batch(["alpha", "beta"])
        assert np.allclose(batch[0], model.embed("alpha"))
        assert np.allclose(batch[1], model.embed("beta"))

    def test_misspelling_closer_than_unrelated(self):
        """Shared subwords pull edit-variants together (the FastText
        property the paper relies on, here untrained)."""
        model = HashingEmbedder(dim=64, seed=5)
        word = model.embed("barbecue")
        typo = model.embed("barbeque")
        unrelated = model.embed("xylophone")
        assert cosine_vectorized(word, typo) > cosine_vectorized(word, unrelated)

    def test_plural_closer_than_unrelated(self):
        model = HashingEmbedder(dim=64, seed=5)
        word = model.embed("cloth")
        plural = model.embed("cloths")
        unrelated = model.embed("quasar")
        assert cosine_vectorized(word, plural) > cosine_vectorized(word, unrelated)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dim=8, n_buckets=0)
        with pytest.raises(ValueError):
            HashingEmbedder(dim=8, n_min=4, n_max=3)

    def test_identical_strings_similarity_one(self):
        model = HashingEmbedder(dim=32, seed=5)
        a = model.embed("postgres")
        assert cosine_vectorized(a, model.embed("postgres")) == pytest.approx(
            1.0, abs=1e-5
        )
