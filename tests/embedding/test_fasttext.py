"""Unit tests for the from-scratch FastText-style model."""

import numpy as np
import pytest

from repro.embedding import FastTextModel, generate_corpus
from repro.errors import ModelNotFittedError, VocabularyError
from repro.vector import cosine_vectorized


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(
        n_sentences=500,
        sentence_length=(4, 7),
        topics={
            "db": ["dbms", "rdbms", "sql", "postgres", "sqlite", "mysql"],
            "music": ["guitar", "piano", "violin", "drums", "melody", "chord"],
        },
        seed=21,
    )


@pytest.fixture(scope="module")
def model(corpus):
    m = FastTextModel(dim=32, window=3, negatives=3, seed=21)
    m.fit(corpus.sentences, epochs=2)
    return m


class TestValidation:
    def test_param_checks(self):
        with pytest.raises(ValueError):
            FastTextModel(dim=16, n_buckets=0)
        with pytest.raises(ValueError):
            FastTextModel(dim=16, n_min=0)
        with pytest.raises(ValueError):
            FastTextModel(dim=16, window=0)
        with pytest.raises(ValueError):
            FastTextModel(dim=16, negatives=-1)

    def test_unfitted_embed_raises(self):
        with pytest.raises(ModelNotFittedError):
            FastTextModel(dim=16).embed("word")

    def test_unfitted_neighbors_raises(self):
        with pytest.raises(ModelNotFittedError):
            FastTextModel(dim=16).nearest_neighbors("word")

    def test_min_count_filters_vocab(self):
        m = FastTextModel(dim=8, seed=1)
        with pytest.raises(VocabularyError):
            m.fit([["once"]], min_count=2)


class TestTraining:
    def test_fit_returns_self(self, corpus):
        m = FastTextModel(dim=16, seed=2)
        assert m.fit(corpus.sentences[:50], epochs=1) is m
        assert m.is_fitted

    def test_vocabulary_built(self, model, corpus):
        vocab = set(model.vocabulary)
        assert "dbms" in vocab
        assert "guitar" in vocab

    def test_deterministic_given_seed(self, corpus):
        a = FastTextModel(dim=16, seed=33).fit(corpus.sentences[:100], epochs=1)
        b = FastTextModel(dim=16, seed=33).fit(corpus.sentences[:100], epochs=1)
        assert np.allclose(a.embed("dbms"), b.embed("dbms"))


class TestSemantics:
    def test_same_topic_closer_than_cross_topic(self, model):
        db1 = model.embed("dbms")
        db2 = model.embed("postgres")
        music = model.embed("guitar")
        assert cosine_vectorized(db1, db2) > cosine_vectorized(db1, music)

    def test_nearest_neighbors_topical(self, model, corpus):
        neighbors = [w for w, _ in model.nearest_neighbors("dbms", k=5)]
        related = corpus.related_words("dbms")
        hits = sum(1 for w in neighbors if w in related)
        assert hits >= 3

    def test_neighbors_exclude_self(self, model):
        assert "dbms" not in [w for w, _ in model.nearest_neighbors("dbms", k=10)]

    def test_neighbors_scores_descending(self, model):
        scores = [s for _, s in model.nearest_neighbors("guitar", k=8)]
        assert scores == sorted(scores, reverse=True)

    def test_oov_embedding_works(self, model):
        """Out-of-vocabulary words embed via subwords (paper Section VI-A)."""
        vec = model.embed("postgresssss")
        assert vec.shape == (32,)

    def test_oov_misspelling_near_original(self, model):
        original = model.embed("postgres")
        misspelled = model.embed("postgers")  # transposition, OOV
        other = model.embed("violin")
        assert cosine_vectorized(original, misspelled) > cosine_vectorized(
            original, other
        )

    def test_embedding_normalized(self, model):
        vec = model.embed("sql")
        assert np.linalg.norm(vec) == pytest.approx(1.0, abs=1e-4)
