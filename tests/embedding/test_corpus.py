"""Unit tests for the synthetic semantic corpus generator."""

import numpy as np
import pytest

from repro.embedding import generate_corpus, make_misspelling, pluralize
from repro.errors import WorkloadError


class TestPluralize:
    @pytest.mark.parametrize(
        "word,plural",
        [
            ("dress", "dresses"),
            ("box", "boxes"),
            ("church", "churches"),
            ("city", "cities"),
            ("word", "words"),
            ("day", "days"),
        ],
    )
    def test_rules(self, word, plural):
        assert pluralize(word) == plural


class TestMisspelling:
    def test_single_edit_distance(self):
        rng = np.random.default_rng(9)
        for _ in range(50):
            word = "barbecue"
            variant = make_misspelling(word, rng)
            assert abs(len(variant) - len(word)) <= 1

    def test_first_char_preserved(self):
        rng = np.random.default_rng(10)
        for _ in range(50):
            assert make_misspelling("postgres", rng)[0] == "p"

    def test_short_words_unchanged(self):
        rng = np.random.default_rng(11)
        assert make_misspelling("ab", rng) == "ab"

    def test_deterministic_given_rng(self):
        a = make_misspelling("database", np.random.default_rng(12))
        b = make_misspelling("database", np.random.default_rng(12))
        assert a == b


class TestGenerateCorpus:
    def test_shapes(self):
        corpus = generate_corpus(n_sentences=50, sentence_length=(4, 6), seed=1)
        assert len(corpus.sentences) == 50
        assert all(4 <= len(s) <= 6 for s in corpus.sentences)

    def test_deterministic(self):
        a = generate_corpus(n_sentences=20, seed=2)
        b = generate_corpus(n_sentences=20, seed=2)
        assert a.sentences == b.sentences

    def test_different_seeds_differ(self):
        a = generate_corpus(n_sentences=20, seed=3)
        b = generate_corpus(n_sentences=20, seed=4)
        assert a.sentences != b.sentences

    def test_sentences_topical(self):
        """Every base word in a sentence should come from one topic."""
        corpus = generate_corpus(
            n_sentences=30, misspelling_rate=0.0, plural_rate=0.0, seed=5
        )
        for sent in corpus.sentences:
            topics = {corpus.topic_of(w) for w in sent}
            topics.discard(None)
            assert len(topics) == 1

    def test_variants_present(self):
        corpus = generate_corpus(n_sentences=50, seed=6)
        assert corpus.variants
        for base, variants in corpus.variants.items():
            assert base not in variants

    def test_related_words(self):
        corpus = generate_corpus(n_sentences=10, seed=7)
        related = corpus.related_words("dbms")
        assert "rdbms" in related
        assert "dbms" not in related
        # Variants of same-topic words are related too.
        assert any(v in related for v in corpus.variants["sql"])

    def test_topic_of_variant(self):
        corpus = generate_corpus(n_sentences=10, seed=8)
        plural = pluralize("dbms")
        assert corpus.topic_of(plural) == "databases" or corpus.topic_of("dbms") == "databases"

    def test_vocabulary_sorted_unique(self):
        corpus = generate_corpus(n_sentences=30, seed=9)
        vocab = corpus.vocabulary
        assert vocab == sorted(set(vocab))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_corpus(topics={})
        with pytest.raises(WorkloadError):
            generate_corpus(topics={"t": ["only"]})
        with pytest.raises(WorkloadError):
            generate_corpus(sentence_length=(5, 3))
