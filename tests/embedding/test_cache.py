"""Unit tests for the embedding store (prefetch cache + E^-1 decode)."""

import numpy as np
import pytest

from repro.embedding import EmbeddingStore, HashingEmbedder
from repro.errors import EmbeddingError


@pytest.fixture()
def store():
    return EmbeddingStore(HashingEmbedder(dim=16, seed=13))


class TestEmbedOnce:
    def test_add_items_returns_ids(self, store):
        ids = store.add_items(["a", "b", "c"])
        assert ids.tolist() == [0, 1, 2]
        assert len(store) == 3

    def test_duplicates_not_reembedded(self, store):
        """Each unique item incurs model cost M exactly once — the linear
        model-cost bound of the prefetch formulation."""
        store.add_items(["a", "b"])
        calls_after_first = store.model.usage.calls
        store.add_items(["a", "b", "c"])
        assert store.model.usage.calls == calls_after_first + 1  # only "c"

    def test_duplicates_within_batch(self, store):
        ids = store.add_items(["x", "x", "y"])
        assert ids.tolist() == [0, 0, 1]
        assert store.model.usage.calls == 2

    def test_embed_items_returns_vectors(self, store):
        vectors = store.embed_items(["p", "q"])
        assert vectors.shape == (2, 16)
        again = store.embed_items(["q", "p"])
        assert np.allclose(again[0], vectors[1])

    def test_vectors_property(self, store):
        store.add_items(["a", "b"])
        assert store.vectors.shape == (2, 16)


class TestDecode:
    def test_decode_id(self, store):
        store.add_items(["alpha", "beta"])
        assert store.decode_id(1) == "beta"

    def test_decode_id_out_of_range(self, store):
        store.add_items(["alpha"])
        with pytest.raises(EmbeddingError, match="out of range"):
            store.decode_id(5)

    def test_decode_vector_nearest(self, store):
        store.add_items(["alpha", "beta", "gamma"])
        vec = store.model.embed("beta")
        assert store.decode_vector(vec) == "beta"

    def test_decode_vector_empty_store(self, store):
        with pytest.raises(EmbeddingError, match="empty"):
            store.decode_vector(np.ones(16))

    def test_id_of(self, store):
        store.add_items(["alpha"])
        assert store.id_of("alpha") == 0
        with pytest.raises(EmbeddingError):
            store.id_of("missing")

    def test_items_listing(self, store):
        store.add_items(["a", "b"])
        assert store.items() == ["a", "b"]
