"""Unit tests for the EmbeddingModel interface and cost accounting."""

import numpy as np
import pytest

from repro.embedding import EmbeddingModel, HashingEmbedder
from repro.errors import EmbeddingError
from repro.vector import l2_norms


class ConstantModel(EmbeddingModel):
    """Test double returning a fixed pattern."""

    def _embed_batch(self, items):
        out = np.ones((len(items), self.dim), dtype=np.float32)
        for i, item in enumerate(items):
            out[i, 0] = float(hash(str(item)) % 7)
        return out


class BadShapeModel(EmbeddingModel):
    def _embed_batch(self, items):
        return np.ones((len(items), self.dim + 1), dtype=np.float32)


class TestInterface:
    def test_dim_validation(self):
        with pytest.raises(EmbeddingError):
            ConstantModel(0)

    def test_embed_single(self):
        model = ConstantModel(4)
        vec = model.embed("x")
        assert vec.shape == (4,)

    def test_embed_batch_shape(self):
        model = ConstantModel(4)
        out = model.embed_batch(["a", "b", "c"])
        assert out.shape == (3, 4)

    def test_empty_batch(self):
        model = ConstantModel(4)
        out = model.embed_batch([])
        assert out.shape == (0, 4)
        assert model.usage.calls == 0

    def test_output_normalized_by_default(self):
        model = ConstantModel(8)
        out = model.embed_batch(["a", "b"])
        assert np.allclose(l2_norms(out), 1.0, atol=1e-5)

    def test_normalize_disabled(self):
        model = ConstantModel(8, normalize=False)
        out = model.embed_batch(["a"])
        assert not np.allclose(l2_norms(out), 1.0)

    def test_bad_output_shape_rejected(self):
        with pytest.raises(EmbeddingError, match="produced shape"):
            BadShapeModel(4).embed_batch(["a"])

    def test_decode_default_raises(self):
        with pytest.raises(EmbeddingError, match="no decoder"):
            ConstantModel(4).decode(np.ones(4))

    def test_repr(self):
        assert "dim=4" in repr(ConstantModel(4))


class TestUsageAccounting:
    def test_calls_count_per_item(self):
        """The cost model charges M per embedded tuple (Section IV-A)."""
        model = ConstantModel(4)
        model.embed_batch(["a", "b", "c"])
        model.embed("d")
        assert model.usage.calls == 4
        assert model.usage.items == 4

    def test_reset_usage(self):
        model = ConstantModel(4)
        model.embed("a")
        model.reset_usage()
        assert model.usage.calls == 0
        assert model.usage.seconds == 0.0

    def test_seconds_accumulate(self):
        model = ConstantModel(4)
        model.embed_batch(list("abcdef"))
        assert model.usage.seconds > 0

    def test_simulated_latency(self):
        fast = ConstantModel(4)
        slow = ConstantModel(4, simulated_latency_s=0.002)
        fast.embed_batch(["a", "b"])
        slow.embed_batch(["a", "b"])
        assert slow.usage.seconds > fast.usage.seconds
        assert slow.usage.seconds >= 0.004


class TestHashingEmbedderAsModel:
    def test_usage_with_real_model(self):
        model = HashingEmbedder(dim=8)
        model.embed_batch(["hello", "world"])
        assert model.usage.calls == 2
