"""Unit tests for the model registry."""

import pytest

from repro.embedding import HashingEmbedder, ModelRegistry, default_registry
from repro.errors import EmbeddingError


class TestRegistry:
    def test_register_and_get(self):
        reg = ModelRegistry()
        model = HashingEmbedder(dim=8)
        reg.register("m", model)
        assert reg.get("m") is model
        assert "m" in reg
        assert reg.names() == ["m"]

    def test_duplicate_rejected(self):
        reg = ModelRegistry()
        reg.register("m", HashingEmbedder(dim=8))
        with pytest.raises(EmbeddingError, match="already registered"):
            reg.register("m", HashingEmbedder(dim=8))

    def test_replace(self):
        reg = ModelRegistry()
        reg.register("m", HashingEmbedder(dim=8))
        bigger = HashingEmbedder(dim=16)
        reg.register("m", bigger, replace=True)
        assert reg.get("m") is bigger

    def test_unknown_model(self):
        reg = ModelRegistry()
        with pytest.raises(EmbeddingError, match="unknown model"):
            reg.get("nope")

    def test_default_registry_is_singleton(self):
        assert default_registry() is default_registry()
