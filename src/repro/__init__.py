"""repro — reproduction of "Optimizing Context-Enhanced Relational Joins".

A hybrid vector-relational engine in pure Python/NumPy:

* :mod:`repro.relational` — columnar relational substrate,
* :mod:`repro.embedding` — embedding models (``E_mu``), training, caching,
* :mod:`repro.vector` — cosine kernels (scalar / vectorized / GEMM) and
  quantized representations (int8, product quantization),
* :mod:`repro.index` — flat, IVF, IVF-PQ, and HNSW vector indexes,
* :mod:`repro.core` — the paper's contribution: E-join operators, tensor
  formulation, quantized access paths, cost model, access-path and
  precision selection,
* :mod:`repro.engine` — morsel-driven parallel executor: work-stealing
  scheduling and adaptive, calibration-fed batch sizing,
* :mod:`repro.algebra` — extended relational algebra and optimizer,
* :mod:`repro.query` — declarative query builder,
* :mod:`repro.service` — concurrent query service: admission control,
  cross-query shared-scan batching, plan + semantic result caches, and
  a QoS layer (deadlines, priorities, degraded-precision serving, an
  asyncio submission front),
* :mod:`repro.obs` — unified observability: metrics registry, per-query
  span tracing with a bounded ring, Prometheus/JSONL exporters, and
  ``EXPLAIN ANALYZE``,
* :mod:`repro.workloads` — seeded synthetic workload generators,
* :mod:`repro.bench` — figure/table reproduction harness.

Quickstart::

    import repro
    result = repro.ejoin(left_vectors, right_vectors,
                         repro.ThresholdCondition(0.9))
"""

from .config import ReproConfig, configure, get_config, rng, set_seed
from .core import (
    JoinResult,
    QuantizedRelation,
    ThresholdCondition,
    TopKCondition,
    ejoin,
    join_with_precision,
    quantized_tensor_join,
    tensor_join,
)
from .embedding import EmbeddingModel, FastTextModel, HashingEmbedder
from .engine import BatchPolicy, ExecutionEngine
from .index import FlatIndex, HNSWIndex, IVFPQIndex
from .obs import MetricsRegistry, Trace, Tracer, render_explain
from .query import Engine
from .relational import Catalog, Col, DataType, Field, Schema, Table
from .service import (
    AsyncQueryService,
    QoSParams,
    QueryResponse,
    QueryService,
    SessionHandle,
)

__version__ = "1.1.0"

__all__ = [
    "AsyncQueryService",
    "BatchPolicy",
    "Catalog",
    "Col",
    "DataType",
    "EmbeddingModel",
    "Engine",
    "ExecutionEngine",
    "FastTextModel",
    "Field",
    "FlatIndex",
    "HNSWIndex",
    "HashingEmbedder",
    "IVFPQIndex",
    "JoinResult",
    "MetricsRegistry",
    "QoSParams",
    "QuantizedRelation",
    "QueryResponse",
    "QueryService",
    "ReproConfig",
    "Schema",
    "SessionHandle",
    "Table",
    "ThresholdCondition",
    "TopKCondition",
    "Trace",
    "Tracer",
    "__version__",
    "configure",
    "ejoin",
    "get_config",
    "join_with_precision",
    "quantized_tensor_join",
    "render_explain",
    "rng",
    "set_seed",
    "tensor_join",
]
