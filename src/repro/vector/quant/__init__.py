"""Quantized vector representations: int8 scalar and product quantization.

Compressed access paths trade a bounded amount of score accuracy for a
4-32x cut in scanned bytes; the join/index layers re-rank candidates in
fp32 to recover exactness where it matters (paper Section V-A-2 carried
beyond fp16).
"""

from .base import VectorQuantizer
from .pq import MAX_KS, ProductQuantizer
from .scalar import Int8Quantizer, int8_dot

__all__ = [
    "MAX_KS",
    "Int8Quantizer",
    "ProductQuantizer",
    "VectorQuantizer",
    "int8_dot",
]
