"""Int8 scalar quantization: per-dimension min/max affine codes.

Every dimension ``j`` is affinely mapped onto the signed byte range: a code
``c`` reconstructs to ``lo_j + (c + 128) * scale_j`` where ``scale_j``
spans the fitted min/max at 255 steps (Milvus/FAISS ``SQ8``).  Codes cost
``dim`` bytes per vector — a 4x cut in scanned bytes versus fp32.

Scoring is asymmetric: queries stay fp32 and are folded into the affine
map once (:meth:`Int8Quantizer.prepare_queries`), after which a block of
approximate similarities is one BLAS GEMM over the casted code block —
numerically identical to ``q . decode(code)``.  The symmetric
:func:`int8_dot` kernel computes exact int32 code dot products by chunking
the GEMM so every partial sum stays inside the 2^24 integer window of
fp32, where BLAS accumulation is exact.
"""

from __future__ import annotations

import numpy as np

from ...errors import DimensionalityError
from .base import VectorQuantizer

#: Smallest per-dimension scale; guards constant dimensions.
MIN_SCALE = 1e-12

#: Largest dim-chunk whose int8 dot partial sums stay exactly representable
#: in fp32: ``1024 * 128 * 128 < 2**24``.
_EXACT_CHUNK = 1024


class Int8Quantizer(VectorQuantizer):
    """Per-dimension min/max affine int8 quantizer."""

    def __init__(self, dim: int) -> None:
        super().__init__(dim)
        self.lo: np.ndarray | None = None
        self.scale: np.ndarray | None = None
        self._max_residual = 0.0

    @property
    def bytes_per_code(self) -> int:
        return self.dim

    def fit(self, data: np.ndarray) -> "Int8Quantizer":
        data = self._check_matrix(data)
        if len(data) == 0:
            raise DimensionalityError("cannot fit Int8Quantizer on 0 rows")
        self.lo = data.min(axis=0)
        self.scale = np.maximum((data.max(axis=0) - self.lo) / 255.0, MIN_SCALE)
        self.lo = self.lo.astype(np.float32)
        self.scale = self.scale.astype(np.float32)
        self._fitted = True
        return self

    def encode(self, data: np.ndarray) -> np.ndarray:
        self._require_fitted()
        data = self._check_matrix(data)
        steps = np.rint((data - self.lo) / self.scale) - 128.0
        codes = np.clip(steps, -128, 127).astype(np.int8)
        if len(data):
            # Track actual reconstruction error: encoding rows outside the
            # fitted min/max clips, and the analytic half-step bound no
            # longer covers them — the tracked maximum keeps
            # score_error_bound sound for everything this quantizer has
            # encoded.
            err = self.decode(codes) - data
            norms = np.sqrt(np.einsum("ij,ij->i", err, err))
            self._max_residual = max(self._max_residual, float(norms.max()))
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        self._require_fitted()
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != self.dim:
            raise DimensionalityError(
                f"expected (n, {self.dim}) codes, got shape {codes.shape}"
            )
        return (
            self.lo + (codes.astype(np.float32) + 128.0) * self.scale
        ).astype(np.float32)

    def score_error_bound(self) -> float:
        """``|q.x - q.decode(encode(x))| <= ||scale|| / 2`` for unit ``q``.

        Each reconstructed dimension is off by at most ``scale_j / 2``
        (round-to-nearest over in-range data), so the error vector's norm
        is at most ``||scale|| / 2`` and Cauchy-Schwarz bounds the score
        perturbation.  Encoding out-of-range rows (a pre-fitted quantizer
        applied to new data) clips, so the bound also covers the maximum
        reconstruction error actually observed; a small additive slack
        absorbs fp32 GEMM accumulation noise in the asymmetric scoring
        kernel, which the analytic bound alone would not cover when
        scales are tiny.
        """
        self._require_fitted()
        analytic = float(np.linalg.norm(self.scale)) / 2.0
        return max(analytic, self._max_residual) + 1e-5

    # ------------------------------------------------------------------
    # Asymmetric scoring
    # ------------------------------------------------------------------
    def prepare_queries(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fold fp32 queries into the affine map: ``(weights, bias)``.

        ``approx = weights @ codes.T + bias[:, None]`` equals
        ``queries @ decode(codes).T`` exactly: the affine offset of every
        dimension contracts with the query into a per-query bias.
        """
        self._require_fitted()
        queries = self._check_matrix(queries)
        weights = queries * self.scale
        bias = queries @ (self.lo + 128.0 * self.scale)
        return weights.astype(np.float32), bias.astype(np.float32)

    def scores_block(
        self,
        prepared: tuple[np.ndarray, np.ndarray],
        code_block: np.ndarray,
        *,
        include_bias: bool = True,
    ) -> np.ndarray:
        """Approximate similarity block ``(n_queries, n_codes)``.

        The cast of the int8 block is the only non-BLAS work; its cost is
        amortized over every query row in the block.  ``include_bias=False``
        skips the per-query affine offset — a per-row constant that does
        not affect within-row ranking, so candidate scans drop it and save
        one full pass over the block.
        """
        weights, bias = prepared
        scores = weights @ code_block.astype(np.float32).T
        if include_bias:
            scores += bias[:, None]
        return scores


def int8_dot(codes_a: np.ndarray, codes_b: np.ndarray) -> np.ndarray:
    """Exact int32 dot products of raw int8 codes, via fused fp32 GEMM.

    Products of two int8 values and their partial sums over up to
    :data:`_EXACT_CHUNK` dimensions fit in fp32's 24-bit integer window,
    so each chunk's BLAS GEMM is exact; chunks accumulate in int64 and the
    result is returned as int32 (exact for any practical dimensionality).
    """
    codes_a = np.asarray(codes_a)
    codes_b = np.asarray(codes_b)
    if codes_a.ndim != 2 or codes_b.ndim != 2:
        raise DimensionalityError("int8_dot expects 2-D code matrices")
    if codes_a.shape[1] != codes_b.shape[1]:
        raise DimensionalityError(
            f"code width mismatch: {codes_a.shape[1]} vs {codes_b.shape[1]}"
        )
    dim = codes_a.shape[1]
    acc = np.zeros((codes_a.shape[0], codes_b.shape[0]), dtype=np.int64)
    for d0 in range(0, dim, _EXACT_CHUNK):
        a = codes_a[:, d0 : d0 + _EXACT_CHUNK].astype(np.float32)
        b = codes_b[:, d0 : d0 + _EXACT_CHUNK].astype(np.float32)
        acc += (a @ b.T).astype(np.int64)
    return acc.astype(np.int32)
