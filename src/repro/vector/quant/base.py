"""Vector quantizer interface.

A quantizer compresses fp32 embedding rows into fixed-width codes and
scores queries *asymmetrically*: the query side stays fp32 while the base
side is represented by its codes, so approximate similarities are exactly
``q . decode(code)`` — the standard ADC (asymmetric distance computation)
formulation FAISS/Milvus use for their SQ8/PQ index families.

Two error notions matter downstream:

* :meth:`VectorQuantizer.score_error_bound` — a *sound* upper bound on
  ``|q . x - q . decode(encode(x))|`` for unit-norm queries over the data
  the quantizer was fitted on.  Threshold scans subtract it from the
  predicate so the approximate pass never drops a true match; the exact
  re-rank then restores precision.
* the candidate multiple — top-k scans over-retrieve ``multiple * k``
  approximate candidates and re-rank them in fp32, trading a bounded
  amount of extra exact compute for recall.
"""

from __future__ import annotations

import abc

import numpy as np

from ...errors import DimensionalityError


class VectorQuantizer(abc.ABC):
    """Base class for trained vector quantizers."""

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise DimensionalityError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self._fitted = False

    @property
    def fitted(self) -> bool:
        return self._fitted

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise DimensionalityError(
                f"{type(self).__name__} is not fitted; call fit() first"
            )

    def _check_matrix(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[1] != self.dim:
            raise DimensionalityError(
                f"expected (n, {self.dim}) matrix, got shape {data.shape}"
            )
        return data

    @property
    @abc.abstractmethod
    def bytes_per_code(self) -> int:
        """Stored bytes per encoded vector (the memory-traffic lever)."""

    @abc.abstractmethod
    def fit(self, data: np.ndarray) -> "VectorQuantizer":
        """Train quantization parameters on a representative sample."""

    @abc.abstractmethod
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Compress ``(n, dim)`` fp32 rows into ``(n, code_width)`` codes."""

    @abc.abstractmethod
    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct ``(n, dim)`` fp32 rows from codes."""

    @abc.abstractmethod
    def score_error_bound(self) -> float:
        """Upper bound on ``|q.x - q.decode(encode(x))|`` for unit ``q``.

        Sound for the rows the quantizer was fitted on (the join encodes
        exactly the relation it was fitted against).
        """
