"""Product quantization: per-subspace k-means codebooks with ADC scoring.

The dimension axis is split into ``m`` contiguous subspaces; each subspace
gets a ``ks``-entry codebook trained with plain (non-spherical) k-means,
and a vector's code is the tuple of its nearest centroid ids — ``m`` bytes
per vector, a ``4 * dim / m``-fold cut in scanned bytes (the IVF_PQ family
Milvus/FAISS ship alongside IVF_FLAT).

Scoring is asymmetric distance computation (ADC): a query is expanded once
into per-subspace lookup tables of query-centroid dot products, after
which a code's approximate similarity is the sum of ``m`` table entries —
exactly ``q . decode(code)``, because the dot product is linear over the
subspace decomposition.  Batched scans evaluate the table-sum for a whole
block as one sparse-matrix product: codes become a one-hot CSR matrix over
the ``m * ks`` concatenated codebook axis and the block of approximate
scores is ``onehot @ luts.T`` (``m`` fused multiply-adds per pair instead
of ``dim``).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ...config import get_config
from ...errors import DimensionalityError
from .base import VectorQuantizer

#: Codes are stored as uint8, capping codebook size at 256 entries.
MAX_KS = 256


class ProductQuantizer(VectorQuantizer):
    """Product quantizer over ``m`` contiguous subspaces."""

    def __init__(
        self,
        dim: int,
        *,
        m: int = 8,
        ks: int = MAX_KS,
        kmeans_iters: int = 10,
        max_train_rows: int = 16384,
        seed: int | None = None,
    ) -> None:
        super().__init__(dim)
        if not 1 <= m <= dim:
            raise DimensionalityError(f"m must be in [1, {dim}], got {m}")
        if not 2 <= ks <= MAX_KS:
            raise DimensionalityError(f"ks must be in [2, {MAX_KS}], got {ks}")
        self.m = int(m)
        self.ks = int(ks)
        self.kmeans_iters = int(kmeans_iters)
        self.max_train_rows = int(max_train_rows)
        seed = get_config().stream_seed("pq") if seed is None else seed
        self._rng = np.random.default_rng(seed)
        # Contiguous subspace boundaries (np.array_split semantics).
        edges = np.linspace(0, dim, self.m + 1).astype(int)
        self.subspaces: list[tuple[int, int]] = [
            (int(edges[j]), int(edges[j + 1])) for j in range(self.m)
        ]
        self.codebooks: list[np.ndarray] = []
        self.ks_eff = self.ks
        self._max_residual = 0.0
        self._mean_residual = 0.0

    @property
    def bytes_per_code(self) -> int:
        return self.m

    def fit(self, data: np.ndarray) -> "ProductQuantizer":
        from ...index.ivf import kmeans  # local import: index layer imports vector

        data = self._check_matrix(data)
        if len(data) == 0:
            raise DimensionalityError("cannot fit ProductQuantizer on 0 rows")
        train = data
        if len(train) > self.max_train_rows:
            pick = self._rng.choice(len(train), self.max_train_rows, replace=False)
            train = train[np.sort(pick)]
        self.ks_eff = min(self.ks, len(train))
        self.codebooks = [
            kmeans(
                np.ascontiguousarray(train[:, a:b]),
                self.ks_eff,
                n_iters=self.kmeans_iters,
                rng=self._rng,
                spherical=False,
            )
            for a, b in self.subspaces
        ]
        self._fitted = True
        # Residuals over the full fitted relation keep the error bound
        # sound even when codebooks were trained on a subsample.
        self._track_residuals(data, self.encode(data, _track=False))
        return self

    def encode(self, data: np.ndarray, *, _track: bool = True) -> np.ndarray:
        self._require_fitted()
        data = self._check_matrix(data)
        codes = np.empty((len(data), self.m), dtype=np.uint8)
        for j, (a, b) in enumerate(self.subspaces):
            cb = self.codebooks[j]
            # argmin ||x - c||^2 == argmax (x.c - ||c||^2 / 2)
            sims = data[:, a:b] @ cb.T - 0.5 * np.einsum("ij,ij->i", cb, cb)
            codes[:, j] = np.argmax(sims, axis=1).astype(np.uint8)
        if _track and len(data):
            self._track_residuals(data, codes)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        self._require_fitted()
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != self.m:
            raise DimensionalityError(
                f"expected (n, {self.m}) codes, got shape {codes.shape}"
            )
        out = np.empty((len(codes), self.dim), dtype=np.float32)
        for j, (a, b) in enumerate(self.subspaces):
            out[:, a:b] = self.codebooks[j][codes[:, j].astype(np.intp)]
        return out

    def _track_residuals(self, data: np.ndarray, codes: np.ndarray) -> None:
        err = data - self.decode(codes)
        norms = np.sqrt(np.einsum("ij,ij->i", err, err))
        if len(norms):
            self._max_residual = max(self._max_residual, float(norms.max()))
            self._mean_residual = float(norms.mean())

    def score_error_bound(self) -> float:
        """``|q.x - q.decode(encode(x))| <= max ||x - x_hat||`` for unit q.

        The maximum is tracked over every row this quantizer has encoded,
        so the bound is sound for any relation quantized through it.
        """
        self._require_fitted()
        # Small additive slack absorbs fp32 accumulation noise in ADC GEMMs.
        return self._max_residual + 1e-5

    @property
    def mean_residual(self) -> float:
        """Mean reconstruction error of the last encoded batch (diagnostic)."""
        return self._mean_residual

    # ------------------------------------------------------------------
    # Asymmetric scoring
    # ------------------------------------------------------------------
    def lookup_tables(self, queries: np.ndarray) -> np.ndarray:
        """Per-query LUTs over the concatenated codebook axis.

        Returns ``(n_queries, m * ks_eff)``: entry ``[i, j * ks_eff + c]``
        is the dot product of query ``i``'s subspace ``j`` with centroid
        ``c`` — all the information ADC needs about the query.
        """
        self._require_fitted()
        queries = self._check_matrix(queries)
        luts = [
            queries[:, a:b] @ self.codebooks[j].T
            for j, (a, b) in enumerate(self.subspaces)
        ]
        return np.concatenate(luts, axis=1).astype(np.float32)

    def onehot(self, codes: np.ndarray) -> sparse.csr_matrix:
        """One-hot CSR over the concatenated codebook axis.

        Built once per encoded relation; ``onehot @ luts.T`` then computes
        a whole block of ADC scores as a single sparse product with ``m``
        multiply-adds per pair.
        """
        self._require_fitted()
        codes = np.asarray(codes)
        n = len(codes)
        cols = codes.astype(np.int32) + (
            np.arange(self.m, dtype=np.int32) * self.ks_eff
        )
        return sparse.csr_matrix(
            (
                np.ones(n * self.m, dtype=np.float32),
                cols.ravel(),
                np.arange(0, n * self.m + 1, self.m),
            ),
            shape=(n, self.m * self.ks_eff),
        )

    def adc_scores(self, queries: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Dense ``(n_queries, n_codes)`` ADC block (convenience path)."""
        luts = self.lookup_tables(queries)
        return np.asarray((self.onehot(codes) @ luts.T).T)
