"""Top-k selection over similarity scores."""

from __future__ import annotations

import numpy as np

from ..errors import DimensionalityError


def top_k_indices(scores: np.ndarray, k: int, *, descending: bool = True) -> np.ndarray:
    """Indices of the ``k`` best scores, best-first, ties broken by index.

    Uses ``argpartition`` for O(n + k log k) selection, matching how a
    vector index's top-k retrieval behaves (paper Section VI-E requires a
    mandatory top-k for the index-based join).
    """
    scores = np.asarray(scores)
    if scores.ndim != 1:
        raise DimensionalityError(f"expected 1-D scores, got ndim={scores.ndim}")
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    n = scores.shape[0]
    k = min(k, n)
    keyed = -scores if descending else scores
    if k < n:
        # argpartition alone breaks boundary ties arbitrarily; for a
        # deterministic result (ties broken by smallest index) include all
        # strictly-better entries, then fill from the tied entries in index
        # order.
        kth_value = np.partition(keyed, k - 1)[k - 1]
        strictly = np.nonzero(keyed < kth_value)[0]
        ties = np.nonzero(keyed == kth_value)[0]
        part = np.concatenate([strictly, ties[: k - len(strictly)]])
    else:
        part = np.arange(n)
    # Stable best-first ordering with deterministic tie-breaks.
    order = np.lexsort((part, keyed[part]))
    return part[order].astype(np.int64)


def top_k_per_row(
    score_matrix: np.ndarray, k: int, *, descending: bool = True
) -> np.ndarray:
    """Row-wise top-k indices of an ``(n, m)`` score matrix → ``(n, k)``.

    If ``m < k`` the result has ``m`` columns.
    """
    score_matrix = np.asarray(score_matrix)
    if score_matrix.ndim != 2:
        raise DimensionalityError(
            f"expected 2-D scores, got ndim={score_matrix.ndim}"
        )
    n, m = score_matrix.shape
    k = min(k, m)
    if k <= 0 or n == 0:
        return np.empty((n, 0), dtype=np.int64)
    keyed = -score_matrix if descending else score_matrix
    if k == m:
        order = np.argsort(keyed, axis=1, kind="stable")
        return order[:, :k].astype(np.int64)
    # Fast path: argpartition selects k candidates per row in O(m); ties at
    # the k-th value may be broken arbitrarily, so rows whose boundary tie
    # extends beyond the selection are repaired with the deterministic 1-D
    # routine (ties broken by smallest index) — keeping block-merge results
    # independent of batch shape without paying a full row sort.
    part = np.argpartition(keyed, k - 1, axis=1)[:, :k]
    part_keys = np.take_along_axis(keyed, part, axis=1)
    kth = part_keys.max(axis=1, keepdims=True)
    tied_total = (keyed == kth).sum(axis=1)
    tied_selected = (part_keys == kth).sum(axis=1)
    ambiguous = np.nonzero(tied_total > tied_selected)[0]
    order = np.lexsort((part, part_keys), axis=1)
    out = np.take_along_axis(part, order, axis=1).astype(np.int64)
    for row in ambiguous:
        out[row] = top_k_indices(score_matrix[row], k, descending=descending)
    return out
