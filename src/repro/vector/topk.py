"""Top-k selection over similarity scores."""

from __future__ import annotations

import numpy as np

from ..errors import DimensionalityError


def top_k_indices(scores: np.ndarray, k: int, *, descending: bool = True) -> np.ndarray:
    """Indices of the ``k`` best scores, best-first, ties broken by index.

    Uses ``argpartition`` for O(n + k log k) selection, matching how a
    vector index's top-k retrieval behaves (paper Section VI-E requires a
    mandatory top-k for the index-based join).
    """
    scores = np.asarray(scores)
    if scores.ndim != 1:
        raise DimensionalityError(f"expected 1-D scores, got ndim={scores.ndim}")
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    n = scores.shape[0]
    k = min(k, n)
    keyed = -scores if descending else scores
    if k < n:
        # argpartition alone breaks boundary ties arbitrarily; for a
        # deterministic result (ties broken by smallest index) include all
        # strictly-better entries, then fill from the tied entries in index
        # order.
        kth_value = np.partition(keyed, k - 1)[k - 1]
        strictly = np.nonzero(keyed < kth_value)[0]
        ties = np.nonzero(keyed == kth_value)[0]
        part = np.concatenate([strictly, ties[: k - len(strictly)]])
    else:
        part = np.arange(n)
    # Stable best-first ordering with deterministic tie-breaks.
    order = np.lexsort((part, keyed[part]))
    return part[order].astype(np.int64)


def top_k_per_row(
    score_matrix: np.ndarray, k: int, *, descending: bool = True
) -> np.ndarray:
    """Row-wise top-k indices of an ``(n, m)`` score matrix → ``(n, k)``.

    If ``m < k`` the result has ``m`` columns.
    """
    score_matrix = np.asarray(score_matrix)
    if score_matrix.ndim != 2:
        raise DimensionalityError(
            f"expected 2-D scores, got ndim={score_matrix.ndim}"
        )
    n, m = score_matrix.shape
    k = min(k, m)
    if k <= 0 or n == 0:
        return np.empty((n, 0), dtype=np.int64)
    keyed = -score_matrix if descending else score_matrix
    if k == m:
        order = np.argsort(keyed, axis=1, kind="stable")
        return order[:, :k].astype(np.int64)
    # Fast path: argpartition selects k candidates per row in O(m); ties at
    # the k-th value may be broken arbitrarily, so rows whose boundary tie
    # extends beyond the selection are repaired with the deterministic 1-D
    # routine (ties broken by smallest index) — keeping block-merge results
    # independent of batch shape without paying a full row sort.
    part = np.argpartition(keyed, k - 1, axis=1)[:, :k]
    part_keys = np.take_along_axis(keyed, part, axis=1)
    kth = part_keys.max(axis=1, keepdims=True)
    tied_total = (keyed == kth).sum(axis=1)
    tied_selected = (part_keys == kth).sum(axis=1)
    ambiguous = np.nonzero(tied_total > tied_selected)[0]
    order = np.lexsort((part, part_keys), axis=1)
    out = np.take_along_axis(part, order, axis=1).astype(np.int64)
    for row in ambiguous:
        out[row] = top_k_indices(score_matrix[row], k, descending=descending)
    return out


class StreamingTopK:
    """Bounded streaming top-k merge over blockwise score production.

    Holds at most ``k`` ``(right_id, score)`` candidates per left row and
    folds each incoming block into that state immediately, so a blocked
    top-k join never materializes more than one block's candidates beyond
    the running winners — the per-worker analogue of a bounded merge heap,
    kept in NumPy arrays so the merge itself is vectorized.

    Candidates arriving earlier win score ties (matching a full-matrix
    ``top_k_per_row`` when blocks stream in ascending right-id order).
    """

    def __init__(self, n_rows: int, k: int) -> None:
        if n_rows < 0:
            raise DimensionalityError(f"n_rows must be >= 0, got {n_rows}")
        if k < 1:
            raise DimensionalityError(f"k must be >= 1, got {k}")
        self.n_rows = n_rows
        self.k = k
        self._ids: np.ndarray | None = None
        self._scores: np.ndarray | None = None

    @staticmethod
    def state_bytes_per_row(k: int) -> int:
        """Upper bound on merge-state bytes held per left row.

        At :meth:`update`'s transient peak, four ``k``-wide candidate sets
        (each an int64 id plus an FP32 score) are alive simultaneously:
        the retained winners, the incoming pruned block, and the 2k-wide
        concatenation of both.
        """
        return 4 * k * (8 + 4)

    def update(self, ids: np.ndarray, scores: np.ndarray) -> None:
        """Fold a candidate batch ``(n_rows, m)`` into the running top-k."""
        ids = np.asarray(ids)
        scores = np.asarray(scores)
        if ids.shape != scores.shape or ids.ndim != 2:
            raise DimensionalityError(
                f"candidate shapes must match and be 2-D, got {ids.shape} "
                f"and {scores.shape}"
            )
        if ids.shape[0] != self.n_rows:
            raise DimensionalityError(
                f"expected {self.n_rows} rows, got {ids.shape[0]}"
            )
        if ids.shape[1] > self.k:
            keep = top_k_per_row(scores, self.k)
            ids = np.take_along_axis(ids, keep, axis=1)
            scores = np.take_along_axis(scores, keep, axis=1)
        if self._ids is None:
            self._ids = ids.astype(np.int64, copy=True)
            self._scores = scores.astype(np.float32, copy=True)
            return
        merged_ids = np.concatenate([self._ids, ids.astype(np.int64)], axis=1)
        merged_scores = np.concatenate(
            [self._scores, scores.astype(np.float32)], axis=1
        )
        keep = top_k_per_row(merged_scores, self.k)
        self._ids = np.take_along_axis(merged_ids, keep, axis=1)
        self._scores = np.take_along_axis(merged_scores, keep, axis=1)

    def update_block(self, scores: np.ndarray, right_offset: int) -> None:
        """Fold one dense score block whose columns start at ``right_offset``."""
        scores = np.asarray(scores)
        if scores.ndim != 2:
            raise DimensionalityError(
                f"expected 2-D scores, got ndim={scores.ndim}"
            )
        local = top_k_per_row(scores, self.k)
        local_scores = np.take_along_axis(scores, local, axis=1)
        self.update(local.astype(np.int64) + right_offset, local_scores)

    @property
    def width(self) -> int:
        """Current number of retained candidates per row (``<= k``)."""
        return 0 if self._ids is None else self._ids.shape[1]

    def merge(self, other: "StreamingTopK") -> "StreamingTopK":
        """Fold another heap's state into this one; returns ``self``.

        Shard workers build independent heaps over disjoint right-id
        ranges; the front door merges them in whatever order replies
        arrive.  Arrival order must therefore not affect the result, so
        the merge re-sorts the union by ``(score desc, id asc)`` per row
        and keeps the first ``k`` — an associative, commutative rule.
        It also reproduces serial tie-breaks exactly: a serial pass over
        ascending right-id blocks keeps the earliest (smallest-id)
        candidate of any score tie, which is precisely ``id asc``.
        """
        if other.n_rows != self.n_rows:
            raise DimensionalityError(
                f"cannot merge heaps over {other.n_rows} rows into "
                f"{self.n_rows} rows"
            )
        if other._ids is None or other._scores is None:
            return self
        if self._ids is None or self._scores is None:
            all_ids = other._ids.astype(np.int64)
            all_scores = other._scores.astype(np.float32)
        else:
            all_ids = np.concatenate(
                [self._ids, other._ids.astype(np.int64)], axis=1
            )
            all_scores = np.concatenate(
                [self._scores, other._scores.astype(np.float32)], axis=1
            )
        # lexsort keys are least-significant first: primary score desc,
        # secondary id asc — a total order, so duplicate-score candidates
        # from different shards land identically regardless of merge order.
        order = np.lexsort((all_ids, -all_scores), axis=1)
        keep = order[:, : self.k]
        self._ids = np.take_along_axis(all_ids, keep, axis=1).astype(
            np.int64, copy=True
        )
        self._scores = np.take_along_axis(all_scores, keep, axis=1).astype(
            np.float32, copy=True
        )
        return self

    def finalize(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(ids, scores)`` of shape ``(n_rows, <=k)``, best first."""
        if self._ids is None or self._scores is None:
            return (
                np.empty((self.n_rows, 0), dtype=np.int64),
                np.empty((self.n_rows, 0), dtype=np.float32),
            )
        return self._ids, self._scores
