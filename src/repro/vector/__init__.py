"""Vector compute kernels: cosine similarity, norms, top-k selection."""

from .kernels import (
    Kernel,
    cosine_matrix,
    cosine_matrix_gemm,
    cosine_matrix_scalar,
    cosine_matrix_vectorized,
    cosine_scalar,
    cosine_vectorized,
    dot_scalar,
    stable_dot_scores,
)
from .norms import is_normalized, l2_norms, normalize_rows, normalize_vector
from .quant import Int8Quantizer, ProductQuantizer, VectorQuantizer, int8_dot
from .topk import StreamingTopK, top_k_indices, top_k_per_row

__all__ = [
    "Int8Quantizer",
    "Kernel",
    "ProductQuantizer",
    "VectorQuantizer",
    "int8_dot",
    "StreamingTopK",
    "cosine_matrix",
    "cosine_matrix_gemm",
    "cosine_matrix_scalar",
    "cosine_matrix_vectorized",
    "cosine_scalar",
    "cosine_vectorized",
    "dot_scalar",
    "is_normalized",
    "l2_norms",
    "normalize_rows",
    "normalize_vector",
    "stable_dot_scores",
    "top_k_indices",
    "top_k_per_row",
]
