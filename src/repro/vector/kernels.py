"""Cosine-similarity compute kernels: the physical-optimization knob.

The paper contrasts scalar C++ loops with AVX-SIMD kernels (Section V-A-3,
Figures 8-9).  In this Python reproduction the same contrast is expressed
as:

* ``SCALAR`` ("NO-SIMD"): a pure-Python per-element loop — one interpreted
  multiply-add per float, the analogue of unvectorized scalar code.
* ``VECTORIZED`` ("SIMD"): NumPy array expressions that dispatch to
  compiled, hardware-vectorized loops.
* ``GEMM``: BLAS matrix-matrix multiplication, used by the tensor join.

All kernels compute the same mathematical result; tests assert their
equivalence, benchmarks their performance ordering.
"""

from __future__ import annotations

import enum
import math

import numpy as np

from ..errors import DimensionalityError
from ..reliability.faults import maybe_inject
from .norms import ZERO_NORM_EPS


class Kernel(enum.Enum):
    """Available cosine computation strategies."""

    SCALAR = "scalar"        # pure-Python loops ("NO-SIMD")
    VECTORIZED = "vectorized"  # NumPy elementwise ("SIMD")
    GEMM = "gemm"            # BLAS matrix multiply (tensor formulation)


def _check_pair(a: np.ndarray, b: np.ndarray) -> None:
    if a.ndim != 1 or b.ndim != 1:
        raise DimensionalityError(
            f"expected 1-D vectors, got ndim={a.ndim} and ndim={b.ndim}"
        )
    if a.shape[0] != b.shape[0]:
        raise DimensionalityError(
            f"dimensionality mismatch: {a.shape[0]} vs {b.shape[0]}"
        )


def dot_scalar(a: np.ndarray, b: np.ndarray) -> float:
    """Pure-Python dot product (the NO-SIMD kernel)."""
    _check_pair(a, b)
    total = 0.0
    av = a.tolist()
    bv = b.tolist()
    for x, y in zip(av, bv):
        total += x * y
    return total


def cosine_scalar(a: np.ndarray, b: np.ndarray) -> float:
    """Pure-Python cosine similarity between two vectors."""
    _check_pair(a, b)
    dot = 0.0
    na = 0.0
    nb = 0.0
    for x, y in zip(a.tolist(), b.tolist()):
        dot += x * y
        na += x * x
        nb += y * y
    denom = math.sqrt(na) * math.sqrt(nb)
    if denom < ZERO_NORM_EPS:
        return 0.0
    return dot / denom


def cosine_vectorized(a: np.ndarray, b: np.ndarray) -> float:
    """NumPy cosine similarity between two vectors (the SIMD kernel)."""
    _check_pair(a, b)
    dot = float(a @ b)
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom < ZERO_NORM_EPS:
        return 0.0
    return dot / denom


def cosine_matrix_scalar(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """All-pairs cosine via pure-Python loops: ``(n, m)`` result.

    Deliberately interpreted row-by-row — this is the performance baseline
    for the "NO-SIMD" series in Figure 8.
    """
    left = np.asarray(left)
    right = np.asarray(right)
    if left.ndim != 2 or right.ndim != 2 or left.shape[1] != right.shape[1]:
        raise DimensionalityError(
            f"incompatible shapes {left.shape} x {right.shape}"
        )
    out = np.empty((left.shape[0], right.shape[0]), dtype=np.float32)
    for i in range(left.shape[0]):
        for j in range(right.shape[0]):
            out[i, j] = cosine_scalar(left[i], right[j])
    return out


def cosine_matrix_vectorized(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """All-pairs cosine via row-at-a-time NumPy expressions.

    This models the paper's SIMD NLJ: the outer loops stay (per-tuple
    processing), but each inner similarity is a hardware-vectorized kernel.
    One side is processed a vector at a time, so there is no GEMM-level
    batching — that is the tensor join's contribution (Figure 12's
    "non-batched" series).
    """
    left = np.asarray(left, dtype=np.float32)
    right = np.asarray(right, dtype=np.float32)
    if left.ndim != 2 or right.ndim != 2 or left.shape[1] != right.shape[1]:
        raise DimensionalityError(
            f"incompatible shapes {left.shape} x {right.shape}"
        )
    right_norms = np.sqrt(np.einsum("ij,ij->i", right, right))
    right_norms = np.where(right_norms < ZERO_NORM_EPS, 1.0, right_norms)
    out = np.empty((left.shape[0], right.shape[0]), dtype=np.float32)
    for i in range(left.shape[0]):
        row = left[i]
        rn = float(np.linalg.norm(row))
        if rn < ZERO_NORM_EPS:
            out[i, :] = 0.0
            continue
        out[i, :] = (right @ row) / (right_norms * rn)
    return out


def cosine_matrix_gemm(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """All-pairs cosine via one BLAS GEMM (the tensor formulation).

    Normalizes both operands and computes ``L @ R.T`` — exactly the matrix
    formulation of Figure 6.
    """
    from .norms import normalize_rows  # local import avoids cycle at module load

    left_n = normalize_rows(left)
    right_n = normalize_rows(right)
    if left_n.shape[1] != right_n.shape[1]:
        raise DimensionalityError(
            f"incompatible shapes {left_n.shape} x {right_n.shape}"
        )
    return left_n @ right_n.T


def stable_dot_scores(rows: np.ndarray, vec: np.ndarray) -> np.ndarray:
    """Shape-stable exact dot products of ``rows`` against ``vec``.

    BLAS kernels pick shape-dependent micro-kernels, so the same logical
    dot product comes out with different last-ulp roundings depending on
    how many rows/columns share the call — which breaks any contract that
    demands identical scores from different access paths (e.g. a serial
    scan vs a cross-query shared scan).  This kernel defines the scoring
    contract instead: each row's score is the float64 elementwise product
    pairwise-summed along the row, cast back to fp32.  The reduction is
    per-row independent and depends only on the dimensionality, so the
    result is bit-identical no matter how the rows were batched, gathered,
    or blocked.  O(len(rows) * d) — intended for the sparse set of rows an
    approximate prescreen already selected, not for full scans.
    """
    maybe_inject("kernel.rescore")
    rows = np.asarray(rows)
    vec = np.asarray(vec)
    if rows.ndim != 2 or vec.ndim != 1 or rows.shape[1] != vec.shape[0]:
        raise DimensionalityError(
            f"incompatible shapes {rows.shape} x {vec.shape}"
        )
    products = np.ascontiguousarray(rows, dtype=np.float64) * vec.astype(
        np.float64
    )
    return products.sum(axis=1).astype(np.float32)


_MATRIX_KERNELS = {
    Kernel.SCALAR: cosine_matrix_scalar,
    Kernel.VECTORIZED: cosine_matrix_vectorized,
    Kernel.GEMM: cosine_matrix_gemm,
}


def cosine_matrix(
    left: np.ndarray, right: np.ndarray, *, kernel: Kernel = Kernel.GEMM
) -> np.ndarray:
    """Dispatch an all-pairs cosine computation to the chosen kernel.

    Chaos-testing injection site ``kernel.gemm``: the fault (if any)
    fires *before* the BLAS call, so a retried invocation recomputes the
    identical result from the unchanged operands.
    """
    maybe_inject("kernel.gemm")
    return _MATRIX_KERNELS[kernel](left, right)
