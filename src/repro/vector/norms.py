"""Vector normalization utilities.

Cosine similarity over unit-normalized vectors is a plain dot product
(paper Section IV-C); the tensor join therefore normalizes inputs once and
runs GEMM.  These helpers centralise that normalization and guard against
zero vectors.
"""

from __future__ import annotations

import numpy as np

from ..errors import DimensionalityError

#: Norm below which a vector is treated as zero (cannot be normalized).
ZERO_NORM_EPS = 1e-12


def l2_norms(matrix: np.ndarray) -> np.ndarray:
    """Row-wise L2 norms of a ``(n, d)`` matrix."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise DimensionalityError(f"expected 2-D matrix, got ndim={matrix.ndim}")
    return np.sqrt(np.einsum("ij,ij->i", matrix, matrix))


def normalize_rows(matrix: np.ndarray, *, copy: bool = True) -> np.ndarray:
    """Unit-normalize each row; zero rows are left as zeros.

    Leaving zero rows as zeros (rather than raising) matches similarity
    semantics: a zero embedding has similarity 0 with everything.
    """
    matrix = np.array(matrix, dtype=np.float32, copy=copy)
    norms = l2_norms(matrix)
    safe = np.where(norms < ZERO_NORM_EPS, 1.0, norms)
    matrix /= safe[:, None].astype(np.float32)
    matrix[norms < ZERO_NORM_EPS] = 0.0
    return matrix


def normalize_vector(vec: np.ndarray) -> np.ndarray:
    """Unit-normalize a single vector (zero stays zero)."""
    vec = np.asarray(vec, dtype=np.float32)
    if vec.ndim != 1:
        raise DimensionalityError(f"expected 1-D vector, got ndim={vec.ndim}")
    norm = float(np.sqrt(vec @ vec))
    if norm < ZERO_NORM_EPS:
        return np.zeros_like(vec)
    return vec / np.float32(norm)


def is_normalized(matrix: np.ndarray, *, atol: float = 1e-3) -> bool:
    """True if every non-zero row has unit norm within tolerance."""
    norms = l2_norms(np.asarray(matrix, dtype=np.float32))
    nonzero = norms > ZERO_NORM_EPS
    if not np.any(nonzero):
        return True
    return bool(np.allclose(norms[nonzero], 1.0, atol=atol))
