"""From-scratch FastText-style subword embedding model.

Reimplements the model family the paper uses as ``mu`` (Bojanowski et al.,
refs [45][46]): each word is the average of hashed character-n-gram bucket
vectors, trained with skip-gram + negative sampling (SGNS) over a corpus.
Properties the paper relies on and which this implementation preserves:

* **out-of-vocabulary embedding** — any string decomposes into n-grams, so
  unseen words (and misspellings) still embed near their neighbours,
* **misspelling resilience** — shared subwords pull edit-variants together,
* **trainable similarity context** — co-occurrence shapes the space, so
  same-topic words (Table II) become nearest neighbours.

Pure NumPy; no external ML dependency.
"""

from __future__ import annotations

import numpy as np

from ..config import get_config
from ..errors import ModelNotFittedError, VocabularyError
from .base import EmbeddingModel
from .hashing_model import char_ngrams, hash_ngram


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class FastTextModel(EmbeddingModel):
    """Trainable subword skip-gram embedding model.

    Usage::

        model = FastTextModel(dim=64)
        model.fit(corpus.sentences, epochs=3)
        vec = model.embed("postgres")          # in-vocabulary
        vec2 = model.embed("postgrse")         # OOV misspelling, still close
        model.nearest_neighbors("dbms", k=15)  # Table II reproduction
    """

    def __init__(
        self,
        dim: int = 64,
        *,
        n_buckets: int = 1 << 14,
        n_min: int = 3,
        n_max: int = 5,
        window: int = 4,
        negatives: int = 5,
        learning_rate: float = 0.05,
        seed: int | None = None,
        **kwargs,
    ) -> None:
        super().__init__(dim, **kwargs)
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be positive, got {n_buckets}")
        if not 1 <= n_min <= n_max:
            raise ValueError(f"invalid n-gram range [{n_min}, {n_max}]")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if negatives < 0:
            raise ValueError(f"negatives must be >= 0, got {negatives}")
        self.n_buckets = int(n_buckets)
        self.n_min = int(n_min)
        self.n_max = int(n_max)
        self.window = int(window)
        self.negatives = int(negatives)
        self.learning_rate = float(learning_rate)
        self._seed = (
            get_config().stream_seed("fasttext") if seed is None else int(seed)
        )
        rng = np.random.default_rng(self._seed)
        # Input matrix: one row per n-gram bucket (shared across words).
        self._w_in = (
            (rng.random((self.n_buckets, dim)) - 0.5) / dim
        ).astype(np.float32)
        self._fitted = False
        self._vocab: list[str] = []
        self._word_to_id: dict[str, int] = {}
        self._word_grams: list[np.ndarray] = []
        self._w_out: np.ndarray | None = None
        self._neg_table: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Vocabulary / subword machinery
    # ------------------------------------------------------------------
    def _gram_ids(self, word: str) -> np.ndarray:
        grams = char_ngrams(word.lower(), self.n_min, self.n_max)
        ids = sorted({hash_ngram(g, self.n_buckets) for g in grams})
        return np.asarray(ids, dtype=np.int64)

    def _build_vocab(self, sentences: list[list[str]], min_count: int) -> np.ndarray:
        counts: dict[str, int] = {}
        for sent in sentences:
            for token in sent:
                token = token.lower()
                counts[token] = counts.get(token, 0) + 1
        self._vocab = sorted(w for w, c in counts.items() if c >= min_count)
        if not self._vocab:
            raise VocabularyError(
                f"no word occurs >= {min_count} times; corpus too small"
            )
        self._word_to_id = {w: i for i, w in enumerate(self._vocab)}
        self._word_grams = [self._gram_ids(w) for w in self._vocab]
        freqs = np.asarray(
            [counts[w] for w in self._vocab], dtype=np.float64
        )
        return freqs

    def _build_negative_table(
        self, freqs: np.ndarray, table_size: int = 1 << 17
    ) -> None:
        """Unigram^0.75 negative-sampling table (word2vec convention)."""
        probs = freqs**0.75
        probs /= probs.sum()
        counts = np.maximum(1, np.round(probs * table_size).astype(np.int64))
        self._neg_table = np.repeat(
            np.arange(len(self._vocab), dtype=np.int64), counts
        )

    # ------------------------------------------------------------------
    # Training (SGNS)
    # ------------------------------------------------------------------
    def fit(
        self,
        sentences: list[list[str]],
        *,
        epochs: int = 3,
        min_count: int = 1,
        verbose: bool = False,
    ) -> "FastTextModel":
        """Train on tokenized sentences with skip-gram + negative sampling."""
        freqs = self._build_vocab(sentences, min_count)
        self._build_negative_table(freqs)
        rng = np.random.default_rng(self._seed + 1)
        self._w_out = np.zeros((len(self._vocab), self.dim), dtype=np.float32)
        neg_table = self._neg_table
        assert neg_table is not None

        lr = self.learning_rate
        for epoch in range(epochs):
            order = rng.permutation(len(sentences))
            for si in order:
                tokens = [
                    self._word_to_id[t.lower()]
                    for t in sentences[si]
                    if t.lower() in self._word_to_id
                ]
                n = len(tokens)
                for pos, center in enumerate(tokens):
                    grams = self._word_grams[center]
                    h = self._w_in[grams].mean(axis=0)  # hidden vector
                    span = int(rng.integers(1, self.window + 1))
                    lo = max(0, pos - span)
                    hi = min(n, pos + span + 1)
                    grad_h = np.zeros(self.dim, dtype=np.float32)
                    for cpos in range(lo, hi):
                        if cpos == pos:
                            continue
                        context = tokens[cpos]
                        targets = [context]
                        labels = [1.0]
                        if self.negatives:
                            negs = neg_table[
                                rng.integers(len(neg_table), size=self.negatives)
                            ]
                            for neg in negs:
                                if neg != context:
                                    targets.append(int(neg))
                                    labels.append(0.0)
                        t_ids = np.asarray(targets, dtype=np.int64)
                        t_vecs = self._w_out[t_ids]
                        scores = _sigmoid(t_vecs @ h)
                        errs = (scores - np.asarray(labels, dtype=np.float32)) * lr
                        grad_h += errs @ t_vecs
                        self._w_out[t_ids] -= errs[:, None] * h[None, :]
                    # Distribute the hidden gradient over the word's grams.
                    self._w_in[grams] -= grad_h[None, :] / len(grams)
            if verbose:
                print(f"[fasttext] epoch {epoch + 1}/{epochs} done")
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def vocabulary(self) -> list[str]:
        return list(self._vocab)

    def _embed_batch(self, items: list) -> np.ndarray:
        if not self._fitted:
            raise ModelNotFittedError(
                "FastTextModel.fit() must be called before embedding"
            )
        out = np.empty((len(items), self.dim), dtype=np.float32)
        for row, item in enumerate(items):
            word = str(item).lower()
            wid = self._word_to_id.get(word)
            grams = (
                self._word_grams[wid] if wid is not None else self._gram_ids(word)
            )
            out[row] = self._w_in[grams].mean(axis=0)
        return out

    def nearest_neighbors(
        self, word: str, k: int = 15, *, exclude_self: bool = True
    ) -> list[tuple[str, float]]:
        """Top-k most cosine-similar vocabulary words (Table II query)."""
        if not self._fitted:
            raise ModelNotFittedError("fit() the model before querying neighbours")
        query = self.embed(word)
        vocab_matrix = self.embed_batch(self._vocab)
        sims = vocab_matrix @ query
        order = np.argsort(-sims, kind="stable")
        results: list[tuple[str, float]] = []
        for idx in order:
            candidate = self._vocab[int(idx)]
            if exclude_self and candidate == word.lower():
                continue
            results.append((candidate, float(sims[int(idx)])))
            if len(results) >= k:
                break
        return results
