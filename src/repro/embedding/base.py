"""Embedding model interface: the ``E_mu`` operator's model side.

The paper's cost model (Section IV-A) charges ``M`` per model invocation;
whether the naive E-NLJ pays ``|R|*|S|*M`` or the prefetch formulation pays
``(|R|+|S|)*M`` is *the* logical optimization of the paper.  To make that
claim testable (not just timeable), every model tracks:

* ``calls`` — number of embed invocations (batch = one call per item, to
  mirror per-tuple model access in the paper's cost model),
* ``items`` — total items embedded,
* plus an optional simulated per-call latency so experiments can dial the
  model cost M relative to A and C (lookup table vs. deep network vs.
  model-as-a-service, all discussed in Section IV-A).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import EmbeddingError
from ..vector.norms import normalize_rows


@dataclass
class ModelUsage:
    """Cost-model counters for one embedding model instance."""

    calls: int = 0
    items: int = 0
    seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    def reset(self) -> None:
        self.calls = 0
        self.items = 0
        self.seconds = 0.0
        self.extra.clear()


class EmbeddingModel(abc.ABC):
    """Abstract embedding model ``mu``: maps context-rich items to tensors.

    Subclasses implement :meth:`_embed_batch`; the public :meth:`embed` /
    :meth:`embed_batch` wrappers maintain usage counters and the optional
    simulated latency, and guarantee unit-normalized float32 output (cosine
    similarity then reduces to a dot product, Section IV-C).
    """

    def __init__(
        self,
        dim: int,
        *,
        name: str = "",
        simulated_latency_s: float = 0.0,
        normalize: bool = True,
    ) -> None:
        if dim <= 0:
            raise EmbeddingError(f"embedding dim must be positive, got {dim}")
        self.dim = int(dim)
        self.name = name or type(self).__name__
        self.simulated_latency_s = float(simulated_latency_s)
        self.normalize = bool(normalize)
        self.usage = ModelUsage()

    # -- to be provided by subclasses -----------------------------------
    @abc.abstractmethod
    def _embed_batch(self, items: list) -> np.ndarray:
        """Embed items into an ``(len(items), dim)`` float32 matrix."""

    # -- public API ------------------------------------------------------
    def embed(self, item) -> np.ndarray:
        """Embed a single item (counts as one model call)."""
        return self.embed_batch([item])[0]

    def embed_batch(self, items: list) -> np.ndarray:
        """Embed many items.

        Counts ``len(items)`` model calls: the paper's per-tuple model cost
        ``M`` is charged per embedded tuple regardless of batching, which is
        what makes the naive join's quadratic model cost visible.
        """
        items = list(items)
        start = time.perf_counter()
        if self.simulated_latency_s > 0.0 and items:
            # Model cost on the critical path (lookup table / network / paid
            # API): simulate one latency unit per item.
            time.sleep(self.simulated_latency_s * len(items))
        if items:
            out = np.asarray(self._embed_batch(items), dtype=np.float32)
        else:
            out = np.empty((0, self.dim), dtype=np.float32)
        if out.shape != (len(items), self.dim):
            raise EmbeddingError(
                f"model {self.name} produced shape {out.shape}, expected "
                f"({len(items)}, {self.dim})"
            )
        if self.normalize:
            out = normalize_rows(out, copy=False)
        self.usage.calls += len(items)
        self.usage.items += len(items)
        self.usage.seconds += time.perf_counter() - start
        return out

    # -- decoding (E^-1) ---------------------------------------------------
    def decode(self, vector: np.ndarray):
        """Inverse mapping ``E^-1`` — optional.

        Models without a decoder raise; callers should then fall back to the
        lookup-table mechanism (:class:`~repro.embedding.cache.EmbeddingStore`),
        exactly as Section III-C prescribes.
        """
        raise EmbeddingError(
            f"model {self.name} has no decoder; use an EmbeddingStore lookup"
        )

    def reset_usage(self) -> None:
        self.usage.reset()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(dim={self.dim}, name={self.name!r})"
