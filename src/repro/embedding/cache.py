"""Embedding store: prefetch cache and lookup-table decoder (``E^-1``).

Two pieces of Section III-C / IV-A live here:

* the **prefetch optimization**: embedding each tuple once and reusing the
  tensor across all pairwise comparisons — :class:`EmbeddingStore` is the
  materialised "embed once" side-structure;
* the **lookup-table decode**: when a model has no decoder, the paper
  prescribes an object↔embedding mapping via unique IDs; the store keeps the
  originals and supports exact (by id) and nearest-neighbour decode.
"""

from __future__ import annotations

import threading

import numpy as np

from ..errors import EmbeddingError
from .base import EmbeddingModel


class EmbeddingStore:
    """Materialised item → embedding mapping for one model.

    Thread-safe: concurrent sessions of the query service share one store
    per model, so the get-or-embed path is serialized by an internal lock —
    two threads racing on the same new items embed them exactly once, and
    readers never observe a half-updated ``items``/``vectors`` pair.
    """

    def __init__(self, model: EmbeddingModel) -> None:
        self.model = model
        self._items: list = []
        self._key_to_id: dict = {}
        self._vectors = np.empty((0, model.dim), dtype=np.float32)
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def vectors(self) -> np.ndarray:
        """The ``(n, dim)`` embedding matrix (no copy)."""
        with self._lock:
            return self._vectors

    def add_items(self, items: list) -> np.ndarray:
        """Embed and store new items; returns their ids.

        Items already present are *not* re-embedded (each unique item incurs
        model cost M exactly once — the linear model-cost bound of the
        prefetch formulation).
        """
        with self._lock:
            new_items = [it for it in items if it not in self._key_to_id]
            if new_items:
                # De-duplicate while preserving order.
                seen: dict = {}
                uniques = [seen.setdefault(it, it) for it in new_items if it not in seen]
                vectors = self.model.embed_batch(uniques)
                base = len(self._items)
                for offset, item in enumerate(uniques):
                    self._key_to_id[item] = base + offset
                self._items.extend(uniques)
                self._vectors = (
                    vectors
                    if len(self._vectors) == 0
                    else np.vstack([self._vectors, vectors])
                )
            return np.asarray(
                [self._key_to_id[it] for it in items], dtype=np.int64
            )

    def embed_items(self, items: list) -> np.ndarray:
        """Embeddings for ``items`` (adding any that are missing)."""
        with self._lock:
            ids = self.add_items(items)
            return self._vectors[ids]

    def id_of(self, item) -> int:
        with self._lock:
            if item not in self._key_to_id:
                raise EmbeddingError(f"item {item!r} is not in the store")
            return self._key_to_id[item]

    def decode_id(self, item_id: int):
        """Exact decode: unique id → original item (Section III-C)."""
        with self._lock:
            if not 0 <= item_id < len(self._items):
                raise EmbeddingError(
                    f"id {item_id} out of range [0, {len(self._items)})"
                )
            return self._items[item_id]

    def decode_vector(self, vector: np.ndarray):
        """Nearest-neighbour decode: vector → closest stored item."""
        with self._lock:
            if len(self._items) == 0:
                raise EmbeddingError("cannot decode against an empty store")
            vector = np.asarray(vector, dtype=np.float32)
            sims = self._vectors @ vector
            return self._items[int(np.argmax(sims))]

    def items(self) -> list:
        with self._lock:
            return list(self._items)
