"""Synthetic semantic corpus generation.

The paper trains FastText on a Wikipedia subset (Section VI-A) to obtain
semantic matching (Table II).  That corpus is not available offline, so we
build a *synthetic* corpus with engineered semantic structure:

* **topics** — groups of related words (e.g. database systems, clothing);
  sentences sample words from a single topic, so skip-gram training makes
  same-topic words close — this reproduces the "dbms → rdbms, postgresql,
  sqlite..." behaviour of Table II,
* **plural forms** and **misspellings** — injected as low-probability
  variants, so the subword model learns that they are interchangeable with
  the base word — reproducing the "clothes → clothings, underwears"
  resilience the paper attributes to FastText.

Everything is seeded through :mod:`repro.config` for deterministic runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import get_config
from ..errors import WorkloadError

#: Default topical lexicon, modelled on the probe words of Table II.
DEFAULT_TOPICS: dict[str, list[str]] = {
    "databases": [
        "dbms", "rdbms", "nosql", "postgres", "postgresql", "sql", "sqlite",
        "mysql", "couchdb", "oltp", "olap", "dataflow", "ldap", "odbc",
        "backend", "postgis", "oodbms", "ordbms",
    ],
    "clothing": [
        "clothes", "clothing", "dresses", "garments", "underwear",
        "bedclothes", "undergarments", "towels", "scarves", "shoes",
        "nightgowns", "bathrobes", "underclothes", "jackets", "trousers",
    ],
    "cooking": [
        "barbecue", "bbq", "grilling", "roasting", "baking", "frying",
        "cooking", "kitchen", "recipe", "skewers", "marinade", "charcoal",
    ],
    "computing": [
        "computer", "processor", "cpu", "memory", "cache", "kernel",
        "compiler", "algorithm", "software", "hardware", "network",
        "server",
    ],
    "music": [
        "guitar", "piano", "violin", "drums", "orchestra", "melody",
        "harmony", "concert", "singer", "rhythm", "chord", "tempo",
    ],
}

_VOWELS = "aeiou"
_CONSONANTS = "bcdfghjklmnpqrstvwxyz"


def pluralize(word: str) -> str:
    """Naive English pluralization (enough for corpus variant injection)."""
    if word.endswith(("s", "x", "z", "ch", "sh")):
        return word + "es"
    if word.endswith("y") and len(word) > 1 and word[-2] not in _VOWELS:
        return word[:-1] + "ies"
    return word + "s"


def make_misspelling(word: str, rng: np.random.Generator) -> str:
    """Apply one random edit (substitute / delete / insert / transpose)."""
    if len(word) < 3:
        return word
    ops = ["substitute", "delete", "insert", "transpose"]
    op = ops[int(rng.integers(len(ops)))]
    # Never touch the first character: keeps the variant recognisable and
    # shares the leading n-grams with the original.
    pos = int(rng.integers(1, len(word)))
    letters = _VOWELS + _CONSONANTS
    if op == "substitute":
        ch = letters[int(rng.integers(len(letters)))]
        return word[:pos] + ch + word[pos + 1 :]
    if op == "delete":
        return word[:pos] + word[pos + 1 :]
    if op == "insert":
        ch = letters[int(rng.integers(len(letters)))]
        return word[:pos] + ch + word[pos:]
    if pos < len(word) - 1:
        return word[:pos] + word[pos + 1] + word[pos] + word[pos + 2 :]
    return word


@dataclass
class SemanticCorpus:
    """A generated corpus plus the ground-truth semantic structure.

    Attributes:
        sentences: Token lists (training input).
        topics: topic name -> base words.
        variants: base word -> its injected variants (plural, misspellings).
    """

    sentences: list[list[str]]
    topics: dict[str, list[str]]
    variants: dict[str, list[str]] = field(default_factory=dict)

    @property
    def vocabulary(self) -> list[str]:
        vocab: set[str] = set()
        for sent in self.sentences:
            vocab.update(sent)
        return sorted(vocab)

    def topic_of(self, word: str) -> str | None:
        """Topic of a base word or of any of its variants, if known."""
        for topic, words in self.topics.items():
            if word in words:
                return topic
        for base, vs in self.variants.items():
            if word in vs:
                return self.topic_of(base)
        return None

    def related_words(self, word: str) -> set[str]:
        """Ground-truth semantic neighbours: same topic plus variants."""
        related: set[str] = set()
        topic = self.topic_of(word)
        if topic is not None:
            for base in self.topics[topic]:
                related.add(base)
                related.update(self.variants.get(base, ()))
        related.discard(word)
        return related


def generate_corpus(
    *,
    topics: dict[str, list[str]] | None = None,
    n_sentences: int = 4000,
    sentence_length: tuple[int, int] = (6, 12),
    misspelling_rate: float = 0.05,
    plural_rate: float = 0.10,
    n_misspellings_per_word: int = 2,
    seed: int | None = None,
) -> SemanticCorpus:
    """Generate a topical corpus with plural/misspelling variants.

    Each sentence draws all its tokens from a single topic, which is what
    gives skip-gram training its co-occurrence signal.
    """
    topics = dict(DEFAULT_TOPICS if topics is None else topics)
    if not topics:
        raise WorkloadError("at least one topic is required")
    for name, words in topics.items():
        if len(words) < 2:
            raise WorkloadError(f"topic {name!r} needs >= 2 words")
    lo, hi = sentence_length
    if not 1 <= lo <= hi:
        raise WorkloadError(f"invalid sentence_length range {sentence_length}")

    seed = get_config().stream_seed("semantic-corpus") if seed is None else seed
    rng = np.random.default_rng(seed)

    # Pre-generate variants for every base word.
    variants: dict[str, list[str]] = {}
    for words in topics.values():
        for word in words:
            vs = [pluralize(word)]
            for _ in range(n_misspellings_per_word):
                mis = make_misspelling(word, rng)
                if mis != word:
                    vs.append(mis)
            variants[word] = sorted(set(vs) - {word})

    topic_names = sorted(topics)
    sentences: list[list[str]] = []
    for _ in range(n_sentences):
        topic = topic_names[int(rng.integers(len(topic_names)))]
        words = topics[topic]
        length = int(rng.integers(lo, hi + 1))
        sent: list[str] = []
        for _ in range(length):
            base = words[int(rng.integers(len(words)))]
            token = base
            roll = rng.random()
            if roll < misspelling_rate and variants[base]:
                token = variants[base][int(rng.integers(len(variants[base])))]
            elif roll < misspelling_rate + plural_rate:
                token = pluralize(base)
            sent.append(token)
        sentences.append(sent)

    return SemanticCorpus(sentences=sentences, topics=topics, variants=variants)
