"""Embedding substrate: models, training corpus, cache, registry."""

from .base import EmbeddingModel, ModelUsage
from .cache import EmbeddingStore
from .corpus import (
    DEFAULT_TOPICS,
    SemanticCorpus,
    generate_corpus,
    make_misspelling,
    pluralize,
)
from .fasttext import FastTextModel
from .hashing_model import HashingEmbedder, char_ngrams, hash_ngram
from .registry import ModelRegistry, default_registry

__all__ = [
    "DEFAULT_TOPICS",
    "EmbeddingModel",
    "EmbeddingStore",
    "FastTextModel",
    "HashingEmbedder",
    "ModelRegistry",
    "ModelUsage",
    "SemanticCorpus",
    "char_ngrams",
    "default_registry",
    "generate_corpus",
    "hash_ngram",
    "make_misspelling",
    "pluralize",
]
