"""Deterministic hashing embedder.

A training-free stand-in for a string embedding model: character n-grams
are hashed into a fixed random-projection table and averaged.  Properties:

* deterministic (same string → same vector, across processes),
* subword-based, so misspellings land *near* the original string — a weak,
  untrained version of the FastText property the paper relies on,
* O(len(s)) per item, so benchmark figures that only need *a* model (and
  count model calls) are not dominated by model compute.

For semantically meaningful similarity (synonyms), use the trainable
:class:`~repro.embedding.fasttext.FastTextModel`.
"""

from __future__ import annotations

import numpy as np

from ..config import get_config
from .base import EmbeddingModel


def char_ngrams(token: str, n_min: int, n_max: int) -> list[str]:
    """Character n-grams of ``<token>`` with boundary markers, plus the word.

    Matches FastText's subword scheme: the token is wrapped in ``< >`` and
    n-grams of length ``n_min..n_max`` are extracted; the full wrapped token
    is always included so exact matches dominate.
    """
    wrapped = f"<{token}>"
    grams = [wrapped]
    for n in range(n_min, n_max + 1):
        if n >= len(wrapped):
            continue
        grams.extend(wrapped[i : i + n] for i in range(len(wrapped) - n + 1))
    return grams


def hash_ngram(gram: str, n_buckets: int) -> int:
    """FNV-1a hash of an n-gram into ``[0, n_buckets)`` (deterministic)."""
    h = 0x811C9DC5
    for byte in gram.encode("utf-8"):
        h ^= byte
        h = (h * 0x01000193) % (1 << 32)
    return h % n_buckets


class HashingEmbedder(EmbeddingModel):
    """Training-free subword hashing embedder."""

    def __init__(
        self,
        dim: int = 64,
        *,
        n_buckets: int = 1 << 15,
        n_min: int = 3,
        n_max: int = 5,
        seed: int | None = None,
        **kwargs,
    ) -> None:
        super().__init__(dim, **kwargs)
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be positive, got {n_buckets}")
        if not 1 <= n_min <= n_max:
            raise ValueError(f"invalid n-gram range [{n_min}, {n_max}]")
        self.n_buckets = int(n_buckets)
        self.n_min = int(n_min)
        self.n_max = int(n_max)
        seed = get_config().stream_seed("hashing-embedder") if seed is None else seed
        rng = np.random.default_rng(seed)
        # Fixed random projection table: bucket id -> dense vector.
        self._table = rng.standard_normal((self.n_buckets, dim)).astype(np.float32)

    def _embed_batch(self, items: list) -> np.ndarray:
        out = np.zeros((len(items), self.dim), dtype=np.float32)
        for row, item in enumerate(items):
            token = str(item).lower()
            grams = char_ngrams(token, self.n_min, self.n_max)
            bucket_ids = [hash_ngram(g, self.n_buckets) for g in grams]
            out[row] = self._table[bucket_ids].mean(axis=0)
        return out
