"""Named registry of embedding models.

The declarative query layer references models by name ("specify the
embedding model and a threshold", Section III-B); the registry resolves
those names at planning time.
"""

from __future__ import annotations

from ..errors import EmbeddingError
from .base import EmbeddingModel


class ModelRegistry:
    """Process-local name → model mapping."""

    def __init__(self) -> None:
        self._models: dict[str, EmbeddingModel] = {}

    def register(
        self, name: str, model: EmbeddingModel, *, replace: bool = False
    ) -> None:
        if name in self._models and not replace:
            raise EmbeddingError(f"model {name!r} already registered")
        self._models[name] = model

    def get(self, name: str) -> EmbeddingModel:
        if name not in self._models:
            raise EmbeddingError(
                f"unknown model {name!r}; have {sorted(self._models)}"
            )
        return self._models[name]

    def names(self) -> list[str]:
        return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models


_default_registry = ModelRegistry()


def default_registry() -> ModelRegistry:
    """The process-wide default registry."""
    return _default_registry
