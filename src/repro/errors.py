"""Exception hierarchy for the repro engine.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without swallowing unrelated exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed or an operation references a missing column."""


class TypeMismatchError(SchemaError):
    """A value or column has an incompatible data type for the operation."""


class ExpressionError(ReproError):
    """An expression tree is malformed or cannot be evaluated."""


class PlanError(ReproError):
    """A logical or physical query plan is invalid."""


class OptimizerError(PlanError):
    """The optimizer could not produce a valid rewritten plan."""


class EmbeddingError(ReproError):
    """An embedding model failed to encode or decode data."""


class ModelNotFittedError(EmbeddingError):
    """A trainable embedding model was used before being trained."""


class VocabularyError(EmbeddingError):
    """A token cannot be resolved by the model and no fallback exists."""


class IndexError_(ReproError):
    """A vector index is misconfigured or used before being built.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class IndexNotBuiltError(IndexError_):
    """Probe was attempted on an index with no inserted vectors."""


class JoinError(ReproError):
    """An E-join operator received invalid inputs or configuration."""


class DimensionalityError(JoinError):
    """Vector operands have mismatched dimensionality."""


class BufferBudgetError(JoinError):
    """A tensor-join buffer budget is too small for any valid mini-batch."""


class WorkloadError(ReproError):
    """A synthetic workload generator received invalid parameters."""


class TransientError(ReproError):
    """A failure that is expected to succeed on re-execution.

    The reliability layer's retry machinery only ever retries exceptions
    deriving from this class — anything else is treated as permanent and
    propagates immediately.  Morsels are pure functions over row ranges,
    so re-executing one after a transient failure is bit-safe.
    """


class PermanentError(ReproError):
    """A failure that will not be fixed by retrying.

    Retry policies re-raise these immediately; circuit breakers count
    them toward tripping an access path out of planning.
    """


class TransientFault(TransientError):
    """A deterministic, injected transient fault (chaos testing)."""


class PermanentFault(PermanentError):
    """A deterministic, injected permanent fault (chaos testing)."""


class WorkerKilledFault(ReproError):
    """An injected abrupt engine-worker death (chaos testing).

    Deliberately *not* transient: the worker thread that draws this
    fault exits without completing or releasing its claimed morsel, so
    recovery is the watchdog's job (re-enqueue + respawn), never the
    retry wrapper's.
    """


class CircuitOpenError(PermanentError):
    """An access path was requested while its circuit breaker is open."""


class ServiceError(ReproError):
    """The concurrent query service was misused or failed internally."""


class ServiceOverloadError(ServiceError):
    """Admission control rejected a query: no execution slot freed up
    within the submission's backpressure timeout."""


class SessionClosedError(ServiceError):
    """A query was submitted through a closed session handle."""


class DeadlineExceededError(ServiceError):
    """A query's deadline expired, or was provably unmeetable, before a
    result could be produced.

    Raised by the QoS layer in three places: at submission when the
    deadline has already passed, while queued (for admission or in the
    async front's priority queue) when the deadline passes before an
    execution slot frees up, and at dispatch when the execution-time
    estimate proves the deadline cannot be met even by the degraded
    (quantized prescreen-only) path."""


class ShardError(ServiceError):
    """The shard-process pool failed past its respawn budget.

    Raised when a coalesced scan cannot complete on the worker pool —
    every raise site has already exhausted watchdog respawns.  The
    coalescer treats it as a signal to fall back to the in-process scan,
    which is exact, so queries survive a wedged pool at reduced
    throughput rather than failing.
    """
