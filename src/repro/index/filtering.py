"""Relational pre-filtering helpers for vector indexes.

Analytical queries are selective on relational attributes (paper Sections
IV-B, VI-E).  A vector index cannot evaluate relational predicates itself;
instead the engine evaluates them against the base table and hands the
index a boolean **bitmap** over stored ids — the same mechanism Milvus uses
for pre-filtering.
"""

from __future__ import annotations

import numpy as np

from ..errors import IndexError_
from ..relational.expressions import Expression, validate_boolean
from ..relational.table import Table


def bitmap_from_predicate(table: Table, predicate: Expression) -> np.ndarray:
    """Evaluate a relational predicate into an id-aligned bitmap.

    Row ``i`` of the table must correspond to stored vector id ``i`` — the
    convention all E-join operators in :mod:`repro.core` maintain.
    """
    return validate_boolean(predicate, table)


def bitmap_from_indices(n: int, indices: np.ndarray) -> np.ndarray:
    """Bitmap with ``True`` exactly at ``indices``."""
    if n < 0:
        raise IndexError_(f"bitmap size must be non-negative, got {n}")
    bitmap = np.zeros(n, dtype=bool)
    indices = np.asarray(indices, dtype=np.int64)
    if len(indices) and (indices.min() < 0 or indices.max() >= n):
        raise IndexError_(f"indices out of range for bitmap of size {n}")
    bitmap[indices] = True
    return bitmap


def combine_and(*bitmaps: np.ndarray) -> np.ndarray:
    """Conjunction of several bitmaps."""
    if not bitmaps:
        raise IndexError_("combine_and requires at least one bitmap")
    out = np.asarray(bitmaps[0], dtype=bool).copy()
    for bm in bitmaps[1:]:
        bm = np.asarray(bm, dtype=bool)
        if bm.shape != out.shape:
            raise IndexError_(
                f"bitmap shape mismatch: {bm.shape} vs {out.shape}"
            )
        out &= bm
    return out


def bitmap_selectivity(bitmap: np.ndarray) -> float:
    """Fraction of allowed ids (0.0 for empty bitmaps)."""
    bitmap = np.asarray(bitmap, dtype=bool)
    if bitmap.size == 0:
        return 0.0
    return float(bitmap.mean())
