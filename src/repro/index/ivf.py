"""IVF-Flat (inverted file) index, from scratch.

The second index family vector databases ship alongside HNSW (Milvus's
IVF_FLAT): vectors are partitioned into ``nlist`` clusters via k-means on
ingest; a probe scans only the ``nprobe`` closest clusters exhaustively.
Coarser than HNSW but cheap to build — it fills out the access-path design
space the paper's Section VI-E sweeps (build cost vs probe cost vs recall).
"""

from __future__ import annotations

import time

import numpy as np

from ..config import get_config
from ..errors import IndexError_
from ..vector.norms import normalize_rows, normalize_vector
from ..vector.topk import top_k_indices
from .base import SearchResult, VectorIndex


def kmeans(
    data: np.ndarray,
    n_clusters: int,
    *,
    n_iters: int = 10,
    rng: np.random.Generator | None = None,
    spherical: bool = True,
) -> np.ndarray:
    """K-means clustering; spherical by default, plain Lloyd otherwise.

    Spherical (the coarse-quantizer default for unit vectors): assignment
    by argmax dot with mean-and-renormalize updates.  Non-spherical (the
    product-quantizer codebooks, whose subspace slices are not unit
    vectors): assignment by Euclidean distance with plain mean updates.
    Empty clusters are reseeded from random points either way.
    """
    if n_clusters < 1:
        raise IndexError_(f"n_clusters must be >= 1, got {n_clusters}")
    rng = np.random.default_rng() if rng is None else rng
    n = data.shape[0]
    n_clusters = min(n_clusters, n)
    centroids = data[rng.choice(n, size=n_clusters, replace=False)].copy()
    for _ in range(n_iters):
        if spherical:
            assign = np.argmax(data @ centroids.T, axis=1)
        else:
            # argmin ||x - c||^2 == argmax (x.c - ||c||^2 / 2)
            obj = data @ centroids.T - 0.5 * np.einsum(
                "ij,ij->i", centroids, centroids
            )
            assign = np.argmax(obj, axis=1)
        for c in range(n_clusters):
            members = data[assign == c]
            if len(members) == 0:
                centroids[c] = data[int(rng.integers(n))]
            else:
                centroids[c] = members.mean(axis=0)
        if spherical:
            centroids = normalize_rows(centroids)
    return centroids


class IVFFlatIndex(VectorIndex):
    """Inverted-file index with exhaustive in-cluster search."""

    def __init__(
        self,
        dim: int,
        *,
        nlist: int = 64,
        nprobe: int = 8,
        kmeans_iters: int = 10,
        seed: int | None = None,
    ) -> None:
        super().__init__(dim)
        if nlist < 1:
            raise IndexError_(f"nlist must be >= 1, got {nlist}")
        if nprobe < 1:
            raise IndexError_(f"nprobe must be >= 1, got {nprobe}")
        self.nlist = int(nlist)
        self.nprobe = int(nprobe)
        self.kmeans_iters = int(kmeans_iters)
        seed = get_config().stream_seed("ivf") if seed is None else seed
        self._rng = np.random.default_rng(seed)
        self._centroids: np.ndarray | None = None
        self._lists: list[np.ndarray] = []

    def _insert(self, normalized: np.ndarray, base_id: int) -> None:
        # IVF retrains its coarse quantizer over the full collection on
        # every add (fine for the batch-build usage in this repo).
        start = time.perf_counter()
        data = self._vectors  # includes the new rows (appended by add())
        self._centroids = kmeans(
            data,
            self.nlist,
            n_iters=self.kmeans_iters,
            rng=self._rng,
        )
        assign = np.argmax(data @ self._centroids.T, axis=1)
        self._lists = [
            np.nonzero(assign == c)[0].astype(np.int64)
            for c in range(self._centroids.shape[0])
        ]
        self.stats.build_seconds += time.perf_counter() - start

    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        allowed: np.ndarray | None = None,
        assume_normalized: bool = False,
    ) -> SearchResult:
        self._require_built()
        assert self._centroids is not None
        query = np.asarray(query, dtype=np.float32)
        if not assume_normalized:
            query = normalize_vector(query)

        centroid_sims = self._centroids @ query
        self.stats.count(probes=1, distances=len(centroid_sims))
        probe_lists = top_k_indices(centroid_sims, self.nprobe)

        candidates = np.concatenate(
            [self._lists[int(c)] for c in probe_lists]
        ) if len(probe_lists) else np.empty(0, dtype=np.int64)
        if len(candidates) == 0:
            return SearchResult(
                ids=np.empty(0, dtype=np.int64),
                scores=np.empty(0, dtype=np.float32),
            )
        sims = self._vectors[candidates] @ query
        self.stats.count(distances=len(candidates), hops=len(probe_lists))
        if allowed is not None:
            allowed = np.asarray(allowed, dtype=bool)
            if allowed.shape != (len(self._vectors),):
                raise IndexError_(
                    f"pre-filter bitmap shape {allowed.shape} != "
                    f"({len(self._vectors)},)"
                )
            mask = allowed[candidates]
            candidates, sims = candidates[mask], sims[mask]
        if len(candidates) == 0:
            return SearchResult(
                ids=np.empty(0, dtype=np.int64),
                scores=np.empty(0, dtype=np.float32),
            )
        best = top_k_indices(sims, k)
        return SearchResult(
            ids=candidates[best], scores=sims[best].astype(np.float32)
        )

    def list_sizes(self) -> list[int]:
        """Inverted-list occupancy (diagnostics)."""
        return [len(lst) for lst in self._lists]

    def describe(self) -> str:
        return (
            f"IVFFlat(n={len(self)}, nlist={self.nlist}, nprobe={self.nprobe})"
        )
