"""IVF-PQ index: inverted file with product-quantized residual scan.

The compressed companion of :class:`~repro.index.ivf.IVFFlatIndex` (the
IVF_PQ family Milvus/FAISS ship alongside IVF_FLAT): the same spherical
k-means coarse quantizer routes probes to ``nprobe`` inverted lists, but
in-list candidates are scored against ``m``-byte PQ codes via asymmetric
distance computation instead of full fp32 rows — ``4 * dim / m`` times
less scanned data per probe.  A final exact re-rank over the best
``rerank_multiple * k`` ADC candidates restores fp32 score quality
(FAISS's refine wrapper), using the fp32 rows the base class already
stores.
"""

from __future__ import annotations

import time

import numpy as np

from ..config import get_config
from ..errors import IndexError_
from ..vector.norms import normalize_vector
from ..vector.quant import ProductQuantizer
from ..vector.topk import top_k_indices
from .base import SearchResult, VectorIndex
from .ivf import kmeans


class IVFPQIndex(VectorIndex):
    """Inverted-file index over product-quantized codes."""

    def __init__(
        self,
        dim: int,
        *,
        nlist: int = 64,
        nprobe: int = 8,
        m: int = 8,
        ks: int = 256,
        kmeans_iters: int = 10,
        rerank_multiple: int = 4,
        seed: int | None = None,
    ) -> None:
        super().__init__(dim)
        if nlist < 1:
            raise IndexError_(f"nlist must be >= 1, got {nlist}")
        if nprobe < 1:
            raise IndexError_(f"nprobe must be >= 1, got {nprobe}")
        if rerank_multiple < 1:
            raise IndexError_(
                f"rerank_multiple must be >= 1, got {rerank_multiple}"
            )
        self.nlist = int(nlist)
        self.nprobe = int(nprobe)
        self.m = int(m)
        self.ks = int(ks)
        self.kmeans_iters = int(kmeans_iters)
        self.rerank_multiple = int(rerank_multiple)
        seed = get_config().stream_seed("ivfpq") if seed is None else seed
        self._rng = np.random.default_rng(seed)
        self._pq_seed = int(self._rng.integers(2**31))
        self._centroids: np.ndarray | None = None
        self._lists: list[np.ndarray] = []
        self._pq: ProductQuantizer | None = None
        self._codes: np.ndarray | None = None

    @property
    def quantizer(self) -> ProductQuantizer | None:
        """The trained product quantizer (``None`` before the first add)."""
        return self._pq

    @property
    def code_bytes(self) -> int:
        """Bytes of PQ codes the in-list scans stream."""
        return 0 if self._codes is None else int(self._codes.nbytes)

    def _insert(self, normalized: np.ndarray, base_id: int) -> None:
        # Like IVFFlat, both quantizers retrain over the full collection on
        # every add (fine for the batch-build usage in this repo).
        start = time.perf_counter()
        data = self._vectors  # includes the new rows (appended by add())
        self._centroids = kmeans(
            data,
            self.nlist,
            n_iters=self.kmeans_iters,
            rng=self._rng,
        )
        assign = np.argmax(data @ self._centroids.T, axis=1)
        self._lists = [
            np.nonzero(assign == c)[0].astype(np.int64)
            for c in range(self._centroids.shape[0])
        ]
        self._pq = ProductQuantizer(
            self.dim,
            m=self.m,
            ks=self.ks,
            kmeans_iters=self.kmeans_iters,
            seed=self._pq_seed,
        )
        self._pq.fit(data)
        self._codes = self._pq.encode(data, _track=False)
        self.stats.build_seconds += time.perf_counter() - start

    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        allowed: np.ndarray | None = None,
        assume_normalized: bool = False,
    ) -> SearchResult:
        self._require_built()
        assert self._centroids is not None
        assert self._pq is not None and self._codes is not None
        query = np.asarray(query, dtype=np.float32)
        if not assume_normalized:
            query = normalize_vector(query)

        centroid_sims = self._centroids @ query
        self.stats.count(probes=1, distances=len(centroid_sims))
        probe_lists = top_k_indices(centroid_sims, self.nprobe)
        candidates = (
            np.concatenate([self._lists[int(c)] for c in probe_lists])
            if len(probe_lists)
            else np.empty(0, dtype=np.int64)
        )
        if allowed is not None:
            allowed = np.asarray(allowed, dtype=bool)
            if allowed.shape != (len(self._vectors),):
                raise IndexError_(
                    f"pre-filter bitmap shape {allowed.shape} != "
                    f"({len(self._vectors)},)"
                )
            candidates = candidates[allowed[candidates]]
        if len(candidates) == 0:
            return SearchResult(
                ids=np.empty(0, dtype=np.int64),
                scores=np.empty(0, dtype=np.float32),
            )

        # ADC over the candidates' codes: one LUT build per probe, then m
        # table lookups per candidate instead of dim multiply-adds.
        luts = self._pq.lookup_tables(query[None, :])[0]
        offsets = (
            np.arange(self.m, dtype=np.int64) * self._pq.ks_eff
        )
        adc = luts[
            self._codes[candidates].astype(np.int64) + offsets[None, :]
        ].sum(axis=1)
        self.stats.count(distances=len(candidates), hops=len(probe_lists))

        # Exact re-rank of the best ADC candidates against stored fp32 rows.
        shortlist = top_k_indices(adc, min(self.rerank_multiple * k, len(adc)))
        short_ids = candidates[shortlist]
        exact = self._vectors[short_ids] @ query
        self.stats.count(distances=len(short_ids))
        best = top_k_indices(exact, k)
        return SearchResult(
            ids=short_ids[best], scores=exact[best].astype(np.float32)
        )

    def list_sizes(self) -> list[int]:
        """Inverted-list occupancy (diagnostics)."""
        return [len(lst) for lst in self._lists]

    def describe(self) -> str:
        return (
            f"IVFPQ(n={len(self)}, nlist={self.nlist}, nprobe={self.nprobe}, "
            f"m={self.m}, ks={self.ks}, rerank={self.rerank_multiple}x)"
        )
