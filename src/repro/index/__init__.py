"""Vector index substrate: flat exact index and from-scratch HNSW."""

from .base import IndexStats, SearchResult, VectorIndex
from .filtering import (
    bitmap_from_indices,
    bitmap_from_predicate,
    bitmap_selectivity,
    combine_and,
)
from .flat import FlatIndex
from .ivf import IVFFlatIndex, kmeans
from .ivfpq import IVFPQIndex
from .hnsw import (
    HNSWIndex,
    PAPER_CONFIG_HI,
    PAPER_CONFIG_LO,
    SCALED_CONFIG_HI,
    SCALED_CONFIG_LO,
)

__all__ = [
    "FlatIndex",
    "HNSWIndex",
    "IVFFlatIndex",
    "IVFPQIndex",
    "kmeans",
    "IndexStats",
    "PAPER_CONFIG_HI",
    "PAPER_CONFIG_LO",
    "SCALED_CONFIG_HI",
    "SCALED_CONFIG_LO",
    "SearchResult",
    "VectorIndex",
    "bitmap_from_indices",
    "bitmap_from_predicate",
    "bitmap_selectivity",
    "combine_and",
]
