"""Hierarchical Navigable Small World (HNSW) index, from scratch.

Reimplements Malkov & Yashunin's HNSW (paper ref [52]) — the index the
paper's vector-database comparator (Milvus) uses, and "the overall
best-performing index from ANN-Benchmark" per Section VI-E.  Key structure:

* nodes live on geometrically-distributed levels (``mL = 1/ln(M)``),
* each level is a navigable proximity graph with degree bound ``M``
  (``2M`` on the ground layer),
* insertion searches with beam width ``ef_construction``; probes search the
  upper layers greedily and the ground layer with beam width ``ef_search``,
* results are **approximate**: accuracy is a build-time property (the Lo/Hi
  configurations of Figures 15-17).

Relational **pre-filtering** follows the Milvus semantics the paper
describes: the traversal proceeds over the full graph (paying traversal
cost), while the result heap only admits ids allowed by the bitmap.
"""

from __future__ import annotations

import heapq
import math
import threading
import time

import numpy as np

from ..config import get_config
from ..errors import IndexError_
from ..vector.norms import normalize_vector
from .base import SearchResult, VectorIndex

#: Paper configurations (Section VI-E): Hi = M 64 / efC 512, Lo = M 32 / efC 256.
PAPER_CONFIG_HI = {"m": 64, "ef_construction": 512}
PAPER_CONFIG_LO = {"m": 32, "ef_construction": 256}
#: Scaled-down counterparts keeping the 2x Hi/Lo ratio (see EXPERIMENTS.md).
SCALED_CONFIG_HI = {"m": 16, "ef_construction": 128}
SCALED_CONFIG_LO = {"m": 8, "ef_construction": 64}


class HNSWIndex(VectorIndex):
    """Approximate cosine top-k index with HNSW graph layout."""

    def __init__(
        self,
        dim: int,
        *,
        m: int = 16,
        ef_construction: int = 128,
        ef_search: int = 64,
        seed: int | None = None,
    ) -> None:
        super().__init__(dim)
        if m < 2:
            raise IndexError_(f"M must be >= 2, got {m}")
        if ef_construction < 1 or ef_search < 1:
            raise IndexError_("ef parameters must be >= 1")
        self.m = int(m)
        self.m_max0 = 2 * self.m
        self.ef_construction = int(ef_construction)
        self.ef_search = int(ef_search)
        self._ml = 1.0 / math.log(self.m)
        seed = get_config().stream_seed("hnsw") if seed is None else seed
        self._rng = np.random.default_rng(seed)
        # _links[level][node_id] -> list of neighbour ids.
        self._links: list[dict[int, list[int]]] = []
        self._node_levels: list[int] = []
        self._entry_point: int | None = None
        self._max_level: int = -1
        self._tally_local = threading.local()

    # ------------------------------------------------------------------
    # Distance helpers (cosine distance over normalized vectors)
    # ------------------------------------------------------------------
    # Counters accumulate in a thread-local tally (plain int adds in the
    # hot traversal loops) and publish to the shared, lock-protected
    # IndexStats once per search/insert — exact under concurrent probes
    # without paying a lock acquire per distance computation.
    def _tally(self):
        local = self._tally_local
        if not hasattr(local, "distances"):
            local.distances = 0
            local.hops = 0
        return local

    def _flush_tally(self, *, probes: int = 0) -> None:
        local = self._tally()
        self.stats.count(
            probes=probes, distances=local.distances, hops=local.hops
        )
        local.distances = 0
        local.hops = 0

    def _dist_one(self, query: np.ndarray, node: int) -> float:
        self._tally().distances += 1
        return 1.0 - float(self._vectors[node] @ query)

    def _dist_many(self, query: np.ndarray, nodes: list[int]) -> np.ndarray:
        self._tally().distances += len(nodes)
        return 1.0 - self._vectors[np.asarray(nodes)] @ query

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _random_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._ml)

    def _insert(self, normalized: np.ndarray, base_id: int) -> None:
        start = time.perf_counter()
        for offset in range(normalized.shape[0]):
            self._insert_one(base_id + offset)
        self._flush_tally()
        self.stats.build_seconds += time.perf_counter() - start

    def _insert_one(self, node: int) -> None:
        level = self._random_level()
        self._node_levels.append(level)
        while len(self._links) <= level:
            self._links.append({})
        for lvl in range(level + 1):
            self._links[lvl][node] = []

        if self._entry_point is None:
            self._entry_point = node
            self._max_level = level
            return

        query = self._vectors[node]
        current = self._entry_point
        # Greedy descent through layers above the node's level.
        for lvl in range(self._max_level, level, -1):
            current = self._greedy_step(query, current, lvl)

        # Beam-search insertion on each shared layer.
        for lvl in range(min(level, self._max_level), -1, -1):
            candidates = self._search_layer(
                query, [current], lvl, self.ef_construction
            )
            m_max = self.m_max0 if lvl == 0 else self.m
            neighbors = self._select_neighbors(candidates, self.m)
            self._links[lvl][node] = [nid for _, nid in neighbors]
            for _, nid in neighbors:
                links = self._links[lvl][nid]
                links.append(node)
                if len(links) > m_max:
                    self._shrink_links(nid, lvl, m_max)
            if candidates:
                current = min(candidates)[1]

        if level > self._max_level:
            self._max_level = level
            self._entry_point = node

    def _shrink_links(self, node: int, level: int, m_max: int) -> None:
        """Keep only the ``m_max`` closest neighbours of ``node``."""
        links = self._links[level][node]
        dists = self._dist_many(self._vectors[node], links)
        order = np.argsort(dists, kind="stable")[:m_max]
        self._links[level][node] = [links[int(i)] for i in order]

    @staticmethod
    def _select_neighbors(
        candidates: list[tuple[float, int]], m: int
    ) -> list[tuple[float, int]]:
        """Simple closest-first neighbour selection."""
        return sorted(candidates)[:m]

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _greedy_step(self, query: np.ndarray, start: int, level: int) -> int:
        """Greedy hill-climb to the local minimum on one layer."""
        current = start
        current_dist = self._dist_one(query, current)
        improved = True
        while improved:
            improved = False
            neighbors = self._links[level].get(current, [])
            if not neighbors:
                break
            dists = self._dist_many(query, neighbors)
            self._tally().hops += 1
            best = int(np.argmin(dists))
            if dists[best] < current_dist:
                current = neighbors[best]
                current_dist = float(dists[best])
                improved = True
        return current

    def _search_layer(
        self,
        query: np.ndarray,
        entry_points: list[int],
        level: int,
        ef: int,
        allowed: np.ndarray | None = None,
    ) -> list[tuple[float, int]]:
        """Beam search on one layer; returns (dist, id) pairs.

        With a pre-filter, the beam traverses all nodes (cost is paid) but
        the result list only admits allowed ids; the beam size is governed
        by the *unfiltered* frontier so navigability is preserved.
        """
        visited: set[int] = set(entry_points)
        candidates: list[tuple[float, int]] = []  # min-heap by distance
        results: list[tuple[float, int]] = []  # max-heap via negated dist
        for ep in entry_points:
            d = self._dist_one(query, ep)
            heapq.heappush(candidates, (d, ep))
            if allowed is None or allowed[ep]:
                heapq.heappush(results, (-d, ep))

        while candidates:
            dist, node = heapq.heappop(candidates)
            if len(results) >= ef and dist > -results[0][0]:
                break
            neighbors = [
                n for n in self._links[level].get(node, []) if n not in visited
            ]
            if not neighbors:
                continue
            visited.update(neighbors)
            self._tally().hops += 1
            dists = self._dist_many(query, neighbors)
            worst = -results[0][0] if results else math.inf
            for n, d in zip(neighbors, dists.tolist()):
                if len(results) < ef or d < worst:
                    heapq.heappush(candidates, (d, n))
                    if allowed is None or allowed[n]:
                        heapq.heappush(results, (-d, n))
                        if len(results) > ef:
                            heapq.heappop(results)
                        worst = -results[0][0]
        return [(-neg, nid) for neg, nid in results]

    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        allowed: np.ndarray | None = None,
        assume_normalized: bool = False,
    ) -> SearchResult:
        self._require_built()
        if allowed is not None:
            allowed = np.asarray(allowed, dtype=bool)
            if allowed.shape != (len(self._vectors),):
                raise IndexError_(
                    f"pre-filter bitmap shape {allowed.shape} != "
                    f"({len(self._vectors)},)"
                )
        query = np.asarray(query, dtype=np.float32)
        if not assume_normalized:
            query = normalize_vector(query)
        assert self._entry_point is not None

        current = self._entry_point
        for lvl in range(self._max_level, 0, -1):
            current = self._greedy_step(query, current, lvl)

        ef = max(self.ef_search, k)
        found = self._search_layer(query, [current], 0, ef, allowed=allowed)
        found.sort()
        top = found[:k]
        ids = np.asarray([nid for _, nid in top], dtype=np.int64)
        scores = np.asarray([1.0 - d for d, _ in top], dtype=np.float32)
        self._flush_tally(probes=1)
        return SearchResult(ids=ids, scores=scores)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def level_sizes(self) -> list[int]:
        """Number of nodes present on each level (diagnostics)."""
        return [len(layer) for layer in self._links]

    def describe(self) -> str:
        return (
            f"HNSW(n={len(self)}, M={self.m}, efC={self.ef_construction}, "
            f"efS={self.ef_search}, levels={self._max_level + 1})"
        )
