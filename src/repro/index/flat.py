"""Flat (exhaustive) exact index: the correctness oracle for HNSW."""

from __future__ import annotations

import numpy as np

from ..vector.norms import normalize_vector
from ..vector.topk import top_k_indices
from .base import SearchResult, VectorIndex


class FlatIndex(VectorIndex):
    """Brute-force exact cosine index.

    Equivalent to a scan: every probe computes all ``n`` similarities.  Used
    as the recall reference for HNSW and for small inputs where graph
    traversal cannot pay off.
    """

    def _insert(self, normalized: np.ndarray, base_id: int) -> None:
        # Vectors are already appended by VectorIndex.add; nothing to build.
        return

    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        allowed: np.ndarray | None = None,
        assume_normalized: bool = False,
    ) -> SearchResult:
        self._require_built()
        query = np.asarray(query, dtype=np.float32)
        if not assume_normalized:
            query = normalize_vector(query)
        sims = self._vectors @ query
        self.stats.count(probes=1, distances=len(sims))
        if allowed is not None:
            sims = np.where(np.asarray(allowed, dtype=bool), sims, -np.inf)
        ids = top_k_indices(sims, k)
        # Drop fully-filtered placeholders.
        keep = sims[ids] > -np.inf
        ids = ids[keep]
        return SearchResult(ids=ids, scores=sims[ids].astype(np.float32))
