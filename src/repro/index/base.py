"""Vector index interface.

Indexes store unit-normalized vectors and answer cosine top-k queries,
optionally under a relational **pre-filter** bitmap: the result set excludes
disallowed ids on the fly while the traversal cost is still paid (paper
Section IV-B, mirroring Milvus' bitmap pre-filtering).

Every index maintains probe counters so the access-path cost model
(``I_probe`` in the E-Index Join Cost equation) can be calibrated from
observed behaviour.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field

import numpy as np

from ..errors import DimensionalityError, IndexNotBuiltError
from ..reliability.faults import maybe_inject
from ..vector.norms import normalize_rows


@dataclass
class IndexStats:
    """Build and probe counters.

    Probe counters feed cost-model calibration, so they must stay exact
    when an execution engine probes the index from several workers —
    mutate them through :meth:`count`, which serializes the update.
    """

    n_inserted: int = 0
    build_seconds: float = 0.0
    n_probes: int = 0
    distance_computations: int = 0
    hops: int = 0
    extra: dict = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def count(self, *, probes: int = 0, distances: int = 0, hops: int = 0) -> None:
        """Atomically bump probe counters (safe under concurrent probes)."""
        with self._lock:
            self.n_probes += probes
            self.distance_computations += distances
            self.hops += hops


@dataclass(frozen=True)
class SearchResult:
    """Top-k result of one probe: parallel id/score arrays, best first."""

    ids: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return len(self.ids)


class VectorIndex(abc.ABC):
    """Base class for cosine-similarity vector indexes."""

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise DimensionalityError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self.stats = IndexStats()
        self._vectors = np.empty((0, dim), dtype=np.float32)

    def __len__(self) -> int:
        return len(self._vectors)

    @property
    def vectors(self) -> np.ndarray:
        """Stored (unit-normalized) vectors."""
        return self._vectors

    def add(self, vectors: np.ndarray) -> None:
        """Insert a batch of vectors (normalized on ingest)."""
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise DimensionalityError(
                f"expected (n, {self.dim}) vectors, got shape {vectors.shape}"
            )
        normalized = normalize_rows(vectors)
        base = len(self._vectors)
        self._vectors = (
            normalized
            if base == 0
            else np.vstack([self._vectors, normalized])
        )
        self._insert(normalized, base)
        self.stats.n_inserted += len(vectors)

    @abc.abstractmethod
    def _insert(self, normalized: np.ndarray, base_id: int) -> None:
        """Index-structure-specific insertion of pre-normalized rows."""

    @abc.abstractmethod
    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        allowed: np.ndarray | None = None,
        assume_normalized: bool = False,
    ) -> SearchResult:
        """Top-k most similar ids for one query vector.

        ``allowed`` is an optional boolean bitmap over stored ids: the
        relational pre-filter.  Ids with ``allowed[id] == False`` never
        appear in results.  ``assume_normalized`` skips the per-probe
        query normalization when the caller already holds unit rows
        (stored vectors are always normalized once, on ingest).
        """

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        *,
        allowed: np.ndarray | None = None,
        assume_normalized: bool = False,
    ) -> list[SearchResult]:
        """Probe many queries (the paper's join-as-batched-search).

        Queries are normalized once as a batch (one vectorized pass)
        rather than per probe inside :meth:`search`.
        """
        maybe_inject("index.probe")
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise DimensionalityError(
                f"expected (n, {self.dim}) queries, got shape {queries.shape}"
            )
        if not assume_normalized:
            queries = normalize_rows(queries)
        return [
            self.search(q, k, allowed=allowed, assume_normalized=True)
            for q in queries
        ]

    def _require_built(self) -> None:
        if len(self._vectors) == 0:
            raise IndexNotBuiltError(
                f"{type(self).__name__} has no vectors; call add() first"
            )
