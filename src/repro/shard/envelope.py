"""Task envelope for the shard-worker wire protocol.

Messages between the pool and its worker processes travel over
``multiprocessing.Pipe`` as small dicts.  Query vectors and score arrays
are encoded with the flight recorder's plan wire format
(:func:`repro.obs.capture._encode_query`): float32 values widen to
float64 exactly, so a query crossing the pipe is *the same* query — the
bit-exactness contract the capture/replay loop already relies on holds
for shard dispatch too.  Values the wire format does not know (fitted
quantizers, which are plain-attribute picklable) pass through untouched
and ride the pipe's own pickle.

Every envelope carries a version stamp; a worker that receives a version
it does not speak replies with an error instead of guessing.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShardError
from ..obs.capture import _decode_query, _encode_query

#: Wire-format version stamped into every task/reply envelope.
ENVELOPE_VERSION = 1


def _encode_value(value):
    if isinstance(value, np.ndarray):
        return _encode_query(value)
    if isinstance(value, dict):
        return {k: _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    return value


def _decode_value(value):
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return _decode_query(value)
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def make_task(kind: str, **payload) -> dict:
    """Build one versioned task/reply envelope."""
    return {
        "v": ENVELOPE_VERSION,
        "kind": kind,
        "payload": _encode_value(payload),
    }


def open_task(message: dict) -> tuple[str, dict]:
    """Validate an envelope and return ``(kind, decoded payload)``."""
    if not isinstance(message, dict) or "kind" not in message:
        raise ShardError(f"malformed shard envelope: {type(message).__name__}")
    version = message.get("v")
    if version != ENVELOPE_VERSION:
        raise ShardError(
            f"shard envelope version {version!r} != {ENVELOPE_VERSION}"
        )
    return message["kind"], _decode_value(message.get("payload") or {})
