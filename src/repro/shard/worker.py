"""Shard worker process: scans its row range, streams bounded heaps back.

``worker_main`` is the spawn entry point — a top-level function with
picklable arguments only, so it works under every start method.  The
worker is deliberately dumb: it holds zero-copy views over published
segments, and for each scan task it runs the *existing* morsel engine
(a single-threaded :class:`~repro.engine.executor.ExecutionEngine`) over
its shard's blocks, folding candidates into a bounded per-query
:class:`~repro.vector.topk.StreamingTopK` exactly like the in-process
coalesced scan does.  All exactness decisions (margins, error bounds,
exact rescoring) stay at the front door; the worker only ever produces
candidate supersets.

Liveness: during a scan the worker emits heartbeat envelopes between
blocks, so the pool's watchdog can tell "slow but alive" from "stuck"
without guessing from wall-clock alone.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..engine.executor import ExecutionEngine
from ..errors import ShardError
from ..vector.topk import StreamingTopK, top_k_per_row
from .envelope import make_task, open_task
from .store import AttachedSegment


def _score_block(precision: str, views: dict, prepared, queries, start, stop):
    """One approximate score block ``(n_queries, stop - start)``."""
    if precision == "fp32":
        return queries @ views["fp32"].array[start:stop].T
    if precision == "fp16":
        block = views["fp16"].array[start:stop].astype(np.float32)
        return queries @ block.T
    if precision == "int8":
        quantizer = views["int8_quantizer"]
        return quantizer.scores_block(prepared, views["int8"].array[start:stop])
    if precision == "pq":
        quantizer = views["pq_quantizer"]
        return quantizer.adc_scores(queries, views["pq"].array[start:stop])
    raise ShardError(f"unknown shard scan precision {precision!r}")


def _run_scan(conn, shard_id: int, engine: ExecutionEngine, tables: dict,
              payload: dict) -> dict:
    key = tuple(payload["key"])
    entry = tables.get(key)
    if entry is None:
        raise ShardError(f"shard {shard_id} has no published store for {key}")
    if entry["version"] != payload["version"]:
        raise ShardError(
            f"shard {shard_id} store for {key} is at version "
            f"{entry['version']}, task wants {payload['version']}"
        )
    precision = payload["precision"]
    views = entry["views"]
    if precision not in views:
        raise ShardError(
            f"shard {shard_id} store for {key} lacks precision {precision!r}"
        )
    lo, hi = entry["ranges"][shard_id]
    queries = np.ascontiguousarray(payload["queries"], dtype=np.float32)
    topk_rows = np.asarray(payload["topk_rows"], dtype=np.intp)
    kpad = int(payload["kpad"])
    thr_rows = np.asarray(payload["thr_rows"], dtype=np.intp)
    thr_floors = np.asarray(payload["thr_floors"], dtype=np.float32)
    block_rows = max(1, int(payload["block_rows"]))
    hb_every_s = max(0.05, float(payload.get("heartbeat_s", 1.0)))

    prepared = None
    if precision == "int8" and len(queries):
        prepared = views["int8_quantizer"].prepare_queries(queries)

    heap = StreamingTopK(len(topk_rows), kpad) if len(topk_rows) else None
    all_topk = len(topk_rows) == len(queries)
    pools: list[list[np.ndarray]] = [[] for _ in range(len(thr_rows))]
    started = time.perf_counter()
    last_beat = [started]

    def scan_block(start: int):
        stop = min(start + block_rows, hi)
        scores = _score_block(precision, views, prepared, queries, start, stop)
        top = None
        if heap is not None:
            by_query = scores if all_topk else scores[topk_rows]
            local = top_k_per_row(by_query, min(kpad, stop - start))
            top = (
                local.astype(np.int64) + start,
                np.take_along_axis(by_query, local, axis=1),
            )
        thr_hits = [
            np.nonzero(scores[row] >= thr_floors[j])[0] + start
            for j, row in enumerate(thr_rows)
        ]
        now = time.perf_counter()
        if now - last_beat[0] >= hb_every_s:
            last_beat[0] = now
            conn.send(make_task("heartbeat", shard=shard_id,
                                task_id=payload["task_id"]))
        return top, thr_hits

    starts = list(range(lo, hi, block_rows))
    # The existing morsel engine schedules the blocks (single worker
    # thread here — process parallelism replaces thread parallelism);
    # results come back in submission order, so the ascending fold keeps
    # the same earliest-block-wins tie behaviour as the serial scan.
    partials = engine.run([lambda s=s: scan_block(s) for s in starts])
    for top, thr_hits in partials:
        if heap is not None and top is not None:
            heap.update(*top)
        for j, hits in enumerate(thr_hits):
            if len(hits):
                pools[j].append(hits)

    if heap is not None:
        heap_ids, heap_scores = heap.finalize()
    else:
        heap_ids = np.empty((0, 0), dtype=np.int64)
        heap_scores = np.empty((0, 0), dtype=np.float32)
    thr_hits_out = [
        np.concatenate(p) if p else np.empty(0, dtype=np.int64) for p in pools
    ]
    return make_task(
        "result",
        task_id=payload["task_id"],
        shard=shard_id,
        heap_ids=heap_ids,
        heap_scores=heap_scores,
        thr_hits=thr_hits_out,
        rows=int(hi - lo),
        blocks=len(starts),
        wall_s=time.perf_counter() - started,
    )


def _attach_store(tables: dict, payload: dict) -> None:
    key = tuple(payload["key"])
    old = tables.pop(key, None)
    if old is not None:
        for view in old["views"].values():
            if isinstance(view, AttachedSegment):
                view.close()
    views: dict = {}
    for precision, spec in payload["specs"].items():
        views[precision] = AttachedSegment(spec)
    for name, quantizer in (payload.get("quantizers") or {}).items():
        views[f"{name}_quantizer"] = quantizer
    tables[key] = {
        "version": payload["version"],
        "ranges": [tuple(r) for r in payload["ranges"]],
        "views": views,
    }


def worker_main(conn, shard_id: int) -> None:
    """Entry point of one shard worker process (runs until shutdown)."""
    engine = ExecutionEngine(n_threads=1)
    tables: dict = {}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # pool side went away; exit quietly
            try:
                kind, payload = open_task(message)
                if kind == "shutdown":
                    conn.send(make_task("bye", shard=shard_id))
                    break
                if kind == "ping":
                    conn.send(make_task(
                        "pong", shard=shard_id, pid=os.getpid()
                    ))
                elif kind == "publish":
                    _attach_store(tables, payload)
                    conn.send(make_task(
                        "published",
                        shard=shard_id,
                        key=list(payload["key"]),
                        version=payload["version"],
                    ))
                elif kind == "scan":
                    conn.send(_run_scan(conn, shard_id, engine, tables,
                                        payload))
                else:
                    raise ShardError(f"unknown shard task kind {kind!r}")
            except Exception as exc:  # report, keep serving
                try:
                    conn.send(make_task(
                        "error",
                        shard=shard_id,
                        task_id=(message or {}).get("payload", {})
                        .get("task_id"),
                        error=f"{type(exc).__name__}: {exc}",
                    ))
                except (BrokenPipeError, OSError):
                    break
    finally:
        for entry in tables.values():
            for view in entry["views"].values():
                if isinstance(view, AttachedSegment):
                    view.close()
        try:
            conn.close()
        except OSError:
            pass
