"""Persistent shard-worker pool: fan the coalesced scan across processes.

The pool owns everything multiprocess about sharded execution:

* **publishing** — each (table, column, model) scan source is normalized
  once, cut into contiguous row ranges by the catalog's
  :class:`~repro.relational.catalog.ShardMap`, and its scan-ready
  representations (fp32, and on demand fp16/int8/PQ) are copied into
  shared-memory segments workers map zero-copy;
* **dispatch** — one scan task per worker, carried by the flight
  recorder's bit-exact wire format over pipes;
* **merging** — per-query :class:`~repro.vector.topk.StreamingTopK`
  heaps come back from every shard and merge under a total order
  (score desc, id asc), so the candidate set is independent of reply
  arrival order and identical to a serial scan's;
* **self-healing** — a watchdog with the same policy semantics as the
  in-process engine's (:mod:`repro.reliability.watchdog`): heartbeats
  mark progress, silent workers past the stall tolerance are terminated,
  dead workers are respawned with every published store replayed, and
  their task is re-dispatched.  Past the respawn budget the pool raises
  :class:`~repro.errors.ShardError`, which callers treat as "fall back
  to the exact in-process scan".

Exactness: workers only produce candidate supersets.  For quantized
precisions the pool widens thresholds by the store's provable score
error bound before dispatch and widens the merged heap floor by the same
bound after, so the front door's existing margin guard and float64 exact
rescore make the final rows a pure function of (data, query, condition)
— bit-identical to serial for every precision.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..config import get_config
from ..core.cost_model import choose_shard_fanout
from ..errors import ShardError
from ..reliability.watchdog import WatchdogPolicy
from ..vector.topk import StreamingTopK
from .envelope import make_task, open_task
from .store import SegmentOwner
from .worker import worker_main


@dataclass
class ShardScanResult:
    """Merged candidates from one fanned-out scan."""

    heap_ids: np.ndarray          # (n_topk_rows, width) int64, best first
    heap_scores: np.ndarray       # (n_topk_rows, width) float32
    heap_floor: np.ndarray        # (n_topk_rows,) effective floor incl. bound
    thr_hits: list[np.ndarray]    # per threshold row, ascending global ids
    n_shards: int
    blocks: int
    rows: int
    shard_walls: list[float]      # per-shard worker-side scan seconds


class _Worker:
    __slots__ = ("proc", "conn", "shard_id")

    def __init__(self, proc, conn, shard_id: int) -> None:
        self.proc = proc
        self.conn = conn
        self.shard_id = shard_id


@dataclass
class ShardPoolStats:
    scans: int = 0
    declined: int = 0
    publishes: int = 0
    tasks: int = 0
    rows_scanned: int = 0
    errors: int = 0
    stalls: int = 0
    worker_deaths: int = 0
    respawns: int = 0
    reenqueued: int = 0

    def snapshot(self) -> dict:
        return {
            "scans": self.scans,
            "declined": self.declined,
            "publishes": self.publishes,
            "tasks": self.tasks,
            "rows_scanned": self.rows_scanned,
            "errors": self.errors,
            "stalls": self.stalls,
            "worker_deaths": self.worker_deaths,
            "respawns": self.respawns,
            "reenqueued": self.reenqueued,
        }


@dataclass
class _Manifest:
    """Owner-side record of one published scan source."""

    version: int
    n_rows: int
    dim: int
    ranges: tuple
    specs: dict = field(default_factory=dict)        # precision -> SegmentSpec
    quantizers: dict = field(default_factory=dict)   # "int8"/"pq" -> quantizer
    bounds: dict = field(default_factory=dict)       # precision -> float


#: Supported shard-scan precisions, in publish-cost order.
SHARD_PRECISIONS = ("fp32", "fp16", "int8", "pq")


class ShardPool:
    """A persistent pool of shard worker processes behind one engine."""

    def __init__(
        self,
        engine,
        n_procs: int,
        *,
        start_method: str | None = None,
        stall_s: float | None = None,
        max_respawns: int | None = None,
        min_rows: int | None = None,
    ) -> None:
        cfg = get_config()
        if n_procs < 1:
            raise ShardError(f"n_procs must be >= 1, got {n_procs}")
        self.engine = engine  # repro.query.Engine
        self.n_procs = int(n_procs)
        self.min_rows = cfg.shard_min_rows if min_rows is None else min_rows
        self.policy = WatchdogPolicy(
            stall_s=cfg.shard_stall_s if stall_s is None else stall_s,
            max_respawns=(
                cfg.shard_max_respawns if max_respawns is None
                else max_respawns
            ),
        )
        self._mp = multiprocessing.get_context(
            start_method or cfg.shard_start_method
        )
        self._owner = SegmentOwner()
        self.segment_prefix = self._owner.prefix
        self._manifests: dict[tuple, _Manifest] = {}
        self._publish_msgs: dict[tuple, dict] = {}
        self._lock = threading.RLock()
        self.stats = ShardPoolStats()
        self._task_seq = 0
        self._closed = False
        self._workers: list[_Worker] = [
            self._spawn(sid) for sid in range(self.n_procs)
        ]

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, shard_id: int) -> _Worker:
        parent_conn, child_conn = self._mp.Pipe()
        proc = self._mp.Process(
            target=worker_main,
            args=(child_conn, shard_id),
            daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        proc.start()
        child_conn.close()
        worker = _Worker(proc, parent_conn, shard_id)
        # Replay every published store: a fresh worker must be able to
        # serve any scan its predecessor could.  Acks arrive in FIFO
        # order ahead of any scan reply, so the collect loop just treats
        # them as progress.
        for message in self._publish_msgs.values():
            worker.conn.send(message)
        return worker

    def _respawn(self, shard_id: int, *, stalled: bool) -> _Worker:
        old = self._workers[shard_id]
        with self._lock:
            if stalled:
                self.stats.stalls += 1
            else:
                self.stats.worker_deaths += 1
            self.stats.respawns += 1
        try:
            old.conn.close()
        except OSError:
            pass
        if old.proc.is_alive():
            old.proc.terminate()
        old.proc.join(timeout=5.0)
        worker = self._spawn(shard_id)
        self._workers[shard_id] = worker
        return worker

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, key: tuple, precisions=("fp32",)) -> _Manifest:
        """Publish (or refresh) the scan stores for one source key.

        Idempotent per (catalog version, precision); a version bump
        unlinks the stale segments and re-publishes from the current
        table.  Returns the owner-side manifest.
        """
        with self._lock:
            if self._closed:
                raise ShardError("shard pool is closed")
            return self._publish_locked(tuple(key), tuple(precisions))

    def _publish_locked(self, key: tuple, precisions: tuple) -> _Manifest:
        from ..algebra.physical_planner import _embed_column

        table_name, column, model_name = key
        ctx = self.engine.context(tag=f"shard/publish/{table_name}.{column}")
        version = ctx.catalog.version(table_name)
        manifest = self._manifests.get(key)
        if manifest is not None and manifest.version != version:
            for spec in manifest.specs.values():
                self._owner.unlink(spec.name)
            manifest = None
            self._manifests.pop(key, None)
            self._publish_msgs.pop(key, None)
        missing = [
            p for p in precisions
            if manifest is None or p not in manifest.specs
        ]
        if manifest is not None and not missing:
            return manifest

        table = ctx.catalog.get(table_name)
        vectors = _embed_column(table, column, model_name, ctx)
        normalized = ctx.normalized_matrix_for(key, vectors)
        if manifest is None:
            shard_map = ctx.catalog.shard_map(table_name, self.n_procs)
            manifest = _Manifest(
                version=version,
                n_rows=len(normalized),
                dim=int(normalized.shape[1]) if normalized.ndim == 2 else 0,
                ranges=shard_map.ranges,
            )
            self._manifests[key] = manifest
        for precision in missing:
            if precision == "fp32":
                manifest.specs[precision] = self._owner.publish(normalized)
                manifest.bounds[precision] = 0.0
            elif precision == "fp16":
                half = normalized.astype(np.float16)
                err = normalized - half.astype(np.float32)
                resid = (
                    float(np.sqrt(np.einsum("ij,ij->i", err, err)).max())
                    if len(err)
                    else 0.0
                )
                manifest.specs[precision] = self._owner.publish(half)
                # Cauchy-Schwarz over unit queries, plus GEMM noise slack.
                manifest.bounds[precision] = resid + 1e-5
            elif precision in ("int8", "pq"):
                store = ctx.quant_store_for(key, vectors, precision)
                manifest.specs[precision] = self._owner.publish(store.codes)
                manifest.quantizers[precision] = store.quantizer
                manifest.bounds[precision] = float(
                    store.quantizer.score_error_bound()
                )
            else:
                raise ShardError(f"unknown shard precision {precision!r}")

        message = make_task(
            "publish",
            key=list(key),
            version=version,
            ranges=[list(r) for r in manifest.ranges],
            specs=dict(manifest.specs),
            quantizers=dict(manifest.quantizers),
        )
        self._publish_msgs[key] = message
        self.stats.publishes += 1
        for worker in self._workers:
            try:
                worker.conn.send(message)
            except (BrokenPipeError, OSError):
                self._respawn(worker.shard_id, stalled=False)
        return manifest

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def should_shard(self, n_rows: int, n_queries: int, dim: int) -> bool:
        """Is fanning this scan out cheaper than staying in-process?"""
        params = getattr(self.engine, "cost_params", None)
        return (
            choose_shard_fanout(
                n_rows,
                max(1, n_queries),
                dim,
                self.n_procs,
                params=params,
                min_rows=self.min_rows,
            )
            > 1
        )

    def scan_candidates(
        self,
        key: tuple,
        queries: np.ndarray,
        *,
        n_rows: int,
        topk_rows,
        kpad: int,
        thr_rows,
        thr_floors: np.ndarray,
        block_rows: int,
        precision: str = "fp32",
    ) -> ShardScanResult | None:
        """Fan one coalesced scan out; ``None`` means "stay in-process".

        ``thr_floors`` are the front door's margin-adjusted thresholds;
        the pool subtracts the store's score error bound before dispatch
        and adds it back onto the merged heap floor, keeping the
        candidate sets provable supersets for every precision.
        """
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        dim = int(queries.shape[1]) if queries.ndim == 2 else 0
        if self._closed or not len(queries):
            return None
        if not self.should_shard(n_rows, len(queries), dim):
            with self._lock:
                self.stats.declined += 1
            return None
        with self._lock:
            if self._closed:
                return None
            try:
                return self._scan_locked(
                    tuple(key), queries, n_rows=n_rows,
                    topk_rows=topk_rows, kpad=kpad, thr_rows=thr_rows,
                    thr_floors=thr_floors, block_rows=block_rows,
                    precision=precision,
                )
            except ShardError:
                self.stats.errors += 1
                raise

    def _scan_locked(
        self, key, queries, *, n_rows, topk_rows, kpad, thr_rows,
        thr_floors, block_rows, precision,
    ) -> ShardScanResult | None:
        manifest = self._publish_locked(key, (precision,))
        if manifest.n_rows != n_rows:
            # The table changed under us mid-flight; the caller's exact
            # in-process path is the safe answer.
            return None
        bound = manifest.bounds[precision]
        topk_rows = np.asarray(topk_rows, dtype=np.int64)
        thr_rows = np.asarray(thr_rows, dtype=np.int64)
        adj_floors = (
            np.asarray(thr_floors, dtype=np.float32) - np.float32(bound)
        )
        self._task_seq += 1
        task_id = self._task_seq
        task = make_task(
            "scan",
            task_id=task_id,
            key=list(key),
            version=manifest.version,
            precision=precision,
            queries=queries,
            topk_rows=topk_rows,
            kpad=int(max(1, kpad)),
            thr_rows=thr_rows,
            thr_floors=adj_floors,
            block_rows=int(block_rows),
            heartbeat_s=self.policy.stall_s / 4.0 if self.policy.enabled
            else 1.0,
        )
        self.stats.scans += 1
        self.stats.tasks += self.n_procs
        pending: dict[int, dict] = {}
        respawn_budget = self.policy.max_respawns
        for worker in list(self._workers):
            try:
                worker.conn.send(task)
            except (BrokenPipeError, OSError):
                # Dispatch-time deaths draw from the same per-scan budget
                # as collection-time ones.
                if respawn_budget <= 0:
                    raise ShardError(
                        f"shard worker {worker.shard_id} died and the "
                        f"respawn budget ({self.policy.max_respawns}) is "
                        f"exhausted"
                    )
                respawn_budget -= 1
                worker = self._respawn(worker.shard_id, stalled=False)
                worker.conn.send(task)
            pending[worker.shard_id] = task
        replies = self._collect(task_id, pending, respawn_budget)

        heap = StreamingTopK(len(topk_rows), int(max(1, kpad)))
        pools: list[list[np.ndarray]] = [[] for _ in range(len(thr_rows))]
        blocks = 0
        rows = 0
        walls: list[float] = [0.0] * self.n_procs
        for shard_id in sorted(replies):
            payload = replies[shard_id]
            if len(topk_rows):
                part = StreamingTopK(len(topk_rows), int(max(1, kpad)))
                ids = np.asarray(payload["heap_ids"], dtype=np.int64)
                scores = np.asarray(payload["heap_scores"], dtype=np.float32)
                if ids.size:
                    part.update(ids, scores)
                heap.merge(part)
            for j, hits in enumerate(payload["thr_hits"]):
                hits = np.asarray(hits, dtype=np.int64)
                if len(hits):
                    pools[j].append(hits)
            blocks += int(payload["blocks"])
            rows += int(payload["rows"])
            walls[shard_id] = float(payload["wall_s"])
        self.stats.rows_scanned += rows

        heap_ids, heap_scores = heap.finalize()
        if heap_scores.shape[1]:
            heap_floor = heap_scores.min(axis=1) + np.float32(bound)
        else:
            heap_floor = np.full(len(topk_rows), -np.inf, dtype=np.float32)
        thr_hits = [
            np.concatenate(p) if p else np.empty(0, dtype=np.int64)
            for p in pools
        ]
        return ShardScanResult(
            heap_ids=heap_ids,
            heap_scores=heap_scores,
            heap_floor=heap_floor,
            thr_hits=thr_hits,
            n_shards=self.n_procs,
            blocks=blocks,
            rows=rows,
            shard_walls=walls,
        )

    def _collect(
        self, task_id: int, pending: dict[int, dict], respawn_budget: int
    ) -> dict:
        """Await one reply per shard, healing dead/stuck workers.

        Same watchdog semantics as the in-process engine: heartbeats (or
        any message) mark progress; a worker silent past the stall
        tolerance is terminated and respawned; respawns are budgeted per
        scan (shared with dispatch-time deaths), and exhausting the
        budget raises :class:`ShardError`.
        """
        replies: dict[int, dict] = {}
        now = time.perf_counter()
        last_progress = {sid: now for sid in pending}
        respawns_left = respawn_budget
        poll_s = self.policy.poll_s

        def heal(shard_id: int, *, stalled: bool, reason: str) -> None:
            nonlocal respawns_left
            if respawns_left <= 0:
                raise ShardError(
                    f"shard worker {shard_id} {reason} and the respawn "
                    f"budget ({self.policy.max_respawns}) is exhausted"
                )
            respawns_left -= 1
            worker = self._respawn(shard_id, stalled=stalled)
            with self._lock:
                self.stats.reenqueued += 1
            worker.conn.send(pending[shard_id])
            last_progress[shard_id] = time.perf_counter()

        while len(replies) < len(pending):
            progressed = False
            for shard_id, task in pending.items():
                if shard_id in replies:
                    continue
                worker = self._workers[shard_id]
                try:
                    while worker.conn.poll(0):
                        kind, payload = open_task(worker.conn.recv())
                        last_progress[shard_id] = time.perf_counter()
                        progressed = True
                        if kind == "error":
                            if payload.get("task_id") == task_id:
                                raise ShardError(
                                    f"shard worker {shard_id} failed: "
                                    f"{payload.get('error')}"
                                )
                            continue  # stale error from a bygone task
                        if (
                            kind == "result"
                            and payload.get("task_id") == task_id
                        ):
                            replies[shard_id] = payload
                            break
                        # heartbeats, publish acks, stale results: all
                        # just proof of life.
                except (EOFError, OSError, BrokenPipeError):
                    heal(shard_id, stalled=False, reason="died")
                    continue
                if shard_id in replies:
                    continue
                if not worker.proc.is_alive():
                    heal(shard_id, stalled=False, reason="died")
                elif (
                    self.policy.enabled
                    and time.perf_counter() - last_progress[shard_id]
                    > self.policy.stall_s
                ):
                    heal(shard_id, stalled=True, reason="stalled")
            if not progressed:
                time.sleep(min(poll_s, 0.002))
        return replies

    # ------------------------------------------------------------------
    # Introspection and shutdown
    # ------------------------------------------------------------------
    def worker_health(self) -> dict:
        """Process-level health for ``QueryService.health()``."""
        alive = sum(1 for w in self._workers if w.proc.is_alive())
        with self._lock:
            return {
                "procs": self.n_procs,
                "alive": alive,
                "worker_deaths": self.stats.worker_deaths,
                "stalls": self.stats.stalls,
                "respawns": self.stats.respawns,
            }

    def stats_snapshot(self) -> dict:
        with self._lock:
            snap = self.stats.snapshot()
        snap["procs"] = self.n_procs
        snap["segments"] = len(self._owner.segment_names())
        snap["alive"] = sum(1 for w in self._workers if w.proc.is_alive())
        return snap

    def segment_names(self) -> list[str]:
        return self._owner.segment_names()

    def close(self, timeout_s: float = 5.0) -> None:
        """Shut workers down and unlink every published segment.

        Idempotent, and unconditional: even if a worker must be killed,
        the owner still unlinks all segments — the no-leak guarantee does
        not depend on worker cooperation.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        for worker in workers:
            try:
                worker.conn.send(make_task("shutdown"))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.perf_counter() + timeout_s
        for worker in workers:
            worker.proc.join(
                timeout=max(0.1, deadline - time.perf_counter())
            )
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._owner.close()
