"""Shared-memory column stores: publish once, map zero-copy everywhere.

The pool owner copies each scan-ready representation of a column — the
unit-normalized fp32 matrix, its fp16 cast, int8 affine codes, PQ codes —
into one ``multiprocessing.shared_memory`` segment per array.  Workers
map the segments and wrap them as read-only numpy views: after the one
publish copy, fanning a scan out to N processes moves no column data at
all, only task envelopes.  That is what lets process parallelism beat
threads: each worker's GEMM runs in its own interpreter on memory the
kernel shares physically.

Ownership is strictly one-sided.  The creating process (the pool) is the
only one that ever ``unlink``s; workers ``close`` their maps and never
destroy.  On POSIX Pythons < 3.13 *attaching* also registers the segment
with the (spawn-shared) ``resource_tracker``; that is harmless here —
the tracker's cache is a set, the owner's explicit ``unlink`` clears the
entry, and anything left behind by a crashed owner is unlinked by the
tracker at exit, which is exactly the backstop we want for leaked
segments.
"""

from __future__ import annotations

import os
import itertools
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..errors import ShardError

#: Every segment this process creates starts with this prefix + pid, so
#: leak checks can assert "no segments of ours survive" by name.
SEGMENT_PREFIX = "reproshard"

_seq = itertools.count()
_owner_seq = itertools.count()


def segment_prefix(pid: int | None = None) -> str:
    """Leak-checkable name prefix for segments owned by ``pid``."""
    return f"{SEGMENT_PREFIX}{os.getpid() if pid is None else pid}_"


@dataclass(frozen=True)
class SegmentSpec:
    """Everything a worker needs to map one published array: pure data,
    pickles through the task envelope untouched."""

    name: str
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape)))


class AttachedSegment:
    """A worker-side zero-copy view over a published segment."""

    def __init__(self, spec: SegmentSpec) -> None:
        try:
            self._shm = shared_memory.SharedMemory(name=spec.name)
        except FileNotFoundError as exc:
            raise ShardError(
                f"shard segment {spec.name!r} has been unlinked"
            ) from exc
        if self._shm.size < spec.nbytes:
            self._shm.close()
            raise ShardError(
                f"shard segment {spec.name!r} holds {self._shm.size} bytes, "
                f"spec needs {spec.nbytes}"
            )
        self.spec = spec
        self.array = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=self._shm.buf
        )
        self.array.flags.writeable = False

    def close(self) -> None:
        """Drop the map (never unlinks — that is the owner's job)."""
        # The numpy view pins the segment's exported buffer; release it
        # first or ``close`` raises BufferError.
        self.array = None
        self._shm.close()


class SegmentOwner:
    """Owner side: creates, hands out specs, and is the only unlinker."""

    def __init__(self) -> None:
        # Per-owner suffix on top of the per-process prefix: several
        # pools can coexist in one process, and "no segments of *this*
        # owner survive" must not see a sibling's live segments.
        self.prefix = f"{segment_prefix()}{next(_owner_seq)}_"
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def publish(self, array: np.ndarray) -> SegmentSpec:
        """Copy ``array`` into a fresh segment and return its spec."""
        array = np.ascontiguousarray(array)
        name = f"{self.prefix}{next(_seq)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(int(array.nbytes), 1)
        )
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        del view
        self._segments[name] = shm
        return SegmentSpec(
            name=name, dtype=str(array.dtype), shape=tuple(array.shape)
        )

    def unlink(self, name: str) -> None:
        """Destroy one segment (idempotent)."""
        shm = self._segments.pop(name, None)
        if shm is None:
            return
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # already gone (e.g. external cleanup)
            pass

    def segment_names(self) -> list[str]:
        return sorted(self._segments)

    def close(self) -> None:
        """Destroy every segment this owner created (idempotent)."""
        for name in list(self._segments):
            self.unlink(name)


def leaked_segments(prefix: str) -> list[str]:
    """Names of live segments under ``prefix`` (empty = no leaks).

    POSIX shared memory appears as files under ``/dev/shm``; on platforms
    without it this returns ``[]``, which keeps leak assertions vacuously
    true rather than flaky.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):
        return []
    return sorted(n for n in os.listdir(root) if n.startswith(prefix))
