"""Sharded multiprocess execution: scale the shared scan past the GIL.

Partitions base tables into contiguous per-shard row ranges
(:class:`~repro.relational.catalog.ShardMap`), publishes scan-ready
column stores into ``multiprocessing.shared_memory`` segments mapped as
zero-copy numpy views, and fans the coalesced shared scan out across a
persistent pool of spawn-safe worker processes.  Workers return bounded
per-query heaps; the front door merges them under a total order and
exact-rescores, so sharded results are bit-identical to serial for every
precision.
"""

from .envelope import ENVELOPE_VERSION, make_task, open_task
from .pool import SHARD_PRECISIONS, ShardPool, ShardScanResult
from .store import (
    AttachedSegment,
    SegmentOwner,
    SegmentSpec,
    leaked_segments,
    segment_prefix,
)
from .worker import worker_main

__all__ = [
    "ENVELOPE_VERSION",
    "SHARD_PRECISIONS",
    "AttachedSegment",
    "SegmentOwner",
    "SegmentSpec",
    "ShardPool",
    "ShardScanResult",
    "leaked_segments",
    "make_task",
    "open_task",
    "segment_prefix",
    "worker_main",
]
