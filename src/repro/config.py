"""Global configuration for deterministic, reproducible runs.

The paper runs all synthetic experiments with a fixed random number generator
seed (Section VI, Hardware Setup).  We centralise seeding here: every module
that needs randomness asks for an :func:`rng` derived from the global seed
and a per-purpose stream name, so adding a new experiment never perturbs the
random streams of existing ones.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field

import numpy as np

#: Default global seed, matching the "same random number generator seed for
#: reproducibility" setup in the paper's evaluation.
DEFAULT_SEED = 42


@dataclass
class ReproConfig:
    """Tunable engine defaults.

    Attributes:
        seed: Global base seed for all random streams.
        default_dim: Default embedding dimensionality (the paper uses 100-D
            vectors for the end-to-end experiments).
        default_threads: Worker count for data-parallel operators.  ``None``
            means "use all available CPUs".
        default_batch_rows: Default mini-batch edge (in tuples) for the
            tensor join when no explicit buffer budget is given.
    """

    seed: int = DEFAULT_SEED
    default_dim: int = 100
    default_threads: int | None = None
    default_batch_rows: int = 1024
    extra: dict = field(default_factory=dict)

    def stream_seed(self, name: str) -> int:
        """Derive a deterministic per-stream seed from the base seed."""
        return (self.seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) % (2**32)

    def rng(self, name: str) -> np.random.Generator:
        """Return a fresh, deterministic generator for the named stream."""
        return np.random.default_rng(self.stream_seed(name))


_config = ReproConfig()


def get_config() -> ReproConfig:
    """Return the process-wide configuration object."""
    return _config


def set_seed(seed: int) -> None:
    """Reset the global base seed (affects subsequently created streams)."""
    _config.seed = int(seed)


def rng(name: str = "default") -> np.random.Generator:
    """Convenience accessor: deterministic generator for ``name``."""
    return _config.rng(name)


def cpu_count() -> int:
    """Number of usable CPUs (respects the config override)."""
    if _config.default_threads is not None:
        return _config.default_threads
    return os.cpu_count() or 1
