"""Global configuration for deterministic, reproducible runs.

The paper runs all synthetic experiments with a fixed random number generator
seed (Section VI, Hardware Setup).  We centralise seeding here: every module
that needs randomness asks for an :func:`rng` derived from the global seed
and a per-purpose stream name, so adding a new experiment never perturbs the
random streams of existing ones.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field

import numpy as np

#: Default global seed, matching the "same random number generator seed for
#: reproducibility" setup in the paper's evaluation.
DEFAULT_SEED = 42


@dataclass
class ReproConfig:
    """Tunable engine defaults.

    Attributes:
        seed: Global base seed for all random streams.
        default_dim: Default embedding dimensionality (the paper uses 100-D
            vectors for the end-to-end experiments).
        default_threads: Worker count for data-parallel operators.  ``None``
            means "use all available CPUs".
        default_batch_rows: Default mini-batch edge (in tuples) for the
            tensor join when no explicit buffer budget is given.
        default_morsel_rows: Upper bound on morsel size (tuples) handed to
            engine workers; small enough that work stealing balances skew,
            large enough that the per-morsel BLAS call dominates dispatch.
        default_buffer_budget_bytes: Process-wide Figure 7 buffer budget for
            dense join intermediates.  ``None`` leaves batch shapes to the
            operator defaults.
        work_stealing: Whether engine workers steal queued morsels from
            each other (disable to get static partitioning).
        default_precision: Operand precision scan joins run at when the
            caller does not pin one: ``fp32`` (exact), ``fp16`` (half-
            precision storage), or the quantized access paths ``int8`` /
            ``pq`` (approximate scan + exact re-rank).
        default_min_recall: Accuracy floor the optimizer must respect
            before it may substitute a quantized access path.
        default_rerank_multiple: Top-k candidate multiple for quantized
            scans — each probe re-ranks ``multiple * k`` candidates in
            fp32.
        service_max_inflight: Admission-control bound on concurrently
            executing queries in a :class:`~repro.service.QueryService`.
        service_admission_timeout_s: How long an over-limit submission
            waits for an execution slot before being rejected with
            backpressure.
        service_coalesce_window_s: How long the first query of a shared-
            scan group waits for concurrently-submitted queries on the
            same (table, column, model) before executing the batch.
        service_coalesce_max_batch: Upper bound on queries fused into one
            shared scan.
        service_plan_cache_size: Entries in the service's logical-plan
            fingerprint -> optimized-plan cache.
        service_result_cache_size: Entries in the semantic result cache.
        service_result_cache_ttl_s: Result-cache entry time-to-live.
        service_near_dup_threshold: Cosine similarity above which a cached
            result is served for a *different* query vector (approximate
            semantic hit).  ``None`` (default) serves exact-key hits only,
            keeping service results bit-identical to serial execution.
        qos_workers: Dispatcher threads in an
            :class:`~repro.service.AsyncQueryService` (how many queries
            it executes concurrently; admission still bounds the total).
            ``None`` means "same as ``service_max_inflight``".
        qos_ewma_alpha: Weight of each new sample in the QoS layer's
            execution-time and arrival-rate EWMAs.
        qos_deadline_safety: Multiplier padded onto the execution-time
            estimate before the shed/degrade decision — raise it to shed
            earlier (more conservative deadlines), lower it toward 1.0
            to gamble on meeting tight ones.
        qos_min_estimate_samples: Executions observed per mode before
            the tracker's estimate is trusted for shedding; a cold
            service never sheds on estimates.
        qos_adaptive_window: Size coalescing gather windows from the
            observed arrival rate (bounded above by
            ``service_coalesce_window_s``) instead of using the fixed
            window.
        qos_window_target_batch: Arrivals the adaptive window aims to
            gather per shared-scan group.
        qos_cache_tinylfu: Enable TinyLFU cost-aware admission on the
            service's semantic result cache.
        qos_default_min_recall: Recall floor applied to QoS submissions
            that do not state one.  ``None`` (default) means queries
            without an explicit floor are never degraded.
        fault_rate: Probability that any one fault-injection site hit
            raises/injects a fault (chaos testing).  ``0.0`` (default)
            disables injection entirely — the injector is never even
            installed, so production paths pay one ``None`` check.
        fault_seed: Seed for the deterministic injection schedule.
            ``None`` derives a stream seed from the global ``seed``, so
            chaos runs are reproducible by default.
        fault_sites: Comma-separated site names injection is limited to
            (e.g. ``"engine.worker,kernel.gemm"``); empty means every
            site.
        fault_kinds: Comma-separated fault kinds to draw from:
            ``transient``, ``permanent``, ``latency``, ``hang``,
            ``kill``.
        fault_latency_ms: Injected latency-spike duration.
        fault_hang_s: How long an injected ``hang`` blocks its worker
            (the watchdog is expected to route around it well before
            this elapses).
        fault_max: Hard cap on total injected faults per process;
            ``None`` means unbounded.
        retry_max_attempts: Attempts (1 initial + retries) a transient
            failure is given at morsel/dispatch granularity.
        retry_base_ms: Base backoff before the first retry; subsequent
            waits use decorrelated jitter from this base.
        retry_cap_ms: Upper bound on any single backoff sleep.
        retry_budget: Total retries one scheduler run (resp. one service
            dispatch) may spend across all its morsels — bounds the
            worst-case added latency under a fault storm.
        breaker_threshold: Consecutive access-path failures that trip a
            circuit breaker open.
        breaker_cooldown_s: Seconds an open breaker waits before
            admitting one half-open trial.
        watchdog_stall_s: Heartbeat age after which the engine watchdog
            declares a worker stuck, re-enqueues its in-flight morsel,
            and respawns a replacement thread.  ``0`` disables the
            watchdog (the scheduler then blocks on plain joins).
        obs_enabled: Master switch for background trace sampling in the
            observability layer.  Disabling only stops *sampled* traces;
            ``explain_analyze=True`` submissions always trace, and the
            metrics registry always counts.
        obs_sample_rate: Fraction of submissions traced when no explicit
            trace was requested, decided by a deterministic counter-hash
            schedule (same idea as fault injection): ``0.0`` samples
            nothing, ``1.0`` traces everything.
        obs_ring_size: Completed traces retained in the tracer's bounded
            ring buffer (oldest evicted first).
        obs_sites: Comma-separated span-site prefixes to record (e.g.
            ``"admission,coalesce,engine"``); empty records every site.
            Spans are named ``site.detail``, so gating is by the part
            before the first dot.
        obs_capture_path: Workload-capture (flight recorder) JSONL file.
            Empty (the default) disables capture entirely — the service
            then pays one ``None`` check per submission.
        obs_capture_max_mb: Size bound on the capture file; exceeding it
            rotates (``path`` -> ``path.1`` -> ...).
        obs_capture_keep: Rotated capture files retained; older ones are
            deleted.
        obs_http_port: TCP port for the live introspection endpoint
            (``/metrics``, ``/health``, ``/traces``, ``/slow``).  ``None``
            (the default) starts no server; ``0`` binds an ephemeral
            port.
        obs_slow_k: Slowest retired traces retained in the slow-query
            log, each with its critical-path breakdown.
        shard_procs: Persistent shard worker *processes* backing the
            coalesced shared scan.  ``0`` (the default) disables sharded
            execution entirely — everything runs in-process exactly as
            before.  With ``N > 0`` the service publishes column stores
            into shared memory, partitions each base table into ``N``
            contiguous row ranges, and fans the stacked scan out across
            the pool; per-query heaps merge at the front door, so results
            stay bit-identical to serial.
        shard_min_rows: Smallest table (rows) worth fanning out across
            shard processes; below it the per-scan dispatch/IPC overhead
            dominates and the planner's ``shard_fanout`` term keeps the
            scan in-process.
        shard_start_method: ``multiprocessing`` start method for shard
            workers.  ``"spawn"`` (the default) is the only method that
            is safe regardless of the parent's thread activity; forks of
            a threaded service deadlock on inherited locks.
        shard_stall_s: Seconds without a heartbeat or reply before the
            pool's watchdog declares a shard worker stuck and respawns
            it (same semantics as the in-process engine watchdog).
        shard_max_respawns: Worker respawns tolerated per pool before a
            scan gives up sharding and falls back to the in-process
            path.
    """

    seed: int = DEFAULT_SEED
    default_dim: int = 100
    default_threads: int | None = None
    default_batch_rows: int = 1024
    default_morsel_rows: int = 1024
    default_buffer_budget_bytes: int | None = None
    work_stealing: bool = True
    default_precision: str = "fp32"
    default_min_recall: float = 0.95
    default_rerank_multiple: int = 4
    service_max_inflight: int = 64
    service_admission_timeout_s: float = 30.0
    service_coalesce_window_s: float = 0.002
    service_coalesce_max_batch: int = 64
    service_plan_cache_size: int = 256
    service_result_cache_size: int = 512
    service_result_cache_ttl_s: float = 300.0
    service_near_dup_threshold: float | None = None
    qos_workers: int | None = None
    qos_ewma_alpha: float = 0.2
    qos_deadline_safety: float = 1.5
    qos_min_estimate_samples: int = 5
    qos_adaptive_window: bool = True
    qos_window_target_batch: int = 8
    qos_cache_tinylfu: bool = False
    qos_default_min_recall: float | None = None
    fault_rate: float = 0.0
    fault_seed: int | None = None
    fault_sites: str = ""
    fault_kinds: str = "transient"
    fault_latency_ms: float = 1.0
    fault_hang_s: float = 30.0
    fault_max: int | None = None
    retry_max_attempts: int = 3
    retry_base_ms: float = 1.0
    retry_cap_ms: float = 50.0
    retry_budget: int = 16
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    watchdog_stall_s: float = 5.0
    obs_enabled: bool = True
    obs_sample_rate: float = 0.01
    obs_ring_size: int = 256
    obs_sites: str = ""
    obs_capture_path: str = ""
    obs_capture_max_mb: float = 64.0
    obs_capture_keep: int = 1
    obs_http_port: int | None = None
    obs_slow_k: int = 32
    shard_procs: int = 0
    shard_min_rows: int = 16384
    shard_start_method: str = "spawn"
    shard_stall_s: float = 10.0
    shard_max_respawns: int = 2
    extra: dict = field(default_factory=dict)

    def stream_seed(self, name: str) -> int:
        """Derive a deterministic per-stream seed from the base seed."""
        return (self.seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) % (2**32)

    def rng(self, name: str) -> np.random.Generator:
        """Return a fresh, deterministic generator for the named stream."""
        return np.random.default_rng(self.stream_seed(name))


def _env_number(name: str, parse):
    """Parse an optional numeric env var; warn and ignore malformed values
    (this runs at import time — a typo must not break ``import repro``)."""
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return parse(raw)
    except (ValueError, OverflowError):  # OverflowError: e.g. int(float("inf"))
        import warnings

        warnings.warn(
            f"ignoring malformed {name}={raw!r} (expected a number)",
            RuntimeWarning,
            stacklevel=3,
        )
        return None


def _config_from_env() -> ReproConfig:
    """Build the process-wide config, honouring ``REPRO_*`` overrides.

    The benchmark harness (``python -m repro.bench``) forwards its
    thread-count/budget knobs to the pytest subprocess through these
    variables, so figure runs exercise the engine at the requested scale.
    """
    config = ReproConfig()
    threads = _env_number("REPRO_THREADS", int)
    if threads is not None:
        config.default_threads = max(1, threads)
    morsel_rows = _env_number("REPRO_MORSEL_ROWS", int)
    if morsel_rows is not None:
        config.default_morsel_rows = max(1, morsel_rows)
    # Conversion and positivity both live inside the guarded parse so
    # "nan"/"inf"/zero/negative are rejected like any other malformed
    # value instead of crashing import or poisoning every tensor join.
    def _budget(raw: str) -> int:
        value = int(float(raw) * 2**20)
        if value < 1:
            raise ValueError("budget must be positive")
        return value

    budget_bytes = _env_number("REPRO_BUFFER_BUDGET_MB", _budget)
    if budget_bytes is not None:
        config.default_buffer_budget_bytes = budget_bytes
    precision = os.environ.get("REPRO_PRECISION", "")
    if precision:
        if precision in ("fp32", "fp16", "int8", "pq"):
            config.default_precision = precision
        else:
            import warnings

            warnings.warn(
                f"ignoring unknown REPRO_PRECISION={precision!r} "
                "(expected fp32|fp16|int8|pq)",
                RuntimeWarning,
                stacklevel=2,
            )
    rerank = _env_number("REPRO_RERANK_MULTIPLE", int)
    if rerank is not None:
        config.default_rerank_multiple = max(1, rerank)
    # Service knobs: the fig_service benchmark (and any deployment
    # wrapper) forwards concurrency/caching settings through these.
    inflight = _env_number("REPRO_SERVICE_MAX_INFLIGHT", int)
    if inflight is not None:
        config.service_max_inflight = max(1, inflight)
    window_ms = _env_number("REPRO_SERVICE_COALESCE_WINDOW_MS", float)
    if window_ms is not None:
        config.service_coalesce_window_s = max(0.0, window_ms) / 1000.0
    coalesce_batch = _env_number("REPRO_SERVICE_COALESCE_MAX_BATCH", int)
    if coalesce_batch is not None:
        config.service_coalesce_max_batch = max(1, coalesce_batch)
    plan_cache = _env_number("REPRO_SERVICE_PLAN_CACHE", int)
    if plan_cache is not None:
        config.service_plan_cache_size = max(0, plan_cache)
    result_cache = _env_number("REPRO_SERVICE_RESULT_CACHE", int)
    if result_cache is not None:
        config.service_result_cache_size = max(0, result_cache)
    result_ttl = _env_number("REPRO_SERVICE_RESULT_TTL_S", float)
    if result_ttl is not None:
        config.service_result_cache_ttl_s = max(0.0, result_ttl)
    near_dup = _env_number("REPRO_SERVICE_NEARDUP", float)
    if near_dup is not None:
        config.service_near_dup_threshold = min(1.0, max(-1.0, near_dup))
    # Same convention as REPRO_BENCH_SMOKE: unset, empty, or "0" mean off.
    if os.environ.get("REPRO_NO_WORK_STEALING", "") not in ("", "0"):
        config.work_stealing = False
    # QoS knobs: deadline/priority-aware serving (repro.service QoS layer).
    qos_workers = _env_number("REPRO_QOS_WORKERS", int)
    if qos_workers is not None:
        config.qos_workers = max(1, qos_workers)
    alpha = _env_number("REPRO_QOS_EWMA_ALPHA", float)
    if alpha is not None and 0.0 < alpha <= 1.0:
        config.qos_ewma_alpha = alpha
    safety = _env_number("REPRO_QOS_DEADLINE_SAFETY", float)
    if safety is not None:
        config.qos_deadline_safety = max(1.0, safety)
    min_samples = _env_number("REPRO_QOS_MIN_SAMPLES", int)
    if min_samples is not None:
        config.qos_min_estimate_samples = max(1, min_samples)
    target = _env_number("REPRO_QOS_WINDOW_TARGET", int)
    if target is not None:
        config.qos_window_target_batch = max(1, target)
    min_recall = _env_number("REPRO_QOS_MIN_RECALL", float)
    if min_recall is not None:
        config.qos_default_min_recall = min(1.0, max(0.0, min_recall))
    # Boolean knobs: an explicit value set; "0" means off, anything else on.
    adaptive = os.environ.get("REPRO_QOS_ADAPTIVE_WINDOW", "")
    if adaptive:
        config.qos_adaptive_window = adaptive != "0"
    tinylfu = os.environ.get("REPRO_QOS_CACHE_TINYLFU", "")
    if tinylfu:
        config.qos_cache_tinylfu = tinylfu != "0"
    # Reliability knobs: fault injection (chaos testing), retry/backoff,
    # circuit breakers, and the engine worker watchdog.
    fault_rate = _env_number("REPRO_FAULT_RATE", float)
    if fault_rate is not None:
        config.fault_rate = min(1.0, max(0.0, fault_rate))
    fault_seed = _env_number("REPRO_FAULT_SEED", int)
    if fault_seed is not None:
        config.fault_seed = fault_seed
    config.fault_sites = os.environ.get("REPRO_FAULT_SITES", config.fault_sites)
    config.fault_kinds = os.environ.get("REPRO_FAULT_KINDS", config.fault_kinds)
    fault_latency = _env_number("REPRO_FAULT_LATENCY_MS", float)
    if fault_latency is not None:
        config.fault_latency_ms = max(0.0, fault_latency)
    fault_hang = _env_number("REPRO_FAULT_HANG_S", float)
    if fault_hang is not None:
        config.fault_hang_s = max(0.0, fault_hang)
    fault_max = _env_number("REPRO_FAULT_MAX", int)
    if fault_max is not None:
        config.fault_max = max(0, fault_max)
    retry_attempts = _env_number("REPRO_RETRY_MAX_ATTEMPTS", int)
    if retry_attempts is not None:
        config.retry_max_attempts = max(1, retry_attempts)
    retry_base = _env_number("REPRO_RETRY_BASE_MS", float)
    if retry_base is not None:
        config.retry_base_ms = max(0.0, retry_base)
    retry_cap = _env_number("REPRO_RETRY_CAP_MS", float)
    if retry_cap is not None:
        config.retry_cap_ms = max(0.0, retry_cap)
    retry_budget = _env_number("REPRO_RETRY_BUDGET", int)
    if retry_budget is not None:
        config.retry_budget = max(0, retry_budget)
    breaker_threshold = _env_number("REPRO_BREAKER_THRESHOLD", int)
    if breaker_threshold is not None:
        config.breaker_threshold = max(1, breaker_threshold)
    breaker_cooldown = _env_number("REPRO_BREAKER_COOLDOWN_S", float)
    if breaker_cooldown is not None:
        config.breaker_cooldown_s = max(0.0, breaker_cooldown)
    watchdog_stall = _env_number("REPRO_WATCHDOG_STALL_S", float)
    if watchdog_stall is not None:
        config.watchdog_stall_s = max(0.0, watchdog_stall)
    # Observability knobs: trace sampling, ring retention, site gating.
    obs_enabled = os.environ.get("REPRO_OBS_ENABLED", "")
    if obs_enabled:
        config.obs_enabled = obs_enabled != "0"
    obs_sample = _env_number("REPRO_OBS_SAMPLE", float)
    if obs_sample is not None:
        config.obs_sample_rate = min(1.0, max(0.0, obs_sample))
    obs_ring = _env_number("REPRO_OBS_RING", int)
    if obs_ring is not None:
        config.obs_ring_size = max(1, obs_ring)
    config.obs_sites = os.environ.get("REPRO_OBS_SITES", config.obs_sites)
    # Flight-recorder knobs: workload capture, slow log, live endpoint.
    config.obs_capture_path = os.environ.get(
        "REPRO_OBS_CAPTURE", config.obs_capture_path
    )
    capture_mb = _env_number("REPRO_OBS_CAPTURE_MAX_MB", float)
    if capture_mb is not None:
        config.obs_capture_max_mb = max(0.001, capture_mb)
    capture_keep = _env_number("REPRO_OBS_CAPTURE_KEEP", int)
    if capture_keep is not None:
        config.obs_capture_keep = max(0, capture_keep)
    http_port = _env_number("REPRO_OBS_HTTP_PORT", int)
    if http_port is not None and 0 <= http_port <= 65535:
        config.obs_http_port = http_port
    slow_k = _env_number("REPRO_OBS_SLOW_K", int)
    if slow_k is not None:
        config.obs_slow_k = max(0, slow_k)
    # Sharded-execution knobs: pool size, fan-out floor, watchdog.
    shard_procs = _env_number("REPRO_SHARD_PROCS", int)
    if shard_procs is not None:
        config.shard_procs = max(0, shard_procs)
    shard_min_rows = _env_number("REPRO_SHARD_MIN_ROWS", int)
    if shard_min_rows is not None:
        config.shard_min_rows = max(0, shard_min_rows)
    start_method = os.environ.get("REPRO_SHARD_START_METHOD", "")
    if start_method:
        config.shard_start_method = start_method
    shard_stall = _env_number("REPRO_SHARD_STALL_S", float)
    if shard_stall is not None:
        config.shard_stall_s = max(0.0, shard_stall)
    shard_respawns = _env_number("REPRO_SHARD_MAX_RESPAWNS", int)
    if shard_respawns is not None:
        config.shard_max_respawns = max(0, shard_respawns)
    return config


_config = _config_from_env()


def get_config() -> ReproConfig:
    """Return the process-wide configuration object."""
    return _config


def configure(**overrides) -> ReproConfig:
    """Update fields of the process-wide configuration in place.

    Example::

        repro.config.configure(default_threads=4,
                               default_buffer_budget_bytes=64 << 20)
    """
    from dataclasses import fields

    valid = {f.name for f in fields(ReproConfig)}
    for name, value in overrides.items():
        if name not in valid:
            raise AttributeError(f"unknown config field {name!r}")
        setattr(_config, name, value)
    return _config


def set_seed(seed: int) -> None:
    """Reset the global base seed (affects subsequently created streams)."""
    _config.seed = int(seed)


def rng(name: str = "default") -> np.random.Generator:
    """Convenience accessor: deterministic generator for ``name``."""
    return _config.rng(name)


def cpu_count() -> int:
    """Number of usable CPUs (respects the config override)."""
    if _config.default_threads is not None:
        return _config.default_threads
    return os.cpu_count() or 1
