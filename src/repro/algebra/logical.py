"""Logical query plan with context-enhanced operators.

Implements the extended relational algebra of Section III-C: alongside the
classic ``Scan`` / ``Filter`` (sigma) / ``Project`` (pi) / equi-``Join``
nodes, the plan language has:

* :class:`Embed` — the embedding operator ``E_mu(R)``: a special projection
  that maps a context-rich column into tensor space with a named model,
* :class:`EJoin` — the context-enhanced theta-join ``R |><|_{E,mu,theta} S``
  over a similarity condition,

plus the algebraic metadata the optimizer needs (which columns a predicate
touches, whether a node is embedding-dependent).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.conditions import JoinCondition
from ..errors import PlanError
from ..relational.expressions import Expression


class LogicalNode:
    """Base class for logical plan nodes."""

    def children(self) -> list["LogicalNode"]:
        raise NotImplementedError

    def with_children(self, children: list["LogicalNode"]) -> "LogicalNode":
        """Structural copy with replaced children (rewrite machinery)."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    def explain(self, depth: int = 0) -> str:
        pad = "  " * depth
        lines = [pad + self.describe()]
        for child in self.children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)

    def visible_columns(self) -> set[str] | None:
        """Columns this subtree exposes, or None if unknown (no catalog)."""
        return None


@dataclass(frozen=True)
class ScanNode(LogicalNode):
    """Base table access by catalog name."""

    table_name: str

    def children(self) -> list[LogicalNode]:
        return []

    def with_children(self, children: list[LogicalNode]) -> "ScanNode":
        if children:
            raise PlanError("ScanNode takes no children")
        return self

    def describe(self) -> str:
        return f"Scan({self.table_name})"


@dataclass(frozen=True)
class FilterNode(LogicalNode):
    """Relational selection sigma_theta."""

    child: LogicalNode
    predicate: Expression

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def with_children(self, children: list[LogicalNode]) -> "FilterNode":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"


@dataclass(frozen=True)
class ProjectNode(LogicalNode):
    """Projection pi."""

    child: LogicalNode
    names: tuple[str, ...]

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def with_children(self, children: list[LogicalNode]) -> "ProjectNode":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        return f"Project({list(self.names)})"


@dataclass(frozen=True)
class LimitNode(LogicalNode):
    child: LogicalNode
    n: int

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def with_children(self, children: list[LogicalNode]) -> "LimitNode":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        return f"Limit({self.n})"


@dataclass(frozen=True)
class EmbedNode(LogicalNode):
    """The embedding operator ``E_mu``: adds a tensor column.

    ``E_mu(R) = {t in R, t -> mu(t)}`` — modelled here as appending
    ``output_column`` (the embedding of ``column`` under ``model_name``);
    the original column remains available for decode / display, playing the
    role of the lookup-table ``E^-1`` mechanism.
    """

    child: LogicalNode
    column: str
    model_name: str
    output_column: str = ""

    def __post_init__(self) -> None:
        if not self.output_column:
            object.__setattr__(self, "output_column", f"__emb_{self.column}")

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def with_children(self, children: list[LogicalNode]) -> "EmbedNode":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        return f"Embed(E_{{{self.model_name}}}({self.column}) -> {self.output_column})"


@dataclass(frozen=True)
class ESelectNode(LogicalNode):
    """Context-enhanced selection ``sigma_{E,mu,theta}(R)`` (Section III-C).

    Keeps the tuples of ``child`` whose ``column`` is similar to ``query``
    under model ``model_name`` and the given condition, appending the
    similarity as ``score_column``.  The relational-algebra equivalence
    ``sigma_theta(E_mu(R)) == sigma_thetaE(E_mu(sigma_thetaR(R)))`` is what
    lets the optimizer commute cheap relational filters below it.
    """

    child: LogicalNode
    column: str
    query: object
    model_name: str
    condition: JoinCondition
    score_column: str = "similarity"

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def with_children(self, children: list[LogicalNode]) -> "ESelectNode":
        (child,) = children
        return replace(self, child=child)

    def describe(self) -> str:
        return (
            f"ESelect({self.column} ~ {self.query!r}, mu={self.model_name}, "
            f"{self.condition})"
        )


@dataclass(frozen=True)
class EquiJoinNode(LogicalNode):
    """Classic relational equi-join (hash-joinable)."""

    left: LogicalNode
    right: LogicalNode
    left_key: str
    right_key: str

    def children(self) -> list[LogicalNode]:
        return [self.left, self.right]

    def with_children(self, children: list[LogicalNode]) -> "EquiJoinNode":
        left, right = children
        return replace(self, left=left, right=right)

    def describe(self) -> str:
        return f"EquiJoin({self.left_key} == {self.right_key})"


@dataclass(frozen=True)
class EJoinNode(LogicalNode):
    """Context-enhanced join ``R |><|_{E,mu,theta} S`` (Section III-C).

    Attributes:
        left_column / right_column: context-rich join columns.
        model_name: the model ``mu`` both sides are embedded with (the
            E-theta-Join equivalence requires the *same* model).
        condition: similarity theta (threshold or top-k).
        prefetch: whether embeddings are hoisted out of the pairwise loop;
            the optimizer's :class:`~repro.algebra.rules.PrefetchEmbeddings`
            rule turns this on (the paper's headline logical optimization).
        strategy_hint: physical strategy override ("tensor", "index", ...).
    """

    left: LogicalNode
    right: LogicalNode
    left_column: str
    right_column: str
    model_name: str
    condition: JoinCondition
    prefetch: bool = False
    strategy_hint: str | None = None
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def children(self) -> list[LogicalNode]:
        return [self.left, self.right]

    def with_children(self, children: list[LogicalNode]) -> "EJoinNode":
        left, right = children
        return replace(self, left=left, right=right)

    def describe(self) -> str:
        flags = []
        if self.prefetch:
            flags.append("prefetch")
        if self.strategy_hint:
            flags.append(f"strategy={self.strategy_hint}")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"EJoin({self.left_column} ~ {self.right_column}, "
            f"mu={self.model_name}, {self.condition}){suffix}"
        )


def walk(node: LogicalNode):
    """Pre-order traversal of a plan."""
    yield node
    for child in node.children():
        yield from walk(child)


def plan_equal(a: LogicalNode, b: LogicalNode) -> bool:
    """Structural plan equality (dataclass equality is recursive)."""
    return a == b
