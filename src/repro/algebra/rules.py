"""Rewrite rules: the logical optimizations of Sections III-C and IV-A.

Each rule is a local transformation applied bottom-up to a fixpoint by the
:class:`~repro.algebra.optimizer.Optimizer`:

* :class:`PushFilterBelowEmbed` — the E-Selection equivalence
  ``sigma_theta(E_mu(R)) == sigma_thetaE(E_mu(sigma_thetaR(R)))``:
  relational predicates slide below the (expensive) embedding operator so
  "the selectivity information from the relational column propagates before
  the embeddings".
* :class:`PushFilterIntoEJoin` — classic selection pushdown through the
  E-theta-join: single-side predicates move onto that input, shrinking the
  cardinality of the costliest plan fragment.
* :class:`PrefetchEmbeddings` — the E-NLJ Prefetch Optimization: marks
  every E-join to embed each tuple once instead of per pair (quadratic →
  linear model cost).
* :class:`OrderEJoinInputs` — the loop-order heuristic: keep the smaller
  relation on the inner (right) side for cache locality (Figure 10), when
  cardinalities are known and the condition is symmetric.
"""

from __future__ import annotations

import abc

from ..core.conditions import ThresholdCondition
from ..relational.catalog import Catalog
from .logical import (
    EJoinNode,
    EmbedNode,
    ESelectNode,
    FilterNode,
    LogicalNode,
    ScanNode,
    walk,
)


class RewriteRule(abc.ABC):
    """A local plan transformation; returns None when not applicable."""

    name: str = "rule"

    @abc.abstractmethod
    def apply(self, node: LogicalNode) -> LogicalNode | None:
        """Rewrite ``node`` or return None if the rule does not apply."""


class PushFilterBelowEmbed(RewriteRule):
    """sigma_theta(E_mu(R)) -> E_mu(sigma_theta(R)) when theta is
    embedding-independent (does not read the embedding output column)."""

    name = "push-filter-below-embed"

    def apply(self, node: LogicalNode) -> LogicalNode | None:
        if not isinstance(node, FilterNode):
            return None
        child = node.child
        if not isinstance(child, EmbedNode):
            return None
        predicate_cols = node.predicate.columns()
        if child.output_column in predicate_cols:
            return None  # predicate needs the embedding; cannot push
        pushed = FilterNode(child.child, node.predicate)
        return EmbedNode(
            pushed, child.column, child.model_name, child.output_column
        )


class PushFilterIntoEJoin(RewriteRule):
    """Filter above an E-join moves to the input that owns its columns."""

    name = "push-filter-into-ejoin"

    def apply(self, node: LogicalNode) -> LogicalNode | None:
        if not isinstance(node, FilterNode):
            return None
        child = node.child
        if not isinstance(child, EJoinNode):
            return None
        cols = node.predicate.columns()
        left_cols = child.left.visible_columns()
        right_cols = child.right.visible_columns()
        if left_cols is not None and cols <= left_cols:
            new_left = FilterNode(child.left, node.predicate)
            return child.with_children([new_left, child.right])
        if right_cols is not None and cols <= right_cols:
            new_right = FilterNode(child.right, node.predicate)
            return child.with_children([child.left, new_right])
        return None


class PushFilterBelowESelect(RewriteRule):
    """sigma_theta(sigma_{E,mu}(R)) -> sigma_{E,mu}(sigma_theta(R)).

    Two selections commute; moving the cheap relational one first shrinks
    the cardinality the (model-bearing) E-selection sees — unless the
    predicate reads the similarity score the E-selection produces, or the
    E-selection is top-k (not a pure per-tuple predicate: its result
    depends on the surviving set, so it does not commute).
    """

    name = "push-filter-below-eselect"

    def apply(self, node: LogicalNode) -> LogicalNode | None:
        from ..core.conditions import ThresholdCondition

        if not isinstance(node, FilterNode):
            return None
        child = node.child
        if not isinstance(child, ESelectNode):
            return None
        if not isinstance(child.condition, ThresholdCondition):
            return None
        if child.score_column in node.predicate.columns():
            return None
        pushed = FilterNode(child.child, node.predicate)
        return child.with_children([pushed])


class PrefetchEmbeddings(RewriteRule):
    """Enable the prefetch (embed-once) execution mode on every E-join."""

    name = "prefetch-embeddings"

    def apply(self, node: LogicalNode) -> LogicalNode | None:
        if isinstance(node, EJoinNode) and not node.prefetch:
            return EJoinNode(
                node.left,
                node.right,
                node.left_column,
                node.right_column,
                node.model_name,
                node.condition,
                prefetch=True,
                strategy_hint=node.strategy_hint,
            )
        return None


class OrderEJoinInputs(RewriteRule):
    """Keep the smaller relation inner (right side) for locality.

    Only fires for symmetric (threshold) conditions — top-k is defined per
    left tuple and cannot be flipped — and only when both inputs bottom out
    at catalogued scans so cardinalities are known.
    """

    name = "order-ejoin-inputs"

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    def _cardinality(self, node: LogicalNode) -> int | None:
        scans = [n for n in walk(node) if isinstance(n, ScanNode)]
        if len(scans) != 1 or scans[0].table_name not in self._catalog:
            return None
        return self._catalog.cardinality(scans[0].table_name)

    def apply(self, node: LogicalNode) -> LogicalNode | None:
        if not isinstance(node, EJoinNode):
            return None
        if not isinstance(node.condition, ThresholdCondition):
            return None
        if node.metadata.get("ordered"):
            return None
        left_n = self._cardinality(node.left)
        right_n = self._cardinality(node.right)
        if left_n is None or right_n is None:
            return None
        if right_n <= left_n:
            # Already smaller-inner; just mark to stop re-application.
            marked = EJoinNode(
                node.left, node.right, node.left_column, node.right_column,
                node.model_name, node.condition, prefetch=node.prefetch,
                strategy_hint=node.strategy_hint,
            )
            marked.metadata["ordered"] = True
            return marked
        swapped = EJoinNode(
            node.right,
            node.left,
            node.right_column,
            node.left_column,
            node.model_name,
            node.condition,
            prefetch=node.prefetch,
            strategy_hint=node.strategy_hint,
        )
        swapped.metadata["ordered"] = True
        swapped.metadata["swapped"] = True
        return swapped


def default_rules(catalog: Catalog | None = None) -> list[RewriteRule]:
    """The standard rule set, in application order."""
    rules: list[RewriteRule] = [
        PushFilterBelowEmbed(),
        PushFilterBelowESelect(),
        PushFilterIntoEJoin(),
        PrefetchEmbeddings(),
    ]
    if catalog is not None:
        rules.append(OrderEJoinInputs(catalog))
    return rules
