"""Extended relational algebra, rewrite rules, optimizer, physical planner."""

from .costing import PlanEstimate, compare_plans, estimate_cost
from .logical import (
    EJoinNode,
    EmbedNode,
    EquiJoinNode,
    ESelectNode,
    FilterNode,
    LimitNode,
    LogicalNode,
    ProjectNode,
    ScanNode,
    plan_equal,
    walk,
)
from .optimizer import OptimizationTrace, Optimizer, visible_columns
from .physical_planner import ExecutionContext, ExecutionReport, execute
from .rules import (
    OrderEJoinInputs,
    PrefetchEmbeddings,
    PushFilterBelowEmbed,
    PushFilterBelowESelect,
    PushFilterIntoEJoin,
    RewriteRule,
    default_rules,
)

__all__ = [
    "EJoinNode",
    "PlanEstimate",
    "compare_plans",
    "estimate_cost",
    "ESelectNode",
    "PushFilterBelowESelect",
    "EmbedNode",
    "EquiJoinNode",
    "ExecutionContext",
    "ExecutionReport",
    "FilterNode",
    "LimitNode",
    "LogicalNode",
    "OptimizationTrace",
    "Optimizer",
    "OrderEJoinInputs",
    "PrefetchEmbeddings",
    "ProjectNode",
    "PushFilterBelowEmbed",
    "PushFilterIntoEJoin",
    "RewriteRule",
    "ScanNode",
    "default_rules",
    "execute",
    "plan_equal",
    "visible_columns",
    "walk",
]
