"""Rule-driven logical optimizer.

Applies :mod:`~repro.algebra.rules` bottom-up to a fixpoint.  The catalog
(when provided) supplies column visibility and cardinalities so pushdown
and input-ordering rules can fire.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import OptimizerError
from ..relational.catalog import Catalog
from .logical import (
    EJoinNode,
    EmbedNode,
    EquiJoinNode,
    ESelectNode,
    FilterNode,
    LimitNode,
    LogicalNode,
    ProjectNode,
    ScanNode,
)
from .rules import RewriteRule, default_rules

_MAX_PASSES = 32


def visible_columns(node: LogicalNode, catalog: Catalog | None) -> set[str] | None:
    """Columns a subtree exposes, or None when unknowable."""
    if isinstance(node, ScanNode):
        if catalog is None or node.table_name not in catalog:
            return None
        return set(catalog.get(node.table_name).schema.names)
    if isinstance(node, FilterNode):
        return visible_columns(node.child, catalog)
    if isinstance(node, LimitNode):
        return visible_columns(node.child, catalog)
    if isinstance(node, ProjectNode):
        return set(node.names)
    if isinstance(node, EmbedNode):
        base = visible_columns(node.child, catalog)
        if base is None:
            return None
        return base | {node.output_column}
    if isinstance(node, ESelectNode):
        base = visible_columns(node.child, catalog)
        if base is None:
            return None
        return base | {node.score_column}
    if isinstance(node, (EJoinNode, EquiJoinNode)):
        left = visible_columns(node.children()[0], catalog)
        right = visible_columns(node.children()[1], catalog)
        if left is None or right is None:
            return None
        return left | right
    return None


@dataclass
class OptimizationTrace:
    """Record of rule applications for EXPLAIN output."""

    steps: list[str] = field(default_factory=list)

    def record(self, rule: RewriteRule, before: LogicalNode, after: LogicalNode) -> None:
        self.steps.append(
            f"{rule.name}: {before.describe()} -> {after.describe()}"
        )


class Optimizer:
    """Bottom-up fixpoint rewriter."""

    def __init__(
        self,
        rules: list[RewriteRule] | None = None,
        *,
        catalog: Catalog | None = None,
    ) -> None:
        self.catalog = catalog
        self.rules = default_rules(catalog) if rules is None else list(rules)
        self.trace = OptimizationTrace()

    def optimize(self, plan: LogicalNode) -> LogicalNode:
        """Rewrite to fixpoint; raises if rules fail to converge."""
        self.trace = OptimizationTrace()
        current = plan
        for _ in range(_MAX_PASSES):
            rewritten, changed = self._apply_once(current)
            if not changed:
                return rewritten
            current = rewritten
        raise OptimizerError(
            f"optimizer did not converge within {_MAX_PASSES} passes; "
            f"trace: {self.trace.steps[-5:]}"
        )

    def _apply_once(self, node: LogicalNode) -> tuple[LogicalNode, bool]:
        # Rewrite children first (bottom-up).
        changed = False
        new_children = []
        for child in node.children():
            rewritten, child_changed = self._apply_once(child)
            new_children.append(rewritten)
            changed = changed or child_changed
        if changed:
            node = node.with_children(new_children)
        # Then try rules at this node.
        for rule in self.rules:
            result = self._try_rule(rule, node)
            if result is not None:
                self.trace.record(rule, node, result)
                return result, True
        return node, changed

    def _try_rule(self, rule: RewriteRule, node: LogicalNode) -> LogicalNode | None:
        # Rules that need column visibility get it injected lazily.
        from .rules import PushFilterIntoEJoin

        if isinstance(rule, PushFilterIntoEJoin):
            return self._push_filter_into_ejoin(node)
        return rule.apply(node)

    def _push_filter_into_ejoin(self, node: LogicalNode) -> LogicalNode | None:
        """Catalog-aware variant of the single-side filter pushdown."""
        if not isinstance(node, FilterNode):
            return None
        child = node.child
        if not isinstance(child, EJoinNode):
            return None
        cols = node.predicate.columns()
        left_cols = visible_columns(child.left, self.catalog)
        right_cols = visible_columns(child.right, self.catalog)
        in_left = left_cols is not None and cols <= left_cols
        in_right = right_cols is not None and cols <= right_cols
        if in_left and in_right:
            return None  # ambiguous (shared names); keep above the join
        if in_left:
            return child.with_children(
                [FilterNode(child.left, node.predicate), child.right]
            )
        if in_right:
            return child.with_children(
                [child.left, FilterNode(child.right, node.predicate)]
            )
        return None
