"""Logical-plan cost estimation.

Walks a logical plan bottom-up, propagating cardinality estimates from the
catalog (uniformity assumptions for relational predicates) and charging
each node with the paper's cost equations.  This is what EXPLAIN-style
tooling and the what-if comparisons in tests use; the physical planner's
access-path choice consumes the same :class:`~repro.core.cost_model`
primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import get_config
from ..core.conditions import TopKCondition
from ..core.cost_model import (
    CostParams,
    choose_scan_precision,
    e_selection_cost,
    naive_nlj_cost,
    prefetch_nlj_cost,
    tensor_join_cost,
)
from ..core.index_join import DEFAULT_PROBE_K
from ..errors import PlanError
from ..relational.catalog import Catalog
from .logical import (
    EJoinNode,
    EmbedNode,
    EquiJoinNode,
    ESelectNode,
    FilterNode,
    LimitNode,
    LogicalNode,
    ProjectNode,
    ScanNode,
)

def _merge_breakdowns(a: dict[str, float], b: dict[str, float]) -> dict[str, float]:
    merged = dict(a)
    for label, amount in b.items():
        merged[label] = merged.get(label, 0.0) + amount
    return merged


#: Default selectivity guess for predicates we cannot estimate.
DEFAULT_PREDICATE_SELECTIVITY = 0.3
#: Default match selectivity of a threshold E-join (pairs emitted / |R||S|).
DEFAULT_SIMILARITY_SELECTIVITY = 0.01


@dataclass
class PlanEstimate:
    """Cost and cardinality estimate of a (sub)plan."""

    rows: float
    cost: float
    breakdown: dict[str, float] = field(default_factory=dict)

    def add(self, label: str, amount: float) -> None:
        self.cost += amount
        self.breakdown[label] = self.breakdown.get(label, 0.0) + amount


def estimate_cost(
    plan: LogicalNode,
    catalog: Catalog,
    *,
    params: CostParams | None = None,
    default_dim: int = 100,
    precision: str | None = None,
    assume_stores_built: bool = False,
) -> PlanEstimate:
    """Estimate total abstract cost and output cardinality of a plan.

    ``precision`` selects the operand precision scan E-joins are costed
    at (``None`` defaults from the config's ``REPRO_PRECISION`` knob);
    quantized precisions charge the compressed-scan-plus-re-rank
    equation instead of the fp32 tensor formulation when the chooser
    would adopt them.  By default the estimate models a *cold* context
    (the quantizer fit/encode build is charged, matching a first
    execution); ``assume_stores_built=True`` models a warm engine whose
    cached :class:`~repro.core.quantized_join.QuantizedRelation` stores
    amortize the build.
    """
    params = params or CostParams()
    params.validate()
    if precision is None:
        precision = get_config().default_precision
    return _estimate(
        plan, catalog, params, default_dim, precision, assume_stores_built
    )


def _estimate(
    node: LogicalNode,
    catalog: Catalog,
    params: CostParams,
    dim: int,
    precision: str = "fp32",
    stores_built: bool = False,
) -> PlanEstimate:
    if isinstance(node, ScanNode):
        rows = float(catalog.cardinality(node.table_name))
        est = PlanEstimate(rows=rows, cost=0.0)
        est.add("scan", rows * params.access)
        return est

    if isinstance(node, FilterNode):
        child = _estimate(node.child, catalog, params, dim, precision, stores_built)
        est = PlanEstimate(
            rows=child.rows * DEFAULT_PREDICATE_SELECTIVITY,
            cost=child.cost,
            breakdown=dict(child.breakdown),
        )
        est.add("filter", child.rows * params.access)
        return est

    if isinstance(node, (ProjectNode, LimitNode)):
        child = _estimate(node.children()[0], catalog, params, dim, precision, stores_built)
        rows = (
            min(child.rows, node.n) if isinstance(node, LimitNode) else child.rows
        )
        return PlanEstimate(rows=rows, cost=child.cost, breakdown=dict(child.breakdown))

    if isinstance(node, EmbedNode):
        child = _estimate(node.child, catalog, params, dim, precision, stores_built)
        est = PlanEstimate(
            rows=child.rows, cost=child.cost, breakdown=dict(child.breakdown)
        )
        est.add("embed", child.rows * params.model)
        return est

    if isinstance(node, ESelectNode):
        child = _estimate(node.child, catalog, params, dim, precision, stores_built)
        est = PlanEstimate(rows=0.0, cost=child.cost, breakdown=dict(child.breakdown))
        est.add("eselect", e_selection_cost(int(child.rows), dim, params))
        if isinstance(node.condition, TopKCondition):
            est.rows = float(min(node.condition.k, child.rows))
        else:
            est.rows = child.rows * DEFAULT_SIMILARITY_SELECTIVITY
        return est

    if isinstance(node, EquiJoinNode):
        left = _estimate(node.left, catalog, params, dim, precision, stores_built)
        right = _estimate(node.right, catalog, params, dim, precision, stores_built)
        est = PlanEstimate(
            rows=max(left.rows, right.rows),
            cost=left.cost + right.cost,
            breakdown=_merge_breakdowns(left.breakdown, right.breakdown),
        )
        est.add("hash-join", (left.rows + right.rows) * params.access)
        return est

    if isinstance(node, EJoinNode):
        left = _estimate(node.left, catalog, params, dim, precision, stores_built)
        right = _estimate(node.right, catalog, params, dim, precision, stores_built)
        est = PlanEstimate(
            rows=0.0,
            cost=left.cost + right.cost,
            breakdown=_merge_breakdowns(left.breakdown, right.breakdown),
        )
        n_left, n_right = int(left.rows), int(right.rows)
        if not node.prefetch:
            est.add("ejoin-naive", naive_nlj_cost(n_left, n_right, dim, params))
        elif node.strategy_hint == "nlj":
            est.add("ejoin-nlj", prefetch_nlj_cost(n_left, n_right, dim, params))
        elif precision in ("int8", "pq"):
            # Mirror the planner's gate: the quantized equation is charged
            # only when the chooser would actually adopt the quantized
            # path (recall floor, cost, and — unless the caller models a
            # warm engine — the quantizer build), so estimates stay
            # aligned with what execution runs.
            k = (
                node.condition.k
                if isinstance(node.condition, TopKCondition)
                else DEFAULT_PROBE_K
            )
            decision = choose_scan_precision(
                n_left,
                n_right,
                k,
                dim,
                precision=precision,
                params=params,
                store_built=stores_built
                and isinstance(node.right, ScanNode),
            )
            if decision.precision == precision:
                est.add(
                    f"ejoin-tensor-{precision}", decision.quantized_cost
                )
            else:
                est.add(
                    "ejoin-tensor",
                    tensor_join_cost(n_left, n_right, dim, params),
                )
        else:
            est.add("ejoin-tensor", tensor_join_cost(n_left, n_right, dim, params))
        if isinstance(node.condition, TopKCondition):
            est.rows = left.rows * node.condition.k
        else:
            est.rows = left.rows * right.rows * DEFAULT_SIMILARITY_SELECTIVITY
        return est

    raise PlanError(f"cannot estimate cost of {type(node).__name__}")


def compare_plans(
    plans: dict[str, LogicalNode],
    catalog: Catalog,
    *,
    params: CostParams | None = None,
) -> list[tuple[str, PlanEstimate]]:
    """Estimate several candidate plans; cheapest first."""
    estimates = [
        (name, estimate_cost(plan, catalog, params=params))
        for name, plan in plans.items()
    ]
    return sorted(estimates, key=lambda pair: pair[1].cost)
