"""Physical planning and execution of logical plans.

Bridges the extended algebra to the physical operators: relational nodes
map onto :mod:`repro.relational.operators`; :class:`EmbedNode` runs the
model through an :class:`~repro.embedding.cache.EmbeddingStore` (embed-once
semantics); :class:`EJoinNode` is dispatched to a physical join strategy —
tensor scan, index probe (with relational pre-filtering pushed into the
probe), or the deliberately-naive per-pair NLJ when prefetching was not
enabled by the optimizer.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..config import get_config
from ..core.conditions import TopKCondition
from ..core.cost_model import (
    CostParams,
    choose_access_path,
    choose_scan_precision,
)
from ..core.index_join import DEFAULT_PROBE_K, index_join
from ..core.join import ejoin
from ..core.nlj import naive_nlj
from ..embedding.cache import EmbeddingStore
from ..embedding.registry import ModelRegistry, default_registry
from ..engine import ExecutionEngine
from ..errors import PlanError
from ..index.base import VectorIndex
from ..obs.trace import span
from ..reliability.breaker import breakers
from ..reliability.faults import maybe_inject
from ..relational.catalog import Catalog
from ..relational.column import Column
from ..relational.expressions import validate_boolean
from ..relational.schema import DataType, Field
from ..relational.table import Table
from .logical import (
    EJoinNode,
    EmbedNode,
    EquiJoinNode,
    ESelectNode,
    FilterNode,
    LimitNode,
    LogicalNode,
    ProjectNode,
    ScanNode,
)


def _vector_token(vectors: np.ndarray) -> tuple:
    """Cheap fingerprint of an embedding matrix for cache invalidation.

    Shape plus checksums over a strided row sample: O(sample) to compute,
    and any re-registration of a table with different data (even at equal
    cardinality) changes it with overwhelming probability.
    """
    n = len(vectors)
    if n == 0:
        return (0, vectors.shape)
    sample = vectors[:: max(1, n // 64)]
    return (
        vectors.shape,
        float(sample.sum(dtype=np.float64)),
        float(np.abs(sample).sum(dtype=np.float64)),
    )


@dataclass
class ExecutionContext:
    """Everything physical planning needs: data, models, indexes, costs."""

    catalog: Catalog
    models: ModelRegistry = field(default_factory=default_registry)
    #: (table_name, column_name) -> built vector index over that column.
    indexes: dict[tuple[str, str], VectorIndex] = field(default_factory=dict)
    cost_params: CostParams = field(default_factory=CostParams)
    #: Morsel-driven executor every engine-executed physical operator
    #: schedules on (thread count / buffer budget come from the config).
    engine: ExecutionEngine = field(default_factory=ExecutionEngine)
    #: model_name -> shared embedding store (embed-once across the query).
    _stores: dict[str, EmbeddingStore] = field(default_factory=dict)
    #: (table, column, model, method) -> pre-encoded quantized relation.
    #: Like ``indexes``, these are access-path state built once per
    #: context and amortized across queries.
    quant_stores: dict[tuple, object] = field(default_factory=dict)
    #: (table, column, model) -> (source token, unit-normalized matrix).
    #: Shared-scan state: one normalization serves every query (and every
    #: concurrent session) scanning the same column under the same model.
    norm_cache: dict[tuple, tuple] = field(default_factory=dict)
    #: Serializes bookkeeping on every shared store above.  Contexts
    #: minted by one :class:`~repro.query.builder.Engine` share its lock
    #: (and its store dicts), so concurrent sessions cannot duplicate or
    #: corrupt encode/normalize/fit work.  Heavyweight builds hold a
    #: *per-source* lock from ``store_key_locks`` instead, so cold
    #: queries on unrelated sources never serialize on each other.
    store_lock: threading.RLock = field(default_factory=threading.RLock)
    #: source key -> build lock (shared across contexts like the stores).
    store_key_locks: dict = field(default_factory=dict)
    #: Attribution tag for this query's scheduler runs (service-assigned).
    query_tag: str | None = None

    def _build_lock(self, key: tuple) -> threading.Lock:
        with self.store_lock:
            lock = self.store_key_locks.get(key)
            if lock is None:
                lock = self.store_key_locks[key] = threading.Lock()
            return lock

    def store_for(self, model_name: str) -> EmbeddingStore:
        with self.store_lock:
            if model_name not in self._stores:
                self._stores[model_name] = EmbeddingStore(
                    self.models.get(model_name)
                )
            return self._stores[model_name]

    def register_index(
        self, table_name: str, column: str, index: VectorIndex
    ) -> None:
        self.indexes[(table_name, column)] = index

    def quant_store_for(
        self,
        key: tuple[str, str, str],
        vectors: np.ndarray,
        method: str,
    ):
        """Fit/encode-once quantized store for a (table, column, model).

        Rebuilt when the source data changed (table re-registration,
        detected via a cheap strided fingerprint); otherwise every query
        against the same scan source reuses the encoded codes.
        """
        from ..core.quantized_join import QuantizedRelation

        full_key = (*key, method)
        token = _vector_token(vectors)
        with self._build_lock(("quant", *full_key)):
            with self.store_lock:
                store = self.quant_stores.get(full_key)
            if store is None or getattr(store, "source_token", None) != token:
                maybe_inject("quant.build")
                store = QuantizedRelation.build(vectors, method)
                store.source_token = token
                with self.store_lock:
                    self.quant_stores[full_key] = store
            return store

    def normalized_matrix_for(
        self, key: tuple[str, str, str], vectors: np.ndarray
    ) -> np.ndarray:
        """Normalize-once matrix for a (table, column, model) scan source.

        The cached matrix is exactly ``normalize_rows(vectors)``, so scans
        that consume it with ``assume_normalized=True`` compute the same
        bits as a cold scan that normalizes inline — sharing never changes
        results.  Invalidated by the same strided source fingerprint the
        quantized stores use.
        """
        from ..vector.norms import normalize_rows

        token = _vector_token(vectors)
        with self._build_lock(("norm", *key)):
            with self.store_lock:
                cached = self.norm_cache.get(key)
            if cached is None or cached[0] != token:
                cached = (token, normalize_rows(vectors))
                with self.store_lock:
                    self.norm_cache[key] = cached
            return cached[1]


def _quantized_scan_decision(
    ctx: "ExecutionContext",
    source_node: LogicalNode,
    column: str,
    model_name: str,
    n_left: int,
    vectors: np.ndarray,
    k: int,
):
    """Shared precision gate for scan-based E-joins and E-selections.

    Returns ``(decision, store_key)``: the chooser's verdict under the
    configured ``REPRO_PRECISION`` (the fit/encode build is treated as
    sunk only when a matching cached store already exists), plus the
    context cache key when the source is a plain table scan (``None``
    otherwise).
    """
    cacheable = isinstance(source_node, ScanNode)
    store_key = (
        (source_node.table_name, column, model_name) if cacheable else None
    )
    prebuilt = store_key is not None and (
        *store_key,
        get_config().default_precision,
    ) in ctx.quant_stores
    decision = choose_scan_precision(
        n_left,
        len(vectors),
        k,
        vectors.shape[1] if vectors.ndim == 2 else 1,
        params=ctx.cost_params,
        store_built=prebuilt,
    )
    return decision, store_key


#: Breaker fallback chain for quantized scan precisions.  Each step down
#: is strictly more exact, ending on the fp32 scan — so routing around a
#: failing access path never weakens results, only speed.
_PRECISION_FALLBACK = {"pq": "int8", "int8": "fp32"}


def _breaker_gate(store_key: tuple | None, precision: str) -> str:
    """Walk ``precision`` down the fallback chain past open breakers.

    ``store_key`` is the ``(table, column, model)`` access-path identity;
    uncacheable sources (``None``) carry no breaker state and keep the
    cost model's choice.
    """
    if store_key is None:
        return precision
    registry = breakers()
    while precision in ("pq", "int8"):
        if registry.allow((*store_key, precision)):
            return precision
        precision = _PRECISION_FALLBACK[precision]
    return precision


@dataclass
class ExecutionReport:
    """Side-channel describing what the physical layer actually did."""

    strategies: list[str] = field(default_factory=list)
    join_stats: list = field(default_factory=list)
    #: Access paths the breaker layer routed around while executing.
    fallbacks: list[str] = field(default_factory=list)


def execute(
    plan: LogicalNode,
    ctx: ExecutionContext,
    *,
    report: ExecutionReport | None = None,
) -> Table:
    """Execute a (typically optimized) logical plan to a materialized table."""
    report = report if report is not None else ExecutionReport()
    return _execute(plan, ctx, report)


def _execute(node: LogicalNode, ctx: ExecutionContext, report: ExecutionReport) -> Table:
    if isinstance(node, ScanNode):
        return ctx.catalog.get(node.table_name)
    if isinstance(node, FilterNode):
        table = _execute(node.child, ctx, report)
        return table.mask(validate_boolean(node.predicate, table))
    if isinstance(node, ProjectNode):
        table = _execute(node.child, ctx, report)
        return table.select(list(node.names))
    if isinstance(node, LimitNode):
        table = _execute(node.child, ctx, report)
        return table.slice(0, node.n)
    if isinstance(node, EmbedNode):
        return _execute_embed(node, ctx, report)
    if isinstance(node, EquiJoinNode):
        left = _execute(node.left, ctx, report)
        right = _execute(node.right, ctx, report)
        from ..relational.operators import HashJoin, Scan

        op = HashJoin(Scan(left), Scan(right), node.left_key, node.right_key)
        return op.execute()
    if isinstance(node, EJoinNode):
        return _execute_ejoin(node, ctx, report)
    if isinstance(node, ESelectNode):
        return _execute_eselect(node, ctx, report)
    raise PlanError(f"no physical implementation for {type(node).__name__}")


def _execute_eselect(
    node: ESelectNode, ctx: ExecutionContext, report: ExecutionReport
) -> Table:
    from ..core.eselect import eselect
    from ..core.quantized_join import quantized_eselect

    table = _execute(node.child, ctx, report)
    vectors = _embed_column(table, node.column, node.model_name, ctx)
    model = ctx.models.get(node.model_name)
    query = node.query
    if not isinstance(query, np.ndarray):
        query = ctx.store_for(node.model_name).embed_items([query])[0]
    k = (
        node.condition.k
        if isinstance(node.condition, TopKCondition)
        else DEFAULT_PROBE_K
    )
    # A plain table scan source lets the context cache the encoded store;
    # a cold one-shot selection stays on the exact fp32 scan unless the
    # compressed scan wins even with the build charged.
    with span("planner.eselect") as sp:
        n_fallbacks = len(report.fallbacks)
        decision, store_key = _quantized_scan_decision(
            ctx, node.child, node.column, node.model_name, 1, vectors, k
        )
        precision = _breaker_gate(store_key, decision.precision)
        result = None
        while precision in ("int8", "pq"):
            breaker_key = (
                None if store_key is None else (*store_key, precision)
            )
            try:
                relation = vectors
                if store_key is not None:
                    relation = ctx.quant_store_for(
                        store_key, vectors, precision
                    )
                result = quantized_eselect(
                    relation, query, node.condition, method=precision
                )
            except Exception:
                # Store build or compressed scan failed: feed the breaker
                # and fall down the chain toward the exact fp32 scan.
                if breaker_key is not None:
                    breakers().record_failure(breaker_key)
                    report.fallbacks.append("/".join(map(str, breaker_key)))
                precision = _breaker_gate(
                    store_key, _PRECISION_FALLBACK[precision]
                )
                continue
            if breaker_key is not None:
                breakers().record_success(breaker_key)
            break
        if result is None:
            if store_key is not None:
                # Scan sources share one normalize-once matrix across
                # queries and sessions; eselect's exact-rescore contract
                # makes the shared and inline-normalized paths
                # bit-identical.
                normalized = ctx.normalized_matrix_for(store_key, vectors)
                result = eselect(
                    normalized, query, node.condition, model=model,
                    assume_normalized=True,
                )
            else:
                result = eselect(vectors, query, node.condition, model=model)
        report.strategies.append(result.stats.strategy)
        report.join_stats.append(result.stats)
        sp.set(
            precision=precision if precision in ("int8", "pq") else "fp32",
            strategy=result.stats.strategy,
            rows=table.num_rows,
            fallbacks=len(report.fallbacks) - n_fallbacks,
        )
    out = table.take(result.ids)
    return out.with_column(
        Column(Field(node.score_column, DataType.FLOAT32), result.scores)
    )


def _execute_embed(
    node: EmbedNode, ctx: ExecutionContext, report: ExecutionReport
) -> Table:
    table = _execute(node.child, ctx, report)
    store = ctx.store_for(node.model_name)
    items = table.array(node.column).tolist()
    vectors = store.embed_items(items)
    dim = store.model.dim
    return table.with_column(
        Column(Field(node.output_column, DataType.TENSOR, dim=dim), vectors)
    )


def _embed_column(
    table: Table, column: str, model_name: str, ctx: ExecutionContext
) -> np.ndarray:
    """Embedding of a table column, via the shared embed-once store."""
    field_ = table.schema.field(column)
    if field_.dtype is DataType.TENSOR:
        return table.array(column)
    store = ctx.store_for(model_name)
    return store.embed_items(table.array(column).tolist())


def _index_for_right(
    node: LogicalNode, column: str, ctx: ExecutionContext
) -> tuple[VectorIndex, np.ndarray | None, Table] | None:
    """Index access path for the right input, if one is registered.

    Supports ``Scan(t)`` (no pre-filter) and ``Filter(Scan(t))`` (the
    relational predicate becomes a pre-filter bitmap over stored ids, as in
    Milvus).  Returns (index, bitmap, base_table).
    """
    if isinstance(node, ScanNode):
        index = ctx.indexes.get((node.table_name, column))
        if index is None:
            return None
        return index, None, ctx.catalog.get(node.table_name)
    if isinstance(node, FilterNode) and isinstance(node.child, ScanNode):
        index = ctx.indexes.get((node.child.table_name, column))
        if index is None:
            return None
        base = ctx.catalog.get(node.child.table_name)
        bitmap = validate_boolean(node.predicate, base)
        return index, bitmap, base
    return None


def _right_table_name(node: LogicalNode) -> str | None:
    """Base-table identity of an index-eligible right input, if any."""
    if isinstance(node, ScanNode):
        return node.table_name
    if isinstance(node, FilterNode) and isinstance(node.child, ScanNode):
        return node.child.table_name
    return None


def _execute_ejoin(
    node: EJoinNode, ctx: ExecutionContext, report: ExecutionReport
) -> Table:
    with span("planner.ejoin") as sp:
        n_strategies = len(report.strategies)
        n_fallbacks = len(report.fallbacks)
        out = _execute_ejoin_impl(node, ctx, report)
        sp.set(
            strategy=(
                report.strategies[-1]
                if len(report.strategies) > n_strategies
                else None
            ),
            fallbacks=len(report.fallbacks) - n_fallbacks,
            rows=out.num_rows,
        )
        return out


def _execute_ejoin_impl(
    node: EJoinNode, ctx: ExecutionContext, report: ExecutionReport
) -> Table:
    left = _execute(node.left, ctx, report)
    model = ctx.models.get(node.model_name)

    # --- index access path -------------------------------------------------
    indexed = _index_for_right(node.right, node.right_column, ctx)
    index_table = _right_table_name(node.right)
    index_breaker_key = (
        None
        if index_table is None
        else (index_table, node.right_column, node.model_name, "index")
    )
    strategy = node.strategy_hint
    if strategy is None and indexed is not None:
        index, bitmap, base = indexed
        sel = 1.0 if bitmap is None else float(bitmap.mean()) if len(bitmap) else 0.0
        k = (
            node.condition.k
            if isinstance(node.condition, TopKCondition)
            else DEFAULT_PROBE_K
        )
        # A tripped index breaker feeds the cost model as "no index":
        # its cost is infinite, so the chooser lands on the exact scan.
        index_open = (
            index_breaker_key is not None
            and not breakers().allow(index_breaker_key)
        )
        decision = choose_access_path(
            left.num_rows,
            len(index),
            k,
            index.dim,
            selectivity=sel,
            params=ctx.cost_params,
            index_available=not index_open,
        )
        strategy = "index" if decision.choice == "index" else "tensor"

    if strategy == "index":
        if indexed is None:
            raise PlanError(
                f"EJoin strategy 'index' requires a registered index on the "
                f"right input column {node.right_column!r}"
            )
        index, bitmap, base = indexed
        left_vectors = _embed_column(left, node.left_column, node.model_name, ctx)
        try:
            result = index_join(
                left_vectors, index, node.condition, allowed=bitmap,
                engine=ctx.engine,
            )
        except Exception:
            # Probe failure: trip the breaker toward open and fall back
            # to the exact scan path below (trading speed, not accuracy).
            if index_breaker_key is None:
                raise
            breakers().record_failure(index_breaker_key)
            report.fallbacks.append("/".join(map(str, index_breaker_key)))
            strategy = "tensor"
        else:
            if index_breaker_key is not None:
                breakers().record_success(index_breaker_key)
            report.strategies.append(result.stats.strategy)
            report.join_stats.append(result.stats)
            return result.materialize(left, base)

    # --- scan access path ----------------------------------------------------
    right = _execute(node.right, ctx, report)
    if not node.prefetch:
        # Unoptimized logical plan: model invoked per pair (the paper's
        # cautionary baseline).  Only sensible for tiny demonstration inputs.
        result = naive_nlj(
            left.array(node.left_column).tolist(),
            right.array(node.right_column).tolist(),
            model,
            node.condition,
        )
    else:
        left_vectors = _embed_column(left, node.left_column, node.model_name, ctx)
        right_vectors = _embed_column(right, node.right_column, node.model_name, ctx)
        scan_strategy = strategy or "tensor"
        result = None
        if scan_strategy == "tensor":
            # The REPRO_PRECISION knob may substitute a reduced-precision
            # scan; quantized paths are additionally gated on the
            # configured accuracy floor and modelled cost (including the
            # fit/encode build unless a cached store already amortized it)
            # — and on the access path's circuit breaker, which walks the
            # chain pq -> int8 -> fp32 past open or failing paths.
            k = (
                node.condition.k
                if isinstance(node.condition, TopKCondition)
                else DEFAULT_PROBE_K
            )
            decision, store_key = _quantized_scan_decision(
                ctx,
                node.right,
                node.right_column,
                node.model_name,
                len(left_vectors),
                right_vectors,
                k,
            )
            precision = _breaker_gate(store_key, decision.precision)
            while precision in ("int8", "pq"):
                breaker_key = (
                    None if store_key is None else (*store_key, precision)
                )
                try:
                    right_input = right_vectors
                    if store_key is not None:
                        right_input = ctx.quant_store_for(
                            store_key, right_vectors, precision
                        )
                    result = ejoin(
                        left_vectors,
                        right_input,
                        node.condition,
                        strategy=f"tensor-{precision}",
                        engine=ctx.engine,
                    )
                except Exception:
                    if breaker_key is not None:
                        breakers().record_failure(breaker_key)
                        report.fallbacks.append(
                            "/".join(map(str, breaker_key))
                        )
                    precision = _breaker_gate(
                        store_key, _PRECISION_FALLBACK[precision]
                    )
                    continue
                if breaker_key is not None:
                    breakers().record_success(breaker_key)
                break
            if result is None and get_config().default_precision == "fp16":
                scan_strategy = "tensor-fp16"
        if result is None:
            result = ejoin(
                left_vectors,
                right_vectors,
                node.condition,
                strategy=scan_strategy,
                engine=ctx.engine,
            )
    report.strategies.append(result.stats.strategy)
    report.join_stats.append(result.stats)
    return result.materialize(left, right)
