"""Declarative query builder: the user-facing API of Figure 4.

The builder assembles a logical plan from fluent calls; the engine
optimizes it with the extended-algebra rules and executes it physically.
The user specifies *what* (model name, similarity threshold, relational
predicates) — never *how* (prefetching, loop order, scan vs probe), which
is exactly the declarative contract the paper argues for.

Example::

    engine = Engine(catalog)
    engine.models.register("words", model)
    out = (
        engine.query("photos")
        .where(Col("taken") > date(2023, 12, 2))
        .ejoin("examples", left_on="caption", right_on="text",
               model="words", threshold=0.9)
        .select(["caption", "text", "similarity"])
        .execute()
    )
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..algebra.logical import (
    EJoinNode,
    EmbedNode,
    EquiJoinNode,
    ESelectNode,
    FilterNode,
    LimitNode,
    LogicalNode,
    ProjectNode,
    ScanNode,
)
from ..algebra.optimizer import Optimizer
from ..algebra.physical_planner import ExecutionContext, ExecutionReport, execute
from ..core.conditions import ThresholdCondition, TopKCondition
from ..core.cost_model import CostParams
from ..embedding.cache import EmbeddingStore
from ..embedding.registry import ModelRegistry
from ..engine import ExecutionEngine
from ..errors import PlanError
from ..index.base import VectorIndex
from ..relational.catalog import Catalog
from ..relational.expressions import Expression
from ..relational.table import Table


@dataclass
class Engine:
    """Query engine: catalog + model registry + index registry + optimizer."""

    catalog: Catalog
    models: ModelRegistry = field(default_factory=ModelRegistry)
    cost_params: CostParams = field(default_factory=CostParams)

    def __post_init__(self) -> None:
        self._indexes: dict[tuple[str, str], VectorIndex] = {}
        self._index_epoch = 0
        self._quant_stores: dict[tuple, object] = {}
        self._embed_stores: dict[str, EmbeddingStore] = {}
        self._norm_cache: dict[tuple, tuple] = {}
        # One lock serializes get-or-build on every shared store, so
        # concurrent sessions (the query service) cannot duplicate or
        # corrupt encode/normalize/fit work.
        self._store_lock = threading.RLock()
        # One morsel-driven executor is shared by every query on this
        # engine (built lazily so later ``repro.configure(...)`` calls
        # still take effect): cumulative scheduling stats in one place,
        # and the query service can attribute morsels per query via
        # tagged views.
        self._executor: ExecutionEngine | None = None
        self._executor_signature: tuple | None = None
        self._executor_pinned = False

    @staticmethod
    def _current_executor_signature() -> tuple:
        from ..config import cpu_count, get_config

        config = get_config()
        return (
            cpu_count(),
            config.default_morsel_rows,
            config.default_buffer_budget_bytes,
            config.work_stealing,
        )

    @property
    def executor(self) -> ExecutionEngine:
        """The engine's shared morsel executor.

        Built lazily from the current configuration and rebuilt (with
        fresh stats) when the relevant config knobs change afterwards —
        so ``repro.configure(default_threads=...)`` keeps working on an
        already-constructed engine.  Assigning an executor explicitly
        pins it, disabling config tracking.
        """
        with self._store_lock:
            if self._executor is not None and self._executor_pinned:
                return self._executor
            signature = self._current_executor_signature()
            if self._executor is None or signature != self._executor_signature:
                self._executor = ExecutionEngine()
                self._executor_signature = signature
            return self._executor

    @executor.setter
    def executor(self, engine: ExecutionEngine) -> None:
        with self._store_lock:
            self._executor = engine
            self._executor_pinned = True

    def embed_store_for(self, model_name: str) -> EmbeddingStore:
        """Shared embed-once store for ``model_name`` (get-or-create)."""
        with self._store_lock:
            if model_name not in self._embed_stores:
                self._embed_stores[model_name] = EmbeddingStore(
                    self.models.get(model_name)
                )
            return self._embed_stores[model_name]

    def register_index(self, table: str, column: str, index: VectorIndex) -> None:
        """Attach a built vector index to ``table.column``.

        Bumps :attr:`index_epoch`: a new index can change the physical
        access path (and thus results, for approximate indexes), so any
        cached results keyed on the epoch stop matching.
        """
        self.catalog.get(table)  # validate the table exists
        self._indexes[(table, column)] = index
        self._index_epoch += 1

    @property
    def index_epoch(self) -> int:
        """Counter of index registrations (result-cache key component)."""
        return self._index_epoch

    def query(self, table_name: str) -> "QueryBuilder":
        self.catalog.get(table_name)  # validate early
        return QueryBuilder(self, ScanNode(table_name))

    def serve(self, **kwargs):
        """A :class:`~repro.service.QueryService` fronting this engine.

        Keyword arguments are forwarded to the service constructor
        (``max_inflight``, ``coalesce``, cache sizes, QoS knobs, ...);
        anything unspecified falls back to the global config.  Use
        :meth:`QueryService.submit` for plain exact serving,
        :meth:`QueryService.submit_qos` for deadline/priority/recall
        terms, and wrap the service in
        :class:`~repro.service.AsyncQueryService` for asyncio clients.
        """
        from ..service import QueryService

        return QueryService(self, **kwargs)

    def context(self, *, tag: str | None = None) -> ExecutionContext:
        # The store dicts are shared (not copied) so encoded/normalized/
        # embedded relations built during one query amortize across every
        # later query on this engine, like registered indexes.  ``tag``
        # names the query for per-query morsel attribution in the shared
        # executor's stats.
        ctx = ExecutionContext(
            self.catalog,
            models=self.models,
            cost_params=self.cost_params,
            quant_stores=self._quant_stores,
            norm_cache=self._norm_cache,
            store_lock=self._store_lock,
            engine=self.executor.with_tag(tag),
            query_tag=tag,
        )
        ctx._stores = self._embed_stores
        for key, index in self._indexes.items():
            ctx.indexes[key] = index
        return ctx


@dataclass
class QueryBuilder:
    """Immutable-style fluent builder over a logical plan."""

    engine: Engine
    plan: LogicalNode
    _last_report: ExecutionReport | None = None

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def where(self, predicate: Expression) -> "QueryBuilder":
        return QueryBuilder(self.engine, FilterNode(self.plan, predicate))

    def select(self, names: list[str]) -> "QueryBuilder":
        return QueryBuilder(self.engine, ProjectNode(self.plan, tuple(names)))

    def limit(self, n: int) -> "QueryBuilder":
        return QueryBuilder(self.engine, LimitNode(self.plan, n))

    def embed(self, column: str, model: str, *, output: str = "") -> "QueryBuilder":
        return QueryBuilder(
            self.engine, EmbedNode(self.plan, column, model, output)
        )

    def esimilar(
        self,
        column: str,
        query,
        *,
        model: str,
        threshold: float | None = None,
        top_k: int | None = None,
        min_similarity: float | None = None,
        score_column: str = "similarity",
    ) -> "QueryBuilder":
        """Context-enhanced selection: keep rows whose ``column`` is
        similar to ``query`` (Section III-C's E-selection)."""
        if (threshold is None) == (top_k is None):
            raise PlanError("specify exactly one of threshold= or top_k=")
        if threshold is not None:
            condition = ThresholdCondition(threshold)
        else:
            condition = TopKCondition(top_k, min_similarity=min_similarity)
        node = ESelectNode(
            self.plan, column, query, model, condition, score_column
        )
        return QueryBuilder(self.engine, node)

    def join(self, other: "str | QueryBuilder", *, left_on: str, right_on: str) -> "QueryBuilder":
        """Classic relational equi-join."""
        right = self._as_plan(other)
        return QueryBuilder(
            self.engine, EquiJoinNode(self.plan, right, left_on, right_on)
        )

    def ejoin(
        self,
        other: "str | QueryBuilder",
        *,
        left_on: str,
        right_on: str,
        model: str,
        threshold: float | None = None,
        top_k: int | None = None,
        min_similarity: float | None = None,
        strategy: str | None = None,
    ) -> "QueryBuilder":
        """Context-enhanced similarity join.

        Exactly one of ``threshold`` (range condition) or ``top_k`` must be
        given; ``min_similarity`` optionally refines ``top_k``.
        """
        if (threshold is None) == (top_k is None):
            raise PlanError("specify exactly one of threshold= or top_k=")
        if threshold is not None:
            condition = ThresholdCondition(threshold)
        else:
            condition = TopKCondition(top_k, min_similarity=min_similarity)
        right = self._as_plan(other)
        node = EJoinNode(
            self.plan,
            right,
            left_on,
            right_on,
            model,
            condition,
            strategy_hint=strategy,
        )
        return QueryBuilder(self.engine, node)

    def _as_plan(self, other: "str | QueryBuilder") -> LogicalNode:
        if isinstance(other, QueryBuilder):
            return other.plan
        self.engine.catalog.get(other)
        return ScanNode(other)

    # ------------------------------------------------------------------
    # Optimization & execution
    # ------------------------------------------------------------------
    def optimized_plan(self) -> LogicalNode:
        optimizer = Optimizer(catalog=self.engine.catalog)
        return optimizer.optimize(self.plan)

    def explain(self, *, optimize: bool = True) -> str:
        """Textual plan; shows the rewrite trace when optimizing."""
        if not optimize:
            return self.plan.explain()
        optimizer = Optimizer(catalog=self.engine.catalog)
        optimized = optimizer.optimize(self.plan)
        lines = [optimized.explain()]
        if optimizer.trace.steps:
            lines.append("-- rewrites applied:")
            lines.extend(f"--   {s}" for s in optimizer.trace.steps)
        return "\n".join(lines)

    def execute(self, *, optimize: bool = True) -> Table:
        """Optimize (by default) and run the query to a materialized table."""
        plan = self.optimized_plan() if optimize else self.plan
        report = ExecutionReport()
        result = execute(plan, self.engine.context(), report=report)
        self._last_report = report
        return result

    @property
    def last_report(self) -> ExecutionReport | None:
        """Physical-execution report of the most recent :meth:`execute`."""
        return self._last_report
