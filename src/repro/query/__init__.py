"""Declarative query layer."""

from .builder import Engine, QueryBuilder

__all__ = ["Engine", "QueryBuilder"]
