"""Work-stealing task scheduler over GIL-releasing kernels.

Workers own a deque seeded with a contiguous slice of the task list (good
operand locality: neighbouring morsels touch neighbouring rows).  A worker
pops from the *front* of its own deque and, when empty, steals from the
*back* of the most loaded victim — the classic split between the owner's
hot end and the thieves' cold end.  Python threads suffice because the
tasks wrap NumPy/BLAS kernels that release the GIL; the queue operations
themselves are tiny relative to one morsel's GEMM.

Results are written into a slot-per-task output list, so the caller sees
input order no matter which worker ran what.  The first task exception
cancels outstanding work and is re-raised in the calling thread.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Callable, Sequence

from ..errors import JoinError


class SchedulerStats:
    """Counters describing one scheduler run (for tests and reports)."""

    __slots__ = ("n_tasks", "n_workers", "steals")

    def __init__(self) -> None:
        self.n_tasks = 0
        self.n_workers = 0
        self.steals = 0


class WorkStealingScheduler:
    """Run a batch of indexed tasks on ``n_workers`` stealing threads."""

    def __init__(self, n_workers: int, *, work_stealing: bool = True) -> None:
        if n_workers < 1:
            raise JoinError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.work_stealing = work_stealing

    def run(
        self,
        tasks: Sequence[Callable[[], object]],
        *,
        stats: SchedulerStats | None = None,
    ) -> list:
        """Execute every task; return results in task order."""
        stats = stats if stats is not None else SchedulerStats()
        stats.n_tasks = len(tasks)
        n_workers = min(self.n_workers, max(len(tasks), 1))
        stats.n_workers = n_workers
        results: list = [None] * len(tasks)
        if not tasks:
            return results
        if n_workers == 1:
            for i, task in enumerate(tasks):
                results[i] = task()
            return results

        # Seed each worker with a contiguous slice of the task order.
        bounds = [len(tasks) * w // n_workers for w in range(n_workers + 1)]
        queues = [
            deque(range(bounds[w], bounds[w + 1])) for w in range(n_workers)
        ]
        lock = threading.Lock()  # guards all queues; held only for pops
        failed = threading.Event()
        errors: list[BaseException] = []

        def next_index(worker: int) -> int | None:
            with lock:
                if queues[worker]:
                    return queues[worker].popleft()
                if not self.work_stealing:
                    return None
                victim = max(range(n_workers), key=lambda w: len(queues[w]))
                if queues[victim]:
                    stats.steals += 1
                    return queues[victim].pop()
                return None

        def worker_loop(worker: int) -> None:
            while not failed.is_set():
                index = next_index(worker)
                if index is None:
                    return
                try:
                    results[index] = tasks[index]()
                except BaseException as exc:  # propagate to the caller
                    errors.append(exc)
                    failed.set()
                    return

        threads = [
            threading.Thread(
                target=worker_loop,
                args=(w,),
                name=f"repro-engine-{w}",
                daemon=True,
            )
            for w in range(n_workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results
