"""Work-stealing task scheduler over GIL-releasing kernels.

Workers own a deque seeded with a contiguous slice of the task list (good
operand locality: neighbouring morsels touch neighbouring rows).  A worker
pops from the *front* of its own deque and, when empty, steals from the
*back* of the most loaded victim — the classic split between the owner's
hot end and the thieves' cold end.  Python threads suffice because the
tasks wrap NumPy/BLAS kernels that release the GIL; the queue operations
themselves are tiny relative to one morsel's GEMM.

Results are written into a slot-per-task output list, so the caller sees
input order no matter which worker ran what.  The *first* task exception
cancels outstanding work (every queue is drained so no worker can block
on doomed morsels) and is re-raised in the calling thread with its
original traceback.

Failure handling layers on top of that happy path without touching it:

* each task runs through an optional :class:`~repro.reliability.retry.BoundRetry`
  wrapper — tasks are pure morsels, so re-execution after a transient
  fault is bit-safe;
* a heartbeat watchdog (policy from
  :class:`~repro.reliability.watchdog.WatchdogPolicy`) detects workers
  that died abruptly or stalled past the tolerance, re-enqueues their
  claimed task, and respawns a replacement thread.  The main thread
  normally blocks on a completion event — the watchdog only polls while
  a worker is actually late, so an all-healthy run pays nothing;
* a final inline sweep executes any still-unfinished task on the caller
  thread, guaranteeing ``run()`` completes (or raises) even when every
  worker died and the respawn cap is spent.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable, Sequence

from ..errors import JoinError, WorkerKilledFault
from ..reliability.faults import maybe_inject
from ..reliability.retry import BoundRetry
from ..reliability.watchdog import WatchdogPolicy

#: Consecutive inline worker-kill faults tolerated before giving up (the
#: inline sweep "respawns" by looping on the caller thread).
_INLINE_KILL_CAP = 8


class SchedulerStats:
    """Counters describing one scheduler run (for tests and reports)."""

    __slots__ = (
        "n_tasks",
        "n_workers",
        "steals",
        "retries",
        "watchdog_stalls",
        "worker_deaths",
        "worker_respawns",
        "reenqueued_tasks",
    )

    def __init__(self) -> None:
        self.n_tasks = 0
        self.n_workers = 0
        self.steals = 0
        self.retries = 0
        self.watchdog_stalls = 0
        self.worker_deaths = 0
        self.worker_respawns = 0
        self.reenqueued_tasks = 0


class WorkStealingScheduler:
    """Run a batch of indexed tasks on ``n_workers`` stealing threads."""

    def __init__(self, n_workers: int, *, work_stealing: bool = True) -> None:
        if n_workers < 1:
            raise JoinError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.work_stealing = work_stealing

    def run(
        self,
        tasks: Sequence[Callable[[], object]],
        *,
        stats: SchedulerStats | None = None,
        retry: BoundRetry | None = None,
        watchdog: WatchdogPolicy | None = None,
    ) -> list:
        """Execute every task; return results in task order.

        Args:
            tasks: pure callables (morsels); may be re-executed on
                transient failure or worker loss.
            stats: optional counter sink for this run.
            retry: optional per-query bound retry policy applied around
                every task execution.
            watchdog: optional stall/respawn policy; ``None`` (or a
                disabled policy) turns off stall detection, leaving only
                dead-worker recovery via the final inline sweep.
        """
        stats = stats if stats is not None else SchedulerStats()
        stats.n_tasks = len(tasks)
        n_workers = min(self.n_workers, max(len(tasks), 1))
        stats.n_workers = n_workers
        results: list = [None] * len(tasks)
        if not tasks:
            return results

        def attempt(index: int):
            maybe_inject("engine.worker")
            return tasks[index]()

        def execute(index: int):
            if retry is None:
                return attempt(index)
            return retry.call(lambda: attempt(index))

        def execute_inline(index: int):
            """Caller-thread execution that survives injected kills."""
            for _ in range(_INLINE_KILL_CAP):
                try:
                    return execute(index)
                except WorkerKilledFault:
                    stats.worker_deaths += 1
            return execute(index)  # cap spent: let the next kill raise

        if n_workers == 1:
            for i in range(len(tasks)):
                results[i] = execute_inline(i)
            if retry is not None:
                stats.retries += retry.local_retries
            return results

        # Seed each worker with a contiguous slice of the task order.
        bounds = [len(tasks) * w // n_workers for w in range(n_workers + 1)]
        queues = [
            deque(range(bounds[w], bounds[w + 1])) for w in range(n_workers)
        ]
        lock = threading.Lock()  # guards queues, done flags, live count
        failed = threading.Event()
        finish = threading.Event()  # set by the last live worker to exit
        errors: list[BaseException] = []
        done = bytearray(len(tasks))
        pending = len(tasks)
        live = n_workers
        retired: set[int] = set()  # slots told to stop (stalled workers)
        inflight: dict[int, int | None] = {}
        heartbeat: dict[int, float] = {}
        threads_by_slot: dict[int, threading.Thread] = {}
        next_slot = n_workers

        def next_index(home: int) -> int | None:
            with lock:
                if queues[home]:
                    return queues[home].popleft()
                if not self.work_stealing:
                    return None
                victim = max(range(n_workers), key=lambda w: len(queues[w]))
                if queues[victim]:
                    stats.steals += 1
                    return queues[victim].pop()
                return None

        def worker_loop(slot: int, home: int) -> None:
            nonlocal pending, live
            try:
                while not failed.is_set() and slot not in retired:
                    index = next_index(home)
                    if index is None:
                        return
                    inflight[slot] = index
                    heartbeat[slot] = time.monotonic()
                    try:
                        value = execute(index)
                    except WorkerKilledFault:
                        # Simulated abrupt death: exit without completing
                        # or releasing the claimed task.  Recovery is the
                        # watchdog's (or the final sweep's) job.
                        return
                    except BaseException as exc:
                        with lock:
                            if not errors:
                                errors.append(exc)
                            # Release every queued morsel so no sibling
                            # can block on work that will be discarded.
                            for queue in queues:
                                queue.clear()
                        failed.set()
                        inflight[slot] = None
                        return
                    with lock:
                        if not done[index]:
                            done[index] = 1
                            results[index] = value
                            pending -= 1
                    inflight[slot] = None
            finally:
                with lock:
                    if slot in retired:
                        retired.discard(slot)  # already counted as gone
                    else:
                        live -= 1
                        if live == 0:
                            finish.set()

        def spawn(slot: int, home: int) -> None:
            thread = threading.Thread(
                target=worker_loop,
                args=(slot, home),
                name=f"repro-engine-{slot}",
                daemon=True,
            )
            threads_by_slot[slot] = thread
            thread.start()

        for w in range(n_workers):
            spawn(w, w)

        wd = watchdog if watchdog is not None and watchdog.enabled else None
        respawns_left = wd.max_respawns if wd is not None else 0

        def recover(slot: int, index: int | None, home: int) -> None:
            """Re-enqueue a lost worker's task and respawn if allowed."""
            nonlocal next_slot, respawns_left, live
            inflight[slot] = None
            if index is not None:
                with lock:
                    if not done[index]:
                        queues[home].append(index)
                        stats.reenqueued_tasks += 1
            if respawns_left > 0:
                respawns_left -= 1
                stats.worker_respawns += 1
                with lock:
                    live += 1
                spawn(next_slot, home)
                next_slot += 1

        while True:
            completed = finish.wait(wd.poll_s if wd is not None else None)
            if failed.is_set() or completed:
                break
            with lock:
                if pending == 0:
                    break
            now = time.monotonic()
            for slot, thread in list(threads_by_slot.items()):
                index = inflight.get(slot)
                if index is None:
                    continue
                home = slot % n_workers
                if not thread.is_alive():
                    stats.worker_deaths += 1
                    recover(slot, index, home)
                elif now - heartbeat.get(slot, now) > wd.stall_s:
                    stats.watchdog_stalls += 1
                    with lock:
                        if slot not in retired:
                            retired.add(slot)  # abandon: stop it, uncount it
                            live -= 1
                            if live == 0:
                                finish.set()
                    recover(slot, index, home)

        for slot, thread in threads_by_slot.items():
            if slot not in retired:
                thread.join(timeout=0.1)

        if retry is not None:
            stats.retries += retry.local_retries
        if errors:
            raise errors[0]

        # Final sweep: any task not completed by a worker (kill faults
        # with no respawn budget, watchdog disabled, ...) runs inline on
        # the caller thread so run() always terminates with full results.
        with lock:
            remaining = [i for i in range(len(tasks)) if not done[i]]
        for index in remaining:
            with lock:
                if done[index]:  # an abandoned worker got there first
                    continue
            value = execute_inline(index)
            with lock:
                if not done[index]:
                    done[index] = 1
                    results[index] = value
                    pending -= 1
        return results
