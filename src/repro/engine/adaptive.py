"""Adaptive mini-batch sizing for blocked GEMM execution.

``resolve_batch_shape`` in :mod:`repro.core.tensor_join` derives block
edges from a memory budget alone.  The engine refines this with measured
machine behaviour: given a calibrated per-dimension GEMM cost (from
:mod:`repro.core.calibration`), blocks are sized so one GEMM call runs for
roughly ``target_block_seconds`` — long enough to amortize dispatch and
release the GIL productively, short enough that work stealing can
rebalance and the dense intermediate stays cache-resident.  The Figure 7
buffer budget always remains the hard ceiling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import BufferBudgetError

#: Bytes per FP32 cell of the dense score intermediate.
CELL_BYTES = 4


@dataclass(frozen=True)
class BatchPolicy:
    """How the engine picks GEMM block shapes.

    Attributes:
        buffer_budget_bytes: hard cap on the dense intermediate (plus the
            top-k merge state when a top-k condition streams through it).
        gemm_seconds_per_fma: measured per-dimension-element GEMM cost; the
            adaptive edge targets ``target_block_seconds`` per block.
        target_block_seconds: desired wall time of one GEMM block.
        min_edge / max_edge: clamps on the adaptive edge so degenerate
            calibrations cannot produce absurd blocks.
    """

    buffer_budget_bytes: int | None = None
    gemm_seconds_per_fma: float | None = None
    target_block_seconds: float = 0.02
    min_edge: int = 128
    max_edge: int = 16384

    @classmethod
    def from_calibration(
        cls,
        report,
        *,
        buffer_budget_bytes: int | None = None,
        target_block_seconds: float = 0.02,
    ) -> "BatchPolicy":
        """Build a policy from a :class:`~repro.core.calibration.CalibrationReport`.

        Duck-typed on ``gemm_per_dim_element`` so the engine layer does not
        import the core layer (which imports the engine).
        """
        return cls(
            buffer_budget_bytes=buffer_budget_bytes,
            gemm_seconds_per_fma=float(report.gemm_per_dim_element),
            target_block_seconds=target_block_seconds,
        )

    def with_budget(self, buffer_budget_bytes: int | None) -> "BatchPolicy":
        return replace(self, buffer_budget_bytes=buffer_budget_bytes)

    def adaptive_edge(self, dim: int) -> int | None:
        """Square block edge hitting the per-block time target, or ``None``."""
        if not self.gemm_seconds_per_fma or self.gemm_seconds_per_fma <= 0:
            return None
        cells = self.target_block_seconds / (
            self.gemm_seconds_per_fma * max(dim, 1)
        )
        if cells < 1:
            return self.min_edge
        edge = int(math.sqrt(cells))
        return max(self.min_edge, min(edge, self.max_edge))

    def resolve(
        self,
        n_left: int,
        n_right: int,
        dim: int,
        *,
        batch_left: int | None = None,
        batch_right: int | None = None,
        buffer_budget_bytes: int | None = None,
        reserve_bytes_per_left_row: int = 0,
    ) -> tuple[int, int]:
        """Pick ``(batch_left, batch_right)`` block edges.

        Explicit sizes win unconditionally — a caller who pins an edge
        (e.g. the mini-batch ablations) gets exactly that edge, clamped
        only to the input size, never to the budget.  Unspecified edges
        are derived: the calibrated adaptive edge seeds them and the
        buffer budget caps them.  ``reserve_bytes_per_left_row`` carves
        out per-left-row state (the streaming top-k merger) from the
        budget before sizing the dense block, so *total* intermediate
        memory honours the budget whenever the shape is budget-derived.
        """
        explicit_left = batch_left is not None
        explicit_right = batch_right is not None
        if (explicit_left and batch_left < 1) or (
            explicit_right and batch_right < 1
        ):
            raise BufferBudgetError(
                f"invalid batch shape ({batch_left}, {batch_right})"
            )
        if n_left <= 0 or n_right <= 0:
            return max(n_left, 1), max(n_right, 1)
        budget = (
            self.buffer_budget_bytes
            if buffer_budget_bytes is None
            else buffer_budget_bytes
        )
        edge = (
            None
            if explicit_left and explicit_right
            else self.adaptive_edge(dim)
        )
        if budget is not None and not (explicit_left and explicit_right):
            cells = budget // CELL_BYTES
            if cells < 1:
                raise BufferBudgetError(
                    f"buffer budget {budget}B cannot hold one FP32 cell"
                )
            # Merge state + >=1 score cell per left row.
            row_cost = reserve_bytes_per_left_row + CELL_BYTES
            if not explicit_left:
                seed = edge if edge is not None else int(math.isqrt(cells))
                batch_left = max(
                    1, min(n_left, max(seed, 1), budget // row_cost)
                )
            reserved = (batch_left * reserve_bytes_per_left_row) // CELL_BYTES
            free_cells = cells - reserved
            if free_cells < batch_left and not explicit_left:
                raise BufferBudgetError(
                    f"buffer budget {budget}B cannot hold one score column "
                    f"plus merge state for {batch_left} left rows"
                )
            if not explicit_right:
                cap = max(free_cells // batch_left, 1)
                # The calibrated edge bounds the derived right edge as
                # well, or one wide block would blow the per-block time
                # target the calibration exists to hit.
                batch_right = cap if edge is None else max(1, min(cap, edge))
        elif edge is not None:
            if not explicit_left:
                batch_left = min(n_left, edge)
            if not explicit_right:
                batch_right = min(n_right, edge)
        batch_left = n_left if batch_left is None else min(batch_left, n_left)
        batch_right = n_right if batch_right is None else min(batch_right, n_right)
        if batch_left < 1 or batch_right < 1:
            raise BufferBudgetError(
                f"invalid batch shape ({batch_left}, {batch_right})"
            )
        return batch_left, batch_right
