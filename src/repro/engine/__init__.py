"""Morsel-driven parallel execution engine (Section V-A at system scope).

The engine unifies what the seed implemented per operator: partitioning
(:mod:`~repro.engine.morsel`), worker scheduling with work stealing
(:mod:`~repro.engine.scheduler`), and adaptive GEMM batch sizing fed by
cost-model calibration (:mod:`~repro.engine.adaptive`).  Physical join
operators in :mod:`repro.core` execute through an
:class:`~repro.engine.executor.ExecutionEngine` rather than owning thread
pools and batch heuristics themselves.
"""

from .adaptive import BatchPolicy
from .executor import EngineStats, ExecutionEngine, serial_engine
from .morsel import Morsel, make_morsels, partition_rows
from .scheduler import SchedulerStats, WorkStealingScheduler

__all__ = [
    "BatchPolicy",
    "EngineStats",
    "ExecutionEngine",
    "Morsel",
    "SchedulerStats",
    "WorkStealingScheduler",
    "make_morsels",
    "partition_rows",
    "serial_engine",
]
