"""The execution engine: morsel scheduling plus batch-shape policy.

One :class:`ExecutionEngine` instance owns everything the physical join
operators used to decide ad hoc: how the left relation is partitioned
(morsels), who runs them (the work-stealing scheduler), and how large the
dense GEMM blocks inside each morsel may grow (the adaptive
:class:`~repro.engine.adaptive.BatchPolicy`, optionally fed by
:mod:`repro.core.calibration` measurements).  Operators stay pure
functions over row ranges; the engine decides placement and shape.
"""

from __future__ import annotations

import copy
import threading
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..config import cpu_count, get_config
from ..obs.trace import span
from ..reliability.retry import RetryBudget, RetryPolicy
from ..reliability.runtime import current_deadline, current_retry_budget
from ..reliability.watchdog import WatchdogPolicy
from .adaptive import BatchPolicy
from .morsel import Morsel, make_morsels
from .scheduler import SchedulerStats, WorkStealingScheduler

#: Minimum morsels per worker the engine aims for, so stealing has slack.
MORSELS_PER_WORKER = 4

#: Cap on distinct per-tag counters retained in :class:`EngineStats`.
#: A long-running service tags every query uniquely; without a bound the
#: attribution dict would grow one entry per query forever.  Beyond the
#: cap the oldest tags fold into the ``"<evicted>"`` aggregate.
MAX_TRACKED_TAGS = 1024


@dataclass
class EngineStats:
    """Cumulative scheduling counters across an engine's lifetime.

    Updates go through :meth:`record` under an internal lock: a service
    runs many queries on one engine concurrently, and per-tag morsel
    attribution (``by_tag``) must not lose counts to racing increments.
    ``by_tag`` keeps at most :data:`MAX_TRACKED_TAGS` recent tags; older
    ones are folded into an ``"<evicted>"`` aggregate so total counts
    stay exact while memory stays bounded.
    """

    runs: int = 0
    morsels_dispatched: int = 0
    steals: int = 0
    retries: int = 0
    watchdog_stalls: int = 0
    worker_deaths: int = 0
    worker_respawns: int = 0
    reenqueued_tasks: int = 0
    #: query/group tag -> morsels dispatched under that tag.
    by_tag: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, run_stats: SchedulerStats, *, tag: str | None = None) -> None:
        """Fold one scheduler run into the cumulative counters."""
        with self._lock:
            self.runs += 1
            self.morsels_dispatched += run_stats.n_tasks
            self.steals += run_stats.steals
            self.retries += run_stats.retries
            self.watchdog_stalls += run_stats.watchdog_stalls
            self.worker_deaths += run_stats.worker_deaths
            self.worker_respawns += run_stats.worker_respawns
            self.reenqueued_tasks += run_stats.reenqueued_tasks
            if tag is not None:
                self.by_tag[tag] = self.by_tag.get(tag, 0) + run_stats.n_tasks
                while (
                    len(self.by_tag) - ("<evicted>" in self.by_tag)
                    > MAX_TRACKED_TAGS
                ):
                    oldest = next(
                        key for key in self.by_tag if key != "<evicted>"
                    )
                    self.by_tag["<evicted>"] = (
                        self.by_tag.get("<evicted>", 0) + self.by_tag.pop(oldest)
                    )

    def snapshot(self) -> dict:
        """Consistent copy of every counter, taken under the lock.

        Reporting paths (service stats/health, the metrics adapter) must
        use this instead of reading fields directly: a concurrent
        :meth:`record` would otherwise interleave mid-read and produce
        counters that never coexisted.
        """
        with self._lock:
            return {
                "runs": self.runs,
                "morsels_dispatched": self.morsels_dispatched,
                "steals": self.steals,
                "retries": self.retries,
                "watchdog_stalls": self.watchdog_stalls,
                "worker_deaths": self.worker_deaths,
                "worker_respawns": self.worker_respawns,
                "reenqueued_tasks": self.reenqueued_tasks,
                "tagged_queries": len(self.by_tag),
            }


class ExecutionEngine:
    """Morsel-driven parallel executor for E-join operators.

    Args:
        n_threads: worker count; ``None`` uses the configured CPU count.
        morsel_rows: upper bound on rows per morsel; ``None`` uses the
            configured default.
        policy: batch-shape policy; ``None`` builds one from the configured
            buffer budget.
        work_stealing: override the configured work-stealing toggle.
    """

    def __init__(
        self,
        *,
        n_threads: int | None = None,
        morsel_rows: int | None = None,
        policy: BatchPolicy | None = None,
        work_stealing: bool | None = None,
    ) -> None:
        config = get_config()
        self.n_threads = (
            cpu_count() if n_threads is None else max(1, int(n_threads))
        )
        self.morsel_rows = (
            config.default_morsel_rows if morsel_rows is None else morsel_rows
        )
        if self.morsel_rows < 1:
            raise ValueError(f"morsel_rows must be >= 1, got {self.morsel_rows}")
        self.policy = (
            BatchPolicy(buffer_budget_bytes=config.default_buffer_budget_bytes)
            if policy is None
            else policy
        )
        self.work_stealing = (
            config.work_stealing if work_stealing is None else work_stealing
        )
        self.stats = EngineStats()
        #: Engine-wide retry parameters; bound per run with the ambient
        #: deadline and a fresh per-query budget.  The policy's stats
        #: object is shared by every bound view, so retry counters
        #: accumulate across the engine's lifetime.
        self.retry_policy = RetryPolicy.from_config()
        self.watchdog = WatchdogPolicy.from_config()
        self._retry_budget_n = config.retry_budget
        #: Attribution tag stamped on this engine's scheduler runs; set
        #: via :meth:`with_tag` so concurrent queries sharing one engine
        #: each carry their own tag.
        self.tag: str | None = None

    def with_tag(self, tag: str | None) -> "ExecutionEngine":
        """A shallow view of this engine that tags its scheduler runs.

        The view shares the scheduler configuration, batch policy, and
        (crucially) the cumulative :class:`EngineStats` with the parent —
        only the attribution tag differs, so a service can hand each
        concurrent query a tagged handle onto one shared engine.
        """
        view = copy.copy(self)
        view.tag = tag
        return view

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def morsels_for(self, n_rows: int) -> list[Morsel]:
        """Morselize ``[0, n_rows)`` for this engine's worker count.

        Uses the configured morsel size, shrunk so every worker sees at
        least :data:`MORSELS_PER_WORKER` morsels when the input allows it —
        otherwise a skewed morsel pins its worker with nothing to steal.
        """
        if n_rows <= 0:
            return []
        rows = self.morsel_rows
        if self.n_threads > 1:
            target = -(-n_rows // (self.n_threads * MORSELS_PER_WORKER))
            rows = max(1, min(rows, target))
        return make_morsels(n_rows, rows, tag=self.tag)

    def map_morsels(
        self, n_rows: int, task: Callable[[Morsel], object]
    ) -> list:
        """Run ``task`` over every morsel of ``[0, n_rows)``.

        Returns per-morsel results in input (sequence) order, so callers
        can concatenate them and obtain exactly the single-threaded result.
        """
        morsels = self.morsels_for(n_rows)
        return self.run([lambda m=m: task(m) for m in morsels])

    def run(self, tasks: Sequence[Callable[[], object]]) -> list:
        """Schedule an arbitrary ordered task batch on the engine's workers.

        Used by operators whose natural work unit is not a tuple range
        (e.g. the tensor join's left GEMM blocks).  Results keep task
        order.
        """
        run_stats = SchedulerStats()
        scheduler = WorkStealingScheduler(
            self.n_threads, work_stealing=self.work_stealing
        )
        # Bind the retry policy to this run: the ambient deadline and
        # per-query budget (set by the service's QoS dispatch on this
        # thread) bound backoff; a standalone run gets its own budget.
        budget = current_retry_budget()
        if budget is None:
            budget = RetryBudget(self._retry_budget_n)
        bound = self.retry_policy.bind(
            deadline=current_deadline(), budget=budget
        )
        # The span lives on the *dispatching* thread — the one carrying
        # the ambient query trace; worker threads never see the scope,
        # which is fine because the run's stats summarize their morsels.
        with span("engine.run") as sp:
            results = scheduler.run(
                tasks, stats=run_stats, retry=bound, watchdog=self.watchdog
            )
            sp.set(
                tag=self.tag,
                morsels=run_stats.n_tasks,
                steals=run_stats.steals,
                retries=run_stats.retries,
            )
        self.stats.record(run_stats, tag=self.tag)
        return results

    # ------------------------------------------------------------------
    # Batch shaping
    # ------------------------------------------------------------------
    def worker_budget(
        self,
        buffer_budget_bytes: int | None = None,
        *,
        concurrency: int | None = None,
    ) -> int | None:
        """Per-worker share of the buffer budget.

        An explicit budget wins over the policy's; the total is split by
        the number of workers that can actually hold a dense block at
        once — ``min(n_threads, concurrency)`` when the caller knows how
        many tasks exist — so the *sum* of resident intermediates honours
        the configured bound without over-shrinking few-block joins.
        """
        budget = (
            self.policy.buffer_budget_bytes
            if buffer_budget_bytes is None
            else buffer_budget_bytes
        )
        holders = (
            self.n_threads
            if concurrency is None
            else min(self.n_threads, max(concurrency, 1))
        )
        if budget is not None and holders > 1:
            budget = budget // holders
        return budget

    def calibrate(self, model, **kwargs) -> BatchPolicy:
        """Measure this machine and adopt a calibrated batch policy.

        Runs :func:`repro.core.calibration.calibrate` (imported lazily —
        the core layer executes through this engine) and replaces the
        policy, keeping any configured buffer budget.
        """
        from ..core.calibration import calibrate

        report = calibrate(model, **kwargs)
        self.policy = BatchPolicy.from_calibration(
            report, buffer_budget_bytes=self.policy.buffer_budget_bytes
        )
        return self.policy


def serial_engine() -> ExecutionEngine:
    """A fresh single-threaded engine (deterministic inline execution)."""
    return ExecutionEngine(n_threads=1)
