"""Morsels: fixed-size row ranges as the unit of scheduling.

Morsel-driven execution (Leis et al., SIGMOD'14) decomposes an operator's
input into many small contiguous tuple ranges — far more than there are
workers — so the scheduler can rebalance skew at runtime instead of
committing to one static partition per thread.  Both join condition
families here are *per left tuple*, so any morselization of the left
relation preserves exact results; morsels carry a sequence number so
partial results reassemble in deterministic input order regardless of
which worker ran them when.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import JoinError


@dataclass(frozen=True)
class Morsel:
    """A contiguous range ``[start, stop)`` of left-relation rows.

    ``seq`` is the morsel's position in input order; schedulers return
    results sorted by it, making execution order unobservable.  ``tag``
    optionally names the query (or shared-scan group) the morsel belongs
    to, so a service running many queries on one engine can attribute
    scheduled work per query in the engine's counters.
    """

    seq: int
    start: int
    stop: int
    tag: str | None = None

    def __len__(self) -> int:
        return self.stop - self.start


def partition_rows(n: int, n_parts: int) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into at most ``n_parts`` balanced contiguous ranges.

    Every range is non-empty and sizes differ by at most one tuple; an
    empty input yields no ranges at all.
    """
    if n_parts < 1:
        raise JoinError(f"n_parts must be >= 1, got {n_parts}")
    if n <= 0:
        return []
    n_parts = min(n_parts, n)
    bounds = np.linspace(0, n, n_parts + 1, dtype=np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(n_parts)
        if bounds[i + 1] > bounds[i]
    ]


def make_morsels(n: int, morsel_rows: int, *, tag: str | None = None) -> list[Morsel]:
    """Cut ``[0, n)`` into morsels of at most ``morsel_rows`` tuples."""
    if morsel_rows < 1:
        raise JoinError(f"morsel_rows must be >= 1, got {morsel_rows}")
    if n <= 0:
        return []
    n_parts = -(-n // morsel_rows)  # ceil division
    return [
        Morsel(seq, start, stop, tag)
        for seq, (start, stop) in enumerate(partition_rows(n, n_parts))
    ]
