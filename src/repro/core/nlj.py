"""Nested-loop E-join formulations (Sections IV-A, VI-B, VI-C).

Two operators live here:

* :func:`naive_nlj` — the *unoptimized* extension of relational NLJ: the
  embedding model is invoked **per processed pair**, so model cost is
  quadratic: ``|R|*|S|*(A+M+C)`` (E-NL Join Cost).  This exists to validate
  the cost model; never use it for real work.
* :func:`prefetch_nlj` — the logically-optimized formulation: each tuple is
  embedded exactly once up front ("prefetching"), giving
  ``|R|*|S|*(A+C) + (|R|+|S|)*M`` (E-NLJ Prefetch Optimization).  Its inner
  similarity kernel is switchable between the pure-Python scalar loop
  ("NO-SIMD") and the NumPy vectorized kernel ("SIMD") to reproduce the
  physical-optimization axis of Figure 8.
"""

from __future__ import annotations

import time

import numpy as np

from ..embedding.base import EmbeddingModel
from ..errors import DimensionalityError, JoinError
from ..vector.kernels import Kernel, cosine_scalar
from ..vector.norms import normalize_rows
from ..vector.topk import top_k_indices
from .conditions import (
    JoinCondition,
    ThresholdCondition,
    TopKCondition,
    validate_condition,
)
from .result import JoinResult, JoinStats


def _as_matrix(side, model: EmbeddingModel | None, stats: JoinStats) -> np.ndarray:
    """Resolve a join input: either an (n, d) array or raw items + model."""
    if isinstance(side, np.ndarray):
        if side.ndim != 2:
            raise DimensionalityError(
                f"join input must be 2-D (n, dim), got ndim={side.ndim}"
            )
        return np.asarray(side, dtype=np.float32)
    if model is None:
        raise JoinError(
            "raw (non-array) join inputs require an embedding model"
        )
    items = list(side)
    vectors = model.embed_batch(items)
    stats.model_calls += len(items)
    return vectors


def _emit_threshold_row(
    scores: np.ndarray, threshold: float
) -> tuple[np.ndarray, np.ndarray]:
    idx = np.nonzero(scores >= threshold)[0]
    return idx, scores[idx]


def _emit_topk_row(
    scores: np.ndarray, condition: TopKCondition
) -> tuple[np.ndarray, np.ndarray]:
    idx = top_k_indices(scores, condition.k)
    picked = scores[idx]
    if condition.min_similarity is not None:
        keep = picked >= condition.min_similarity
        idx, picked = idx[keep], picked[keep]
    return idx, picked


def _emit_row(
    scores: np.ndarray, condition: JoinCondition
) -> tuple[np.ndarray, np.ndarray]:
    if isinstance(condition, ThresholdCondition):
        return _emit_threshold_row(scores, condition.threshold)
    assert isinstance(condition, TopKCondition)
    return _emit_topk_row(scores, condition)


def naive_nlj(
    left_items: list,
    right_items: list,
    model: EmbeddingModel,
    condition: JoinCondition,
    *,
    kernel: Kernel = Kernel.VECTORIZED,
) -> JoinResult:
    """Naive E-NLJ: the model runs inside the pairwise loop.

    Every pair (r, s) triggers two model invocations — this is the
    "imperative operator specification by a non-expert user" baseline whose
    quadratic model cost Figure 8 quantifies.
    """
    validate_condition(condition)
    if kernel is Kernel.GEMM:
        raise JoinError("naive NLJ is pairwise by definition; GEMM kernel "
                        "implies the tensor formulation")
    stats = JoinStats(strategy=f"naive-nlj/{kernel.value}")
    start = time.perf_counter()
    left_items = list(left_items)
    right_items = list(right_items)
    stats.n_left, stats.n_right = len(left_items), len(right_items)

    out_left: list[int] = []
    out_right: list[int] = []
    out_scores: list[float] = []
    for i, litem in enumerate(left_items):
        row = np.empty(len(right_items), dtype=np.float32)
        for j, ritem in enumerate(right_items):
            # Model on the critical path: embed BOTH tuples per pair.
            lvec = model.embed(litem)
            rvec = model.embed(ritem)
            stats.model_calls += 2
            if kernel is Kernel.SCALAR:
                row[j] = cosine_scalar(lvec, rvec)
            else:
                row[j] = float(lvec @ rvec)  # unit vectors: dot == cosine
            stats.similarity_evaluations += 1
        idx, picked = _emit_row(row, condition)
        out_left.extend([i] * len(idx))
        out_right.extend(idx.tolist())
        out_scores.extend(picked.tolist())

    stats.seconds = time.perf_counter() - start
    return JoinResult(
        np.asarray(out_left, dtype=np.int64),
        np.asarray(out_right, dtype=np.int64),
        np.asarray(out_scores, dtype=np.float32),
        stats,
    )


def _nlj_rows(
    left_n: np.ndarray,
    right_n: np.ndarray,
    condition: JoinCondition,
    kernel: Kernel,
    lo: int,
    hi: int,
) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
    """Run the pairwise loop for left rows ``[lo, hi)`` (one morsel)."""
    out_left: list[np.ndarray] = []
    out_right: list[np.ndarray] = []
    out_scores: list[np.ndarray] = []
    for i in range(lo, hi):
        if kernel is Kernel.SCALAR:
            row = _scalar_row(left_n[i], right_n)
        else:
            row = right_n @ left_n[i]
        idx, picked = _emit_row(row, condition)
        if len(idx) == 0:
            continue
        out_left.append(np.full(len(idx), i, dtype=np.int64))
        out_right.append(idx)
        out_scores.append(picked)
    return out_left, out_right, out_scores


def prefetch_nlj(
    left,
    right,
    condition: JoinCondition,
    *,
    model: EmbeddingModel | None = None,
    kernel: Kernel = Kernel.VECTORIZED,
    swap_loops: bool = False,
    assume_normalized: bool = False,
    engine=None,
) -> JoinResult:
    """Prefetch-optimized E-NLJ.

    Embeds each input tuple exactly once (linear model cost), normalizes
    once, then runs the pairwise loop with the chosen similarity kernel:

    * ``Kernel.VECTORIZED`` — per left tuple, one NumPy matrix-vector kernel
      against the inner relation ("SIMD" series),
    * ``Kernel.SCALAR`` — pure-Python per-element loops ("NO-SIMD" series).

    ``swap_loops`` exchanges outer/inner roles to expose the loop-order
    locality effect of Figure 10 (the traditional smaller-relation-inner
    heuristic).

    ``assume_normalized`` skips normalization for inputs that are already
    unit rows (e.g. morsel chunks of a relation normalized once by
    :func:`~repro.core.parallel.parallel_join`).

    An ``engine`` (:class:`repro.engine.ExecutionEngine`) morselizes the
    outer loop across its workers; morsel results reassemble in row order,
    so output is identical to the inline loop.
    """
    validate_condition(condition)
    if kernel is Kernel.GEMM:
        raise JoinError("use tensor_join() for the GEMM formulation")
    stats = JoinStats(strategy=f"prefetch-nlj/{kernel.value}")
    start = time.perf_counter()

    left_m = _as_matrix(left, model, stats)
    right_m = _as_matrix(right, model, stats)
    if left_m.shape[1] != right_m.shape[1]:
        raise DimensionalityError(
            f"dimensionality mismatch: {left_m.shape[1]} vs {right_m.shape[1]}"
        )
    stats.n_left, stats.n_right = len(left_m), len(right_m)

    if swap_loops:
        swapped = prefetch_nlj(
            right_m, left_m, _swap_condition(condition), kernel=kernel,
            assume_normalized=assume_normalized, engine=engine,
        )
        stats.similarity_evaluations = swapped.stats.similarity_evaluations
        stats.seconds = time.perf_counter() - start
        result = JoinResult(
            swapped.right_ids, swapped.left_ids, swapped.scores, stats
        )
        return result

    left_n = left_m if assume_normalized else normalize_rows(left_m)
    right_n = right_m if assume_normalized else normalize_rows(right_m)

    if engine is not None and engine.n_threads > 1:
        parts = engine.map_morsels(
            left_n.shape[0],
            lambda m: _nlj_rows(
                left_n, right_n, condition, kernel, m.start, m.stop
            ),
        )
    else:
        parts = [
            _nlj_rows(left_n, right_n, condition, kernel, 0, left_n.shape[0])
        ]
    out_left: list[np.ndarray] = []
    out_right: list[np.ndarray] = []
    out_scores: list[np.ndarray] = []
    for part_left, part_right, part_scores in parts:
        out_left.extend(part_left)
        out_right.extend(part_right)
        out_scores.extend(part_scores)
    stats.similarity_evaluations = left_n.shape[0] * right_n.shape[0]

    stats.seconds = time.perf_counter() - start
    if not out_left:
        return JoinResult.empty(stats)
    return JoinResult(
        np.concatenate(out_left),
        np.concatenate(out_right),
        np.concatenate(out_scores),
        stats,
    )


def _scalar_row(query: np.ndarray, inner: np.ndarray) -> np.ndarray:
    """Pure-Python inner loop over the inner relation (NO-SIMD path)."""
    n = inner.shape[0]
    row = np.empty(n, dtype=np.float32)
    qlist = query.tolist()
    for j in range(n):
        total = 0.0
        for x, y in zip(qlist, inner[j].tolist()):
            total += x * y
        row[j] = total
    return row


def _swap_condition(condition: JoinCondition) -> JoinCondition:
    """Conditions valid under operand exchange.

    A threshold condition is symmetric.  Top-k is *per left tuple* and does
    not commute — swapping loops under top-k would change semantics, so we
    refuse.
    """
    if isinstance(condition, ThresholdCondition):
        return condition
    raise JoinError(
        "swap_loops is only valid for symmetric (threshold) conditions; "
        "top-k is per-left-tuple"
    )
