"""Data-parallel E-join execution (Section V-A, Figure 9).

The paper parallelizes by partitioning the input relations along tuple
boundaries and running the join kernel per partition on affinitized
threads.  Here each worker runs NumPy/BLAS kernels that release the GIL, so
a thread pool yields genuine multicore scaling for the vectorized and GEMM
paths — the Python analogue of the paper's 48-thread runs.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..config import cpu_count
from ..errors import JoinError
from ..vector.kernels import Kernel
from ..vector.norms import normalize_rows
from .conditions import JoinCondition, validate_condition
from .nlj import prefetch_nlj
from .result import JoinResult, JoinStats
from .tensor_join import tensor_join


def partition_rows(n: int, n_parts: int) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into at most ``n_parts`` contiguous ranges."""
    if n_parts < 1:
        raise JoinError(f"n_parts must be >= 1, got {n_parts}")
    n_parts = min(n_parts, max(n, 1))
    bounds = np.linspace(0, n, n_parts + 1, dtype=np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(n_parts)
        if bounds[i + 1] > bounds[i]
    ]


def _offset_result(part: JoinResult, offset: int) -> JoinResult:
    return JoinResult(
        part.left_ids + offset, part.right_ids, part.scores, part.stats
    )


def parallel_join(
    left: np.ndarray,
    right: np.ndarray,
    condition: JoinCondition,
    *,
    strategy: str = "tensor",
    n_threads: int | None = None,
    kernel: Kernel = Kernel.VECTORIZED,
    batch_left: int | None = None,
    batch_right: int | None = None,
) -> JoinResult:
    """Partition the left relation and join partitions concurrently.

    Args:
        strategy: ``"tensor"`` (GEMM blocks per worker) or ``"nlj"``
            (prefetch NLJ per worker).
        n_threads: worker count; defaults to the machine's CPU count.
        kernel: similarity kernel for the NLJ strategy.

    The result is identical to the single-threaded operator (partitioning
    is along tuples; both condition families are per-left-tuple, so no
    cross-partition merge is needed).
    """
    validate_condition(condition)
    if strategy not in ("tensor", "nlj"):
        raise JoinError(f"unknown parallel strategy {strategy!r}")
    left = np.asarray(left, dtype=np.float32)
    right = np.asarray(right, dtype=np.float32)
    n_threads = cpu_count() if n_threads is None else max(1, int(n_threads))

    stats = JoinStats(strategy=f"parallel-{strategy}/{n_threads}t")
    start = time.perf_counter()
    stats.n_left, stats.n_right = len(left), len(right)

    # Normalize once, outside the workers (shared read-only operands).
    left_n = normalize_rows(left)
    right_n = normalize_rows(right)
    parts = partition_rows(len(left_n), n_threads)

    def run_part(bounds: tuple[int, int]) -> JoinResult:
        lo, hi = bounds
        chunk = left_n[lo:hi]
        if strategy == "tensor":
            part = tensor_join(
                chunk,
                right_n,
                condition,
                batch_left=batch_left,
                batch_right=batch_right,
                assume_normalized=True,
            )
        else:
            part = prefetch_nlj(chunk, right_n, condition, kernel=kernel)
        return _offset_result(part, lo)

    if n_threads == 1 or len(parts) == 1:
        results = [run_part(p) for p in parts]
    else:
        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            results = list(pool.map(run_part, parts))

    merged = JoinResult.concat(results, stats)
    stats.similarity_evaluations = sum(
        r.stats.similarity_evaluations for r in results
    )
    stats.batch_invocations = sum(r.stats.batch_invocations for r in results)
    stats.peak_buffer_elements = max(
        (r.stats.peak_buffer_elements for r in results), default=0
    )
    stats.seconds = time.perf_counter() - start
    stats.pairs_emitted = len(merged)
    return merged
