"""Data-parallel E-join execution (Section V-A, Figure 9).

The paper parallelizes by partitioning the input relations along tuple
boundaries and running the join kernel per partition on affinitized
threads.  Here partitioning and scheduling belong to the morsel-driven
:mod:`repro.engine`: the left relation is cut into many small morsels and
work-stealing workers run NumPy/BLAS kernels that release the GIL, so a
thread pool yields genuine multicore scaling for the vectorized and GEMM
paths — the Python analogue of the paper's 48-thread runs, robust to skew
because idle workers steal queued morsels instead of waiting at a static
partition barrier.
"""

from __future__ import annotations

import time

import numpy as np

from ..engine import ExecutionEngine, Morsel, partition_rows
from ..errors import JoinError
from ..vector.kernels import Kernel
from ..vector.norms import normalize_rows
from .conditions import JoinCondition, validate_condition
from .nlj import prefetch_nlj
from .result import JoinResult, JoinStats
from .tensor_join import tensor_join

__all__ = ["parallel_join", "partition_rows"]


def _offset_result(part: JoinResult, offset: int) -> JoinResult:
    return JoinResult(
        part.left_ids + offset, part.right_ids, part.scores, part.stats
    )


def parallel_join(
    left: np.ndarray,
    right: np.ndarray,
    condition: JoinCondition,
    *,
    strategy: str = "tensor",
    n_threads: int | None = None,
    kernel: Kernel = Kernel.VECTORIZED,
    batch_left: int | None = None,
    batch_right: int | None = None,
    buffer_budget_bytes: int | None = None,
    engine: ExecutionEngine | None = None,
) -> JoinResult:
    """Morselize the left relation and join morsels on engine workers.

    Args:
        strategy: ``"tensor"`` (GEMM blocks per morsel) or ``"nlj"``
            (prefetch NLJ per morsel).
        n_threads: worker count; defaults to the machine's CPU count.
            Ignored when an explicit ``engine`` is supplied.
        kernel: similarity kernel for the NLJ strategy.
        buffer_budget_bytes: total Figure 7 buffer budget for the tensor
            strategy's dense intermediates, split evenly across workers so
            concurrently-held blocks stay within it.
        engine: a pre-configured :class:`~repro.engine.ExecutionEngine`;
            by default one is built for ``n_threads`` workers.

    The result is identical to the single-threaded operator (partitioning
    is along tuples; both condition families are per-left-tuple, and
    morsel results reassemble in input order regardless of which worker
    ran them).
    """
    validate_condition(condition)
    if strategy not in ("tensor", "nlj"):
        raise JoinError(f"unknown parallel strategy {strategy!r}")
    if engine is not None and n_threads is not None:
        raise JoinError(
            "pass either n_threads or a pre-configured engine, not both "
            "(the engine's worker count would silently win)"
        )
    left = np.asarray(left, dtype=np.float32)
    right = np.asarray(right, dtype=np.float32)
    if engine is None:
        engine = ExecutionEngine(n_threads=n_threads)

    stats = JoinStats(strategy=f"parallel-{strategy}/{engine.n_threads}t")
    start = time.perf_counter()
    stats.n_left, stats.n_right = len(left), len(right)

    # Normalize once, outside the workers (shared read-only operands).
    left_n = normalize_rows(left)
    right_n = normalize_rows(right)

    # Morsels run concurrently, so each worker's inner tensor_join gets
    # its share of the total budget (explicit or engine-configured),
    # divided by how many morsels can actually be in flight at once.
    n_morsels = len(engine.morsels_for(len(left_n)))
    worker_budget = engine.worker_budget(
        buffer_budget_bytes, concurrency=n_morsels
    )

    def run_morsel(morsel: Morsel) -> JoinResult:
        chunk = left_n[morsel.start : morsel.stop]
        if strategy == "tensor":
            part = tensor_join(
                chunk,
                right_n,
                condition,
                batch_left=batch_left,
                batch_right=batch_right,
                buffer_budget_bytes=worker_budget,
                assume_normalized=True,
                policy=engine.policy,  # calibrated block sizing per morsel
            )
        else:
            part = prefetch_nlj(
                chunk, right_n, condition, kernel=kernel,
                assume_normalized=True,
            )
        return _offset_result(part, morsel.start)

    results = engine.map_morsels(len(left_n), run_morsel)

    merged = JoinResult.concat(results, stats)
    stats.similarity_evaluations = sum(
        r.stats.similarity_evaluations for r in results
    )
    stats.batch_invocations = sum(r.stats.batch_invocations for r in results)
    stats.peak_buffer_elements = max(
        (r.stats.peak_buffer_elements for r in results), default=0
    )
    stats.extra["morsels"] = len(results)
    stats.seconds = time.perf_counter() - start
    stats.pairs_emitted = len(merged)
    return merged
