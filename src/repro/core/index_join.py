"""Index-probe E-join (Sections IV-B, VI-E; Figures 15-17).

The join is implemented as **batched index probes**: each left tuple's
vector probes a vector index built over the right relation, exactly how the
paper drives Milvus ("batching many search queries would be equivalent to a
join operation").  Two consequences the paper highlights, both preserved:

* an index-based join **must** specify top-k — a pure range condition is
  emulated by retrieving top-``probe_k`` and post-filtering by threshold
  (this is why Figure 17's index series degrades),
* relational selectivity arrives as a **pre-filter bitmap**: disallowed ids
  are excluded from results on the fly while graph traversal cost is still
  paid.
"""

from __future__ import annotations

import time

import numpy as np

from ..embedding.base import EmbeddingModel
from ..errors import DimensionalityError, JoinError
from ..index.base import VectorIndex
from ..reliability.faults import maybe_inject
from ..vector.norms import normalize_rows
from .conditions import (
    JoinCondition,
    ThresholdCondition,
    TopKCondition,
    validate_condition,
)
from .nlj import _as_matrix
from .result import JoinResult, JoinStats

#: Default retrieval depth when emulating a range condition on an index
#: (Figure 17 uses k=32 retrieval under a similarity>0.9 filter).
DEFAULT_PROBE_K = 32


def _probe_plan(condition: JoinCondition, probe_k: int | None) -> tuple[int, float | None]:
    """Translate a join condition into (k, post_threshold) for the index."""
    if isinstance(condition, TopKCondition):
        return condition.k, condition.min_similarity
    assert isinstance(condition, ThresholdCondition)
    k = DEFAULT_PROBE_K if probe_k is None else probe_k
    if k < 1:
        raise JoinError(f"probe_k must be >= 1, got {k}")
    return k, condition.threshold


def _probe_rows(
    left_n: np.ndarray,
    index: VectorIndex,
    k: int,
    post_threshold: float | None,
    allowed: np.ndarray | None,
    lo: int,
    hi: int,
) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
    """Probe the index for left rows ``[lo, hi)`` (one morsel)."""
    # Fault site sits before any probe: a retried morsel re-probes the
    # (read-only) index from scratch and lands on identical ids/scores.
    maybe_inject("index.probe")
    out_l: list[np.ndarray] = []
    out_r: list[np.ndarray] = []
    out_s: list[np.ndarray] = []
    for i in range(lo, hi):
        # Probe rows were normalized once, as a batch, by the caller.
        found = index.search(left_n[i], k, allowed=allowed, assume_normalized=True)
        ids, scores = found.ids, found.scores
        if post_threshold is not None:
            keep = scores >= post_threshold
            ids, scores = ids[keep], scores[keep]
        if len(ids) == 0:
            continue
        out_l.append(np.full(len(ids), i, dtype=np.int64))
        out_r.append(ids.astype(np.int64))
        out_s.append(scores.astype(np.float32))
    return out_l, out_r, out_s


def index_join(
    left,
    index: VectorIndex,
    condition: JoinCondition,
    *,
    model: EmbeddingModel | None = None,
    allowed: np.ndarray | None = None,
    probe_k: int | None = None,
    engine=None,
) -> JoinResult:
    """Join left vectors against an index built over the right relation.

    Args:
        left: ``(n, d)`` probe vectors or raw items with ``model``.
        index: a built :class:`~repro.index.base.VectorIndex` whose stored
            ids correspond to right-relation row offsets.
        condition: threshold (emulated via top-``probe_k`` + post-filter) or
            top-k condition.
        allowed: optional pre-filter bitmap over right ids (relational
            selection pushed down to the index probe).
        probe_k: retrieval depth for threshold conditions.
        engine: optional :class:`repro.engine.ExecutionEngine`; probe
            batches are morselized across its workers (the index is only
            read, and results reassemble in probe order).

    Returns:
        Offset-pair :class:`JoinResult`.  Approximate: recall depends on the
        index's build-time parameters (Lo/Hi in the paper).
    """
    validate_condition(condition)
    stats = JoinStats(strategy=f"index/{type(index).__name__.lower()}")
    start = time.perf_counter()

    left_m = _as_matrix(left, model, stats)
    if left_m.shape[1] != index.dim:
        raise DimensionalityError(
            f"probe dim {left_m.shape[1]} != index dim {index.dim}"
        )
    stats.n_left = len(left_m)
    stats.n_right = len(index)
    k, post_threshold = _probe_plan(condition, probe_k)

    left_n = normalize_rows(left_m)
    probes_before = index.stats.distance_computations

    if engine is not None and engine.n_threads > 1:
        parts = engine.map_morsels(
            left_n.shape[0],
            lambda m: _probe_rows(
                left_n, index, k, post_threshold, allowed, m.start, m.stop
            ),
        )
    else:
        parts = [
            _probe_rows(
                left_n, index, k, post_threshold, allowed, 0, left_n.shape[0]
            )
        ]
    out_l: list[np.ndarray] = []
    out_r: list[np.ndarray] = []
    out_s: list[np.ndarray] = []
    for part_l, part_r, part_s in parts:
        out_l.extend(part_l)
        out_r.extend(part_r)
        out_s.extend(part_s)

    stats.similarity_evaluations = (
        index.stats.distance_computations - probes_before
    )
    stats.extra["probe_k"] = k
    stats.seconds = time.perf_counter() - start
    if not out_l:
        return JoinResult.empty(stats)
    return JoinResult(
        np.concatenate(out_l),
        np.concatenate(out_r),
        np.concatenate(out_s),
        stats,
    )


def build_index_for_join(
    right,
    index_factory,
    *,
    model: EmbeddingModel | None = None,
) -> VectorIndex:
    """Build an index over the right relation's vectors.

    ``index_factory`` is a callable ``dim -> VectorIndex`` (e.g.
    ``lambda d: HNSWIndex(d, m=16)``).  Raw items are prefetch-embedded.
    """
    stats = JoinStats()
    right_m = _as_matrix(right, model, stats)
    index = index_factory(right_m.shape[1])
    index.add(right_m)
    return index
