"""E-join result set: batch-offset pairs with late materialization.

Following Figure 6 (step 2) the join result is a *sparse set of offset
pairs* — ``(left_id, right_id, similarity)`` triples — rather than
materialized tuples.  This "is more compact as tuples of offsets represent
unique tensor identifiers" (Section IV-C); actual payload columns are only
gathered on demand (:meth:`JoinResult.materialize`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from ..errors import JoinError
from ..relational.table import Table


@dataclass
class JoinStats:
    """Execution statistics of one E-join run."""

    strategy: str = ""
    n_left: int = 0
    n_right: int = 0
    pairs_emitted: int = 0
    model_calls: int = 0
    similarity_evaluations: int = 0
    peak_buffer_elements: int = 0
    batch_invocations: int = 0
    seconds: float = 0.0
    extra: dict = field(default_factory=dict)


@dataclass
class JoinResult:
    """Sparse pair-offset result of an E-join."""

    left_ids: np.ndarray
    right_ids: np.ndarray
    scores: np.ndarray
    stats: JoinStats = field(default_factory=JoinStats)

    def __post_init__(self) -> None:
        self.left_ids = np.asarray(self.left_ids, dtype=np.int64)
        self.right_ids = np.asarray(self.right_ids, dtype=np.int64)
        self.scores = np.asarray(self.scores, dtype=np.float32)
        if not (
            len(self.left_ids) == len(self.right_ids) == len(self.scores)
        ):
            raise JoinError(
                f"ragged result arrays: {len(self.left_ids)}, "
                f"{len(self.right_ids)}, {len(self.scores)}"
            )
        self.stats.pairs_emitted = len(self.left_ids)

    @classmethod
    def empty(cls, stats: JoinStats | None = None) -> "JoinResult":
        return cls(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float32),
            stats or JoinStats(),
        )

    @classmethod
    def concat(cls, parts: list["JoinResult"], stats: JoinStats | None = None) -> "JoinResult":
        """Combine partial results (mini-batch / parallel partitions)."""
        if not parts:
            return cls.empty(stats)
        return cls(
            np.concatenate([p.left_ids for p in parts]),
            np.concatenate([p.right_ids for p in parts]),
            np.concatenate([p.scores for p in parts]),
            stats or JoinStats(),
        )

    def __len__(self) -> int:
        return len(self.left_ids)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def pairs(self) -> set[tuple[int, int]]:
        """Result as a set of (left, right) offset pairs (order-free)."""
        return set(zip(self.left_ids.tolist(), self.right_ids.tolist()))

    def sorted(self) -> "JoinResult":
        """Canonical ordering: by left id, then right id."""
        order = np.lexsort((self.right_ids, self.left_ids))
        return JoinResult(
            self.left_ids[order],
            self.right_ids[order],
            self.scores[order],
            self.stats,
        )

    def to_sparse(self, shape: tuple[int, int]) -> sparse.coo_matrix:
        """The result as a sparse |R| x |S| score matrix (Figure 6)."""
        return sparse.coo_matrix(
            (self.scores, (self.left_ids, self.right_ids)), shape=shape
        )

    def nbytes(self) -> int:
        """Memory footprint of the offset representation."""
        return int(
            self.left_ids.nbytes + self.right_ids.nbytes + self.scores.nbytes
        )

    # ------------------------------------------------------------------
    # Late materialization
    # ------------------------------------------------------------------
    def materialize(
        self,
        left: Table,
        right: Table,
        *,
        prefixes: tuple[str, str] = ("l_", "r_"),
        score_column: str = "similarity",
    ) -> Table:
        """Gather payload columns for the matched offsets.

        This is the late-materialization step: offsets are only exchanged
        for full tuples at the plan position that needs them.
        """
        if len(self.left_ids) and (
            self.left_ids.max() >= left.num_rows
            or self.right_ids.max() >= right.num_rows
        ):
            raise JoinError(
                "result offsets exceed input table sizes; wrong tables passed "
                "to materialize()"
            )
        out = left.take(self.left_ids).zip_columns(
            right.take(self.right_ids), prefixes=prefixes
        )
        from ..relational.column import Column
        from ..relational.schema import DataType, Field

        if score_column:
            out = out.with_column(
                Column(
                    Field(score_column, DataType.FLOAT32),
                    self.scores,
                )
            )
        return out

    def top_per_left(self) -> "JoinResult":
        """Keep only each left id's single best match (utility view)."""
        if len(self) == 0:
            return self
        order = np.lexsort((-self.scores, self.left_ids))
        left_sorted = self.left_ids[order]
        first = np.ones(len(order), dtype=bool)
        first[1:] = left_sorted[1:] != left_sorted[:-1]
        keep = order[first]
        return JoinResult(
            self.left_ids[keep], self.right_ids[keep], self.scores[keep], self.stats
        )
