"""Unified context-enhanced join entry point.

:func:`ejoin` dispatches a declarative E-join request to one of the
physical strategies this repo implements, or chooses automatically with the
cost model's access-path selector — the operator-level counterpart of the
paper's holistic optimization story.
"""

from __future__ import annotations

import numpy as np

from ..embedding.base import EmbeddingModel
from ..engine import ExecutionEngine
from ..errors import JoinError
from ..index.base import VectorIndex
from ..vector.kernels import Kernel
from .conditions import JoinCondition, TopKCondition, validate_condition
from .cost_model import CostParams, choose_access_path, choose_scan_precision
from .index_join import DEFAULT_PROBE_K, index_join
from .nlj import naive_nlj, prefetch_nlj
from .parallel import parallel_join
from .quantized_join import quantized_tensor_join
from .result import JoinResult
from .tensor_join import tensor_join

#: Valid strategy names for :func:`ejoin`.
STRATEGIES = (
    "auto",
    "naive-nlj",
    "nlj",
    "nlj-scalar",
    "tensor",
    "tensor-fp16",
    "tensor-int8",
    "tensor-pq",
    "parallel-tensor",
    "index",
)


def _resolve_vectors(side, model: EmbeddingModel | None) -> np.ndarray:
    if isinstance(side, np.ndarray):
        return np.asarray(side, dtype=np.float32)
    if model is None:
        raise JoinError("raw join inputs require an embedding model")
    return model.embed_batch(list(side))


def ejoin(
    left,
    right=None,
    condition: JoinCondition | None = None,
    *,
    model: EmbeddingModel | None = None,
    strategy: str = "auto",
    index: VectorIndex | None = None,
    allowed: np.ndarray | None = None,
    probe_k: int | None = None,
    n_threads: int | None = None,
    batch_left: int | None = None,
    batch_right: int | None = None,
    buffer_budget_bytes: int | None = None,
    cost_params: CostParams | None = None,
    selectivity_hint: float = 1.0,
    engine: ExecutionEngine | None = None,
) -> JoinResult:
    """Context-enhanced join of two relations over embeddings.

    Args:
        left: probe-side vectors ``(n, d)`` or raw items (needs ``model``).
        right: base-side vectors/items; may be ``None`` when ``index`` holds
            the base side.
        condition: :class:`ThresholdCondition` or :class:`TopKCondition`.
        model: embedding model for raw inputs (prefetch-embedded once,
            except under ``strategy="naive-nlj"`` which embeds per pair).
        strategy: one of ``auto | naive-nlj | nlj | nlj-scalar | tensor |
            parallel-tensor | index``.
        index: pre-built vector index over the right relation (enables the
            ``index`` strategy and informs ``auto``).
        allowed: pre-filter bitmap over right ids (index strategy).
        probe_k: retrieval depth when a threshold condition runs on an index.
        selectivity_hint: relational selectivity estimate for ``auto``'s
            access-path selection.
        engine: execution engine the physical operators schedule on; a
            multi-threaded engine parallelizes the scan strategies (and
            ``parallel-tensor`` builds one from ``n_threads`` when absent).

    Returns:
        :class:`JoinResult` of matched offset pairs and their similarities.
    """
    if condition is None:
        raise JoinError("a join condition is required")
    validate_condition(condition)
    if strategy not in STRATEGIES:
        raise JoinError(f"unknown strategy {strategy!r}; have {STRATEGIES}")
    if engine is not None and n_threads is not None:
        # Rejected up front so the error does not depend on which strategy
        # "auto" happens to select for this input size.
        raise JoinError(
            "pass either n_threads or a pre-configured engine, not both "
            "(the engine already fixes the worker count)"
        )

    if strategy == "auto":
        strategy = _auto_strategy(
            left,
            right,
            condition,
            model=model,
            index=index,
            probe_k=probe_k,
            cost_params=cost_params,
            selectivity_hint=selectivity_hint,
        )

    if strategy == "naive-nlj":
        if model is None:
            raise JoinError("naive-nlj joins raw items; an embedding model "
                            "is required")
        if right is None:
            raise JoinError("naive-nlj requires an explicit right input")
        return naive_nlj(list(left), list(right), model, condition)

    if strategy in ("nlj", "nlj-scalar"):
        if right is None:
            raise JoinError(f"{strategy} requires an explicit right input")
        kernel = Kernel.SCALAR if strategy == "nlj-scalar" else Kernel.VECTORIZED
        return prefetch_nlj(
            left, right, condition, model=model, kernel=kernel, engine=engine
        )

    if strategy == "tensor":
        if right is None:
            raise JoinError("tensor strategy requires an explicit right input")
        return tensor_join(
            left,
            right,
            condition,
            model=model,
            batch_left=batch_left,
            batch_right=batch_right,
            buffer_budget_bytes=buffer_budget_bytes,
            engine=engine,
        )

    if strategy == "tensor-fp16":
        if right is None:
            raise JoinError("tensor-fp16 requires an explicit right input")
        from .precision import tensor_join_fp16

        return tensor_join_fp16(
            left,
            right,
            condition,
            model=model,
            batch_left=batch_left,
            batch_right=batch_right,
            buffer_budget_bytes=buffer_budget_bytes,
            engine=engine,
        )

    if strategy in ("tensor-int8", "tensor-pq"):
        if right is None:
            raise JoinError(f"{strategy} requires an explicit right input")
        return quantized_tensor_join(
            left,
            right,
            condition,
            method=strategy.removeprefix("tensor-"),
            model=model,
            batch_left=batch_left,
            batch_right=batch_right,
            buffer_budget_bytes=buffer_budget_bytes,
            engine=engine,
        )

    if strategy == "parallel-tensor":
        if right is None:
            raise JoinError("parallel-tensor requires an explicit right input")
        left_v = _resolve_vectors(left, model)
        right_v = _resolve_vectors(right, model)
        return parallel_join(
            left_v,
            right_v,
            condition,
            strategy="tensor",
            n_threads=n_threads,
            batch_left=batch_left,
            batch_right=batch_right,
            buffer_budget_bytes=buffer_budget_bytes,
            engine=engine,
        )

    assert strategy == "index"
    if index is None:
        raise JoinError("index strategy requires a built vector index")
    return index_join(
        left,
        index,
        condition,
        model=model,
        allowed=allowed,
        probe_k=probe_k,
        engine=engine,
    )


def _auto_strategy(
    left,
    right,
    condition: JoinCondition,
    *,
    model: EmbeddingModel | None,
    index: VectorIndex | None,
    probe_k: int | None,
    cost_params: CostParams | None,
    selectivity_hint: float,
) -> str:
    """Cost-based physical strategy selection."""
    n_left = len(left)
    if index is not None:
        n_base = len(index)
        dim = index.dim
        if isinstance(condition, TopKCondition):
            k = condition.k
        else:
            k = DEFAULT_PROBE_K if probe_k is None else probe_k
        decision = choose_access_path(
            n_left,
            n_base,
            k,
            dim,
            selectivity=selectivity_hint,
            params=cost_params,
        )
        if decision.choice == "index":
            return "index"
    if right is None:
        # Only the index holds the base side; a scan is impossible.
        if index is None:
            raise JoinError("auto strategy needs either right input or index")
        return "index"
    # Scan path: the configured precision may substitute a reduced-
    # precision scan (fp16 storage, or quantized codes + exact re-rank)
    # for the fp32 tensor formulation.  Quantized substitution goes
    # through the same cost/recall gate the planner applies — including
    # the per-call fit/encode build, which ejoin cannot amortize — so a
    # join too small to pay for quantizer training stays on fp32.
    from ..config import get_config

    n_right = len(right)
    precision = get_config().default_precision
    if precision == "fp16":
        return "tensor-fp16"
    if precision in ("int8", "pq"):
        if isinstance(condition, TopKCondition):
            k = condition.k
        else:
            k = DEFAULT_PROBE_K if probe_k is None else probe_k
        dim = (
            right.shape[1]
            if isinstance(right, np.ndarray) and right.ndim == 2
            else get_config().default_dim
        )
        decision = choose_scan_precision(
            n_left, n_right, k, dim, params=cost_params, store_built=False
        )
        if decision.precision in ("int8", "pq"):
            return f"tensor-{decision.precision}"
    # Single-threaded tensor for small inputs, parallel beyond.
    if n_left * n_right >= 4_000_000 and isinstance(left, np.ndarray):
        return "parallel-tensor"
    return "tensor"
