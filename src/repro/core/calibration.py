"""Cost-model calibration from micro-measurements.

The paper (Section IV-A) requires the A/M/C factors to "be parametrized
based on their mutually normalized relative performance" of the target
system.  This module measures them on the running machine:

* ``A`` (access)  — per-tuple cost of streaming rows through a filter pass,
* ``M`` (model)   — per-item cost of the given embedding model,
* ``C`` (compute) — per-dimension cost of the row-at-a-time cosine kernel,
* GEMM efficiency — per-dimension GEMM cost relative to ``C``,
* probe hop cost  — per-distance-computation cost of an index probe.

The result is a :class:`~repro.core.cost_model.CostParams` normalized to
``A == 1`` that plugs straight into access-path selection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..embedding.base import EmbeddingModel
from ..errors import JoinError
from ..index.base import VectorIndex
from .conditions import ThresholdCondition
from .cost_model import CostParams
from .nlj import prefetch_nlj
from .tensor_join import tensor_join


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@dataclass
class CalibrationReport:
    """Raw per-unit timings (seconds) behind a calibrated CostParams."""

    access_per_tuple: float
    model_per_item: float
    nlj_per_dim_element: float
    gemm_per_dim_element: float
    probe_per_distance: float | None

    def to_params(self) -> CostParams:
        """Normalize to access == 1 (floors keep parameters positive)."""
        unit = max(self.access_per_tuple, 1e-12)

        def norm(value: float, floor: float = 1e-6) -> float:
            return max(value / unit, floor)

        gemm_eff = max(
            self.gemm_per_dim_element / max(self.nlj_per_dim_element, 1e-15),
            1e-3,
        )
        params = CostParams(
            access=1.0,
            model=norm(self.model_per_item),
            compute_per_dim=norm(self.nlj_per_dim_element),
            gemm_efficiency=min(gemm_eff, 1.0),
        )
        if self.probe_per_distance is not None:
            params.probe_hop = norm(self.probe_per_distance)
        params.validate()
        return params


def calibrate(
    model: EmbeddingModel,
    *,
    dim: int = 64,
    n_rows: int = 2_000,
    index: VectorIndex | None = None,
    seed: int = 17,
) -> CalibrationReport:
    """Measure A, M, C and (optionally) probe cost on this machine."""
    if n_rows < 64:
        raise JoinError(f"calibration needs >= 64 rows, got {n_rows}")
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n_rows, dim)).astype(np.float32)
    flags = rng.random(n_rows) < 0.5

    # A: one vectorized pass over a relational column.
    access_s = _time(lambda: [np.nonzero(flags)[0] for _ in range(50)]) / (
        50 * n_rows
    )

    # M: embedding cost per item.
    items = [f"calibration-token-{i}" for i in range(256)]
    model_s = _time(lambda: model.embed_batch(items)) / len(items)

    # C (row-at-a-time) and GEMM efficiency, per dim-element.
    cond = ThresholdCondition(0.999)
    n_small = min(n_rows, 512)
    block = data[:n_small]
    elements = n_small * n_small * dim
    nlj_s = _time(lambda: prefetch_nlj(block, block, cond)) / elements
    gemm_s = _time(lambda: tensor_join(block, block, cond)) / elements

    probe_s: float | None = None
    if index is not None and len(index) > 0:
        queries = rng.standard_normal((16, index.dim)).astype(np.float32)
        before = index.stats.distance_computations
        elapsed = _time(lambda: index.search_batch(queries, 8))
        distances = index.stats.distance_computations - before
        if distances > 0:
            probe_s = elapsed / distances

    return CalibrationReport(
        access_per_tuple=access_s,
        model_per_item=model_s,
        nlj_per_dim_element=nlj_s,
        gemm_per_dim_element=gemm_s,
        probe_per_distance=probe_s,
    )


def calibrated_params(model: EmbeddingModel, **kwargs) -> CostParams:
    """One-call convenience: calibrate and return normalized CostParams."""
    return calibrate(model, **kwargs).to_params()
