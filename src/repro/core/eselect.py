"""Context-enhanced selection: sigma_{E,mu,theta}(R) (Section III-C).

The selection counterpart of the E-join: given a relation of context-rich
items (or their embeddings) and a *query* item, return the tuples whose
similarity to the query satisfies theta.  Its cost is the paper's
E-Selection Cost equation, ``|R| * (A + M + C)`` — linear, with the model
term removable by prefetching exactly as in the join.

Both access paths are provided:

* :func:`eselect` — scan-based, exact, any condition;
* :func:`eselect_index` — probe-based, approximate, top-k-native.

The scan path runs as **prescreen + exact rescore**: a fast BLAS pass
produces approximate scores whose only job is to select a provable
candidate superset, and the emitted rows are then re-scored with the
shape-stable :func:`~repro.vector.kernels.stable_dot_scores` kernel.
Emitted ids and scores are therefore a pure function of the data and the
query — independent of how the scan was blocked or batched — which is
what lets the concurrent query service's cross-query shared scans return
bit-identical results to serial execution.
"""

from __future__ import annotations

import time

import numpy as np

from ..embedding.base import EmbeddingModel
from ..errors import DimensionalityError, JoinError
from ..index.base import VectorIndex
from ..vector.kernels import stable_dot_scores
from ..vector.norms import normalize_rows, normalize_vector
from ..vector.topk import top_k_indices
from .conditions import (
    JoinCondition,
    ThresholdCondition,
    TopKCondition,
    validate_condition,
)
from .nlj import _as_matrix
from .result import JoinStats

#: Margin subtracted from prescreen thresholds so float rounding in the
#: approximate BLAS pass can never exclude a row the exact kernel would
#: emit.  Dot products of unit vectors deviate from the exact value by
#: O(d * eps_fp32) ~ 1e-4 at d = 2048; 1e-3 is a safe bound for any
#: realistic embedding dimensionality.
PRESCREEN_MARGIN = 1e-3

#: Extra prescreen candidates retained beyond ``k`` for top-k conditions,
#: before the margin-widening pass proves the candidate set complete.
TOPK_PRESCREEN_PAD = 32


class SelectionResult:
    """Offsets + scores of tuples satisfying an E-selection."""

    def __init__(self, ids: np.ndarray, scores: np.ndarray, stats: JoinStats):
        self.ids = np.asarray(ids, dtype=np.int64)
        self.scores = np.asarray(scores, dtype=np.float32)
        if len(self.ids) != len(self.scores):
            raise JoinError(
                f"ragged selection result: {len(self.ids)} ids, "
                f"{len(self.scores)} scores"
            )
        self.stats = stats

    def __len__(self) -> int:
        return len(self.ids)


def _query_vector(query, model: EmbeddingModel | None, stats: JoinStats) -> np.ndarray:
    if isinstance(query, np.ndarray):
        if query.ndim != 1:
            raise DimensionalityError(
                f"query must be a 1-D vector, got ndim={query.ndim}"
            )
        return normalize_vector(np.asarray(query, dtype=np.float32))
    if model is None:
        raise JoinError("a raw query item requires an embedding model")
    stats.model_calls += 1
    # Unit-normalize unconditionally: downstream probes assume unit rows
    # (models normalize by default, but it is optional).
    return normalize_vector(model.embed(query))


def exact_threshold_select(
    normalized: np.ndarray,
    candidates: np.ndarray,
    qvec: np.ndarray,
    threshold: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact threshold selection over a prescreened candidate superset.

    ``candidates`` must contain every row whose *exact* score could reach
    ``threshold`` (guaranteed when they were selected with approximate
    score >= ``threshold - PRESCREEN_MARGIN``).  Returns ``(ids, scores)``
    in ascending-id order with shape-stable exact scores — identical for
    any candidate superset, so serial and coalesced scans agree bitwise.
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    exact = stable_dot_scores(normalized[candidates], qvec)
    keep = exact >= threshold
    return candidates[keep], exact[keep]


def exact_topk_select(
    normalized: np.ndarray,
    candidates: np.ndarray,
    qvec: np.ndarray,
    k: int,
    *,
    min_similarity: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-k selection over a prescreened candidate superset.

    ``candidates`` must contain every row whose exact score ties or beats
    the true k-th best.  Selection is by (exact score descending, id
    ascending) — :func:`top_k_indices` semantics — so any valid superset
    yields the same ids and scores.
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    exact = stable_dot_scores(normalized[candidates], qvec)
    order = np.lexsort((candidates, -exact))[: min(k, len(candidates))]
    ids, scores = candidates[order], exact[order]
    if min_similarity is not None:
        keep = scores >= min_similarity
        ids, scores = ids[keep], scores[keep]
    return ids, scores


def eselect(
    relation,
    query,
    condition: JoinCondition,
    *,
    model: EmbeddingModel | None = None,
    assume_normalized: bool = False,
) -> SelectionResult:
    """Scan-based E-selection: exact, expression-flexible.

    Args:
        relation: ``(n, d)`` embeddings or raw items (prefetch-embedded).
        query: a query vector or raw item.
        condition: threshold (``cos >= t``) or top-k condition.
        assume_normalized: skip row normalization when the relation is
            already unit-normalized (e.g. a context-cached normalized
            matrix shared across queries).
    """
    validate_condition(condition)
    stats = JoinStats(strategy="eselect/scan")
    start = time.perf_counter()
    matrix = _as_matrix(relation, model, stats)
    stats.n_left = len(matrix)
    qvec = _query_vector(query, model, stats)
    if matrix.shape[1] != qvec.shape[0]:
        raise DimensionalityError(
            f"relation dim {matrix.shape[1]} != query dim {qvec.shape[0]}"
        )
    normalized = matrix if assume_normalized else normalize_rows(matrix)
    approx = normalized @ qvec
    stats.similarity_evaluations = len(approx)

    if isinstance(condition, ThresholdCondition):
        candidates = np.nonzero(
            approx >= condition.threshold - PRESCREEN_MARGIN
        )[0]
        ids, scores = exact_threshold_select(
            normalized, candidates, qvec, condition.threshold
        )
    else:
        assert isinstance(condition, TopKCondition)
        n = len(approx)
        kpad = min(n, condition.k + TOPK_PRESCREEN_PAD)
        candidates = top_k_indices(approx, kpad)
        if kpad < n and len(candidates):
            # Widen to a provable superset: any row whose exact score can
            # tie or beat the running k-th best has approximate score
            # within the margin of it.
            exact_cand = stable_dot_scores(normalized[candidates], qvec)
            kth = np.sort(exact_cand)[::-1][min(condition.k, len(exact_cand)) - 1]
            candidates = np.nonzero(approx >= kth - PRESCREEN_MARGIN)[0]
        ids, scores = exact_topk_select(
            normalized,
            candidates,
            qvec,
            condition.k,
            min_similarity=condition.min_similarity,
        )
    stats.seconds = time.perf_counter() - start
    stats.pairs_emitted = len(ids)
    return SelectionResult(ids, scores, stats)


def eselect_index(
    index: VectorIndex,
    query,
    condition: JoinCondition,
    *,
    model: EmbeddingModel | None = None,
    allowed: np.ndarray | None = None,
    probe_k: int = 32,
) -> SelectionResult:
    """Probe-based E-selection against a built vector index.

    Threshold conditions are emulated via top-``probe_k`` retrieval plus a
    post-filter — the same build-time-distance limitation as the index join.
    """
    validate_condition(condition)
    if probe_k < 1:
        raise JoinError(f"probe_k must be >= 1, got {probe_k}")
    stats = JoinStats(strategy=f"eselect/{type(index).__name__.lower()}")
    start = time.perf_counter()
    stats.n_left = len(index)
    qvec = _query_vector(query, model, stats)
    if qvec.shape[0] != index.dim:
        raise DimensionalityError(
            f"query dim {qvec.shape[0]} != index dim {index.dim}"
        )
    if isinstance(condition, TopKCondition):
        k, post = condition.k, condition.min_similarity
    else:
        assert isinstance(condition, ThresholdCondition)
        k, post = probe_k, condition.threshold
    found = index.search(qvec, k, allowed=allowed, assume_normalized=True)
    ids, scores = found.ids, found.scores
    if post is not None:
        keep = scores >= post
        ids, scores = ids[keep], scores[keep]
    stats.seconds = time.perf_counter() - start
    stats.pairs_emitted = len(ids)
    return SelectionResult(ids, scores, stats)
