"""Context-enhanced selection: sigma_{E,mu,theta}(R) (Section III-C).

The selection counterpart of the E-join: given a relation of context-rich
items (or their embeddings) and a *query* item, return the tuples whose
similarity to the query satisfies theta.  Its cost is the paper's
E-Selection Cost equation, ``|R| * (A + M + C)`` — linear, with the model
term removable by prefetching exactly as in the join.

Both access paths are provided:

* :func:`eselect` — scan-based, exact, any condition;
* :func:`eselect_index` — probe-based, approximate, top-k-native.
"""

from __future__ import annotations

import time

import numpy as np

from ..embedding.base import EmbeddingModel
from ..errors import DimensionalityError, JoinError
from ..index.base import VectorIndex
from ..vector.norms import normalize_rows, normalize_vector
from ..vector.topk import top_k_indices
from .conditions import (
    JoinCondition,
    ThresholdCondition,
    TopKCondition,
    validate_condition,
)
from .nlj import _as_matrix
from .result import JoinStats


class SelectionResult:
    """Offsets + scores of tuples satisfying an E-selection."""

    def __init__(self, ids: np.ndarray, scores: np.ndarray, stats: JoinStats):
        self.ids = np.asarray(ids, dtype=np.int64)
        self.scores = np.asarray(scores, dtype=np.float32)
        if len(self.ids) != len(self.scores):
            raise JoinError(
                f"ragged selection result: {len(self.ids)} ids, "
                f"{len(self.scores)} scores"
            )
        self.stats = stats

    def __len__(self) -> int:
        return len(self.ids)


def _query_vector(query, model: EmbeddingModel | None, stats: JoinStats) -> np.ndarray:
    if isinstance(query, np.ndarray):
        if query.ndim != 1:
            raise DimensionalityError(
                f"query must be a 1-D vector, got ndim={query.ndim}"
            )
        return normalize_vector(np.asarray(query, dtype=np.float32))
    if model is None:
        raise JoinError("a raw query item requires an embedding model")
    stats.model_calls += 1
    # Unit-normalize unconditionally: downstream probes assume unit rows
    # (models normalize by default, but it is optional).
    return normalize_vector(model.embed(query))


def eselect(
    relation,
    query,
    condition: JoinCondition,
    *,
    model: EmbeddingModel | None = None,
) -> SelectionResult:
    """Scan-based E-selection: exact, expression-flexible.

    Args:
        relation: ``(n, d)`` embeddings or raw items (prefetch-embedded).
        query: a query vector or raw item.
        condition: threshold (``cos >= t``) or top-k condition.
    """
    validate_condition(condition)
    stats = JoinStats(strategy="eselect/scan")
    start = time.perf_counter()
    matrix = _as_matrix(relation, model, stats)
    stats.n_left = len(matrix)
    qvec = _query_vector(query, model, stats)
    if matrix.shape[1] != qvec.shape[0]:
        raise DimensionalityError(
            f"relation dim {matrix.shape[1]} != query dim {qvec.shape[0]}"
        )
    scores = normalize_rows(matrix) @ qvec
    stats.similarity_evaluations = len(scores)

    if isinstance(condition, ThresholdCondition):
        ids = np.nonzero(scores >= condition.threshold)[0]
    else:
        assert isinstance(condition, TopKCondition)
        ids = top_k_indices(scores, condition.k)
        if condition.min_similarity is not None:
            ids = ids[scores[ids] >= condition.min_similarity]
    stats.seconds = time.perf_counter() - start
    stats.pairs_emitted = len(ids)
    return SelectionResult(ids, scores[ids], stats)


def eselect_index(
    index: VectorIndex,
    query,
    condition: JoinCondition,
    *,
    model: EmbeddingModel | None = None,
    allowed: np.ndarray | None = None,
    probe_k: int = 32,
) -> SelectionResult:
    """Probe-based E-selection against a built vector index.

    Threshold conditions are emulated via top-``probe_k`` retrieval plus a
    post-filter — the same build-time-distance limitation as the index join.
    """
    validate_condition(condition)
    if probe_k < 1:
        raise JoinError(f"probe_k must be >= 1, got {probe_k}")
    stats = JoinStats(strategy=f"eselect/{type(index).__name__.lower()}")
    start = time.perf_counter()
    stats.n_left = len(index)
    qvec = _query_vector(query, model, stats)
    if qvec.shape[0] != index.dim:
        raise DimensionalityError(
            f"query dim {qvec.shape[0]} != index dim {index.dim}"
        )
    if isinstance(condition, TopKCondition):
        k, post = condition.k, condition.min_similarity
    else:
        assert isinstance(condition, ThresholdCondition)
        k, post = probe_k, condition.threshold
    found = index.search(qvec, k, allowed=allowed, assume_normalized=True)
    ids, scores = found.ids, found.scores
    if post is not None:
        keep = scores >= post
        ids, scores = ids[keep], scores[keep]
    stats.seconds = time.perf_counter() - start
    stats.pairs_emitted = len(ids)
    return SelectionResult(ids, scores, stats)
