"""Quantized tensor join: compressed code scan plus exact fp32 re-rank.

The paper's precision ablation (Section V-A-2) stops at fp16; this module
carries the operand-byte lever to int8 scalar quantization and product
quantization.  The join becomes a two-phase scan:

1. **Approximate pass** — the right relation is scanned as codes
   (``dim`` bytes/row for int8, ``m`` bytes/row for PQ) block by block
   under the Figure 7 buffer budget.  Scores come from the quantizer's
   asymmetric kernel (a BLAS GEMM over casted codes, or an ADC sparse
   product), and candidates survive a running score threshold instead of
   an exact per-block top-k merge — one SIMD compare per cell instead of a
   partition sort.
2. **Exact re-rank** — each left row's best ``multiple * k`` approximate
   candidates (or, for threshold joins, everything above
   ``threshold - error_bound``) are re-scored against the stored fp32
   rows, so the emitted scores are exact and threshold results provably
   contain every true match (the quantizer's error bound makes the
   approximate filter sound).

Left blocks are independent tasks, so a multi-threaded
:class:`~repro.engine.ExecutionEngine` schedules them exactly like the
fp32 tensor join, with the budget split across concurrently resident
blocks and each block's candidate pool bounded by a compress-on-overflow
cap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from ..config import get_config
from ..embedding.base import EmbeddingModel
from ..engine import BatchPolicy, ExecutionEngine
from ..errors import DimensionalityError, JoinError
from ..vector.norms import normalize_rows
from ..vector.quant import Int8Quantizer, ProductQuantizer, VectorQuantizer
from .conditions import (
    JoinCondition,
    ThresholdCondition,
    TopKCondition,
    validate_condition,
)
from .nlj import _as_matrix
from .result import JoinResult, JoinStats

#: Quantization methods the join understands.
QUANT_METHODS = ("int8", "pq")

#: Candidate-pool overflow factor: a block compresses its pool back to
#: ``multiple * k`` per row once it exceeds this many times that size.
POOL_FACTOR = 4

#: Bytes per pooled candidate triple (int32 row, int64 right id, fp32 score).
CANDIDATE_BYTES = 16

#: Upper bound on transient gather bytes during the exact re-rank.
_RERANK_CHUNK_BYTES = 4 << 20

#: Left-block edge cap under a budget: wide right blocks amortize the
#: per-block code cast and per-group selection overheads.
_QUANT_LEFT_EDGE = 512


def _default_quantizer(method: str, dim: int, **params) -> VectorQuantizer:
    if method == "int8":
        return Int8Quantizer(dim)
    if method == "pq":
        return ProductQuantizer(dim, **params)
    raise JoinError(f"unknown quantization method {method!r}; have {QUANT_METHODS}")


@dataclass
class QuantizedRelation:
    """A relation stored as quantizer codes plus fp32 rows for re-ranking.

    The codes are what the approximate scan streams (the compressed access
    path); the unit-normalized fp32 rows are touched only for the sparse
    set of re-rank candidates — the same storage split FAISS's refine
    wrappers use.
    """

    quantizer: VectorQuantizer
    codes: np.ndarray
    vectors: np.ndarray
    method: str
    build_seconds: float = 0.0
    onehot: sparse.csr_matrix | None = field(default=None, repr=False)
    #: Cache-invalidation fingerprint of the source data, set by owners
    #: that reuse stores across queries (the physical planner).
    source_token: tuple | None = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.vectors)

    @property
    def dim(self) -> int:
        return self.quantizer.dim

    @property
    def code_bytes(self) -> int:
        """Bytes the approximate scan streams."""
        total = int(self.codes.nbytes)
        if self.onehot is not None:
            # CSR column indices are part of the scanned representation.
            total += int(self.onehot.indices.nbytes)
        return total

    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        method: str = "int8",
        *,
        quantizer: VectorQuantizer | None = None,
        assume_normalized: bool = False,
        **params,
    ) -> "QuantizedRelation":
        """Fit (unless a fitted quantizer is supplied), encode, and index."""
        start = time.perf_counter()
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2:
            raise DimensionalityError(
                f"expected (n, d) vectors, got shape {vectors.shape}"
            )
        if method not in QUANT_METHODS:
            raise JoinError(
                f"unknown quantization method {method!r}; have {QUANT_METHODS}"
            )
        normalized = vectors if assume_normalized else normalize_rows(vectors)
        if quantizer is None:
            quantizer = _default_quantizer(method, vectors.shape[1], **params)
        freshly_fitted = not quantizer.fitted
        if freshly_fitted:
            quantizer.fit(normalized)
        if isinstance(quantizer, ProductQuantizer) and freshly_fitted:
            # fit() already tracked residuals over exactly these rows; skip
            # the second full decode pass.
            codes = quantizer.encode(normalized, _track=False)
        else:
            codes = quantizer.encode(normalized)
        onehot = (
            quantizer.onehot(codes)
            if isinstance(quantizer, ProductQuantizer)
            else None
        )
        return cls(
            quantizer=quantizer,
            codes=codes,
            vectors=normalized,
            method=method,
            build_seconds=time.perf_counter() - start,
            onehot=onehot,
        )

    # ------------------------------------------------------------------
    # Scan kernels
    # ------------------------------------------------------------------
    def prepare_queries(self, queries: np.ndarray):
        """Method-specific per-left-block query expansion."""
        if self.method == "int8":
            assert isinstance(self.quantizer, Int8Quantizer)
            return self.quantizer.prepare_queries(queries)
        assert isinstance(self.quantizer, ProductQuantizer)
        # (m * ks, n_queries): the orientation the CSR product consumes.
        return np.ascontiguousarray(self.quantizer.lookup_tables(queries).T)

    def query_bias(self, prepared) -> np.ndarray | None:
        """Per-query constant omitted from scan scores (int8 affine term).

        Scan scores are shifted by this per-row constant relative to
        ``q . decode(code)``; within-row ranking is unaffected, and
        per-row cut-offs subtract it back.
        """
        if self.method == "int8":
            return prepared[1]
        return None

    def scores_block(
        self, prepared, r0: int, r1: int
    ) -> tuple[np.ndarray, bool]:
        """Biasless approximate scores for right rows ``[r0, r1)``.

        Returns ``(scores, transposed)``: int8 yields ``(n_queries, br)``
        via one GEMM over the casted code block; PQ yields ``(br,
        n_queries)`` via the one-hot CSR slice (row slicing a CSR matrix
        is O(nnz of the slice)) so no transpose copy is paid per block.
        """
        if self.method == "int8":
            assert isinstance(self.quantizer, Int8Quantizer)
            return (
                self.quantizer.scores_block(
                    prepared, self.codes[r0:r1], include_bias=False
                ),
                False,
            )
        assert self.onehot is not None
        return np.asarray(self.onehot[r0:r1] @ prepared), True

    def scores_rows(self, prepared, rows: np.ndarray) -> np.ndarray:
        """Biasless approximate scores for an arbitrary row subset.

        Always ``(n_queries, len(rows))`` — used by the strided gate
        sample, which is small enough that a transpose copy is free.
        """
        if self.method == "int8":
            assert isinstance(self.quantizer, Int8Quantizer)
            return self.quantizer.scores_block(
                prepared, self.codes[rows], include_bias=False
            )
        assert self.onehot is not None
        return np.asarray((self.onehot[rows] @ prepared)).T


    def reserve_bytes_per_query(self, candidates_per_row: int) -> int:
        """Per-left-row candidate state the buffer budget must also cover.

        Mirrors the fp32 join's budget semantics: the budget covers the
        dense score intermediate plus the per-row merge state (there the
        streaming top-k heap, here the candidate pool); operand blocks
        (query rows, code blocks, PQ lookup tables) are not charged on
        either side.
        """
        return 2 * candidates_per_row * CANDIDATE_BYTES


@dataclass
class _QuantBlockPart:
    """One left block's re-ranked matches plus its counters."""

    left_ids: np.ndarray
    right_ids: np.ndarray
    scores: np.ndarray
    similarity_evaluations: int = 0
    batch_invocations: int = 0
    peak_intermediate_bytes: int = 0
    rerank_candidates: int = 0


def _empty_part() -> _QuantBlockPart:
    return _QuantBlockPart(
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.float32),
    )


def _rank_within_rows(
    li: np.ndarray, sc: np.ndarray, ri: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sort triples by (row, score desc, right id); return order and rank.

    ``rank[i]`` is the position of the i-th *sorted* triple within its
    row — the vectorized core of both pool compression and final top-k.
    """
    order = np.lexsort((ri, -sc, li))
    li_s = li[order]
    starts = np.flatnonzero(np.r_[True, li_s[1:] != li_s[:-1]])
    lengths = np.diff(np.r_[starts, len(li_s)])
    rank = np.arange(len(li_s)) - np.repeat(starts, lengths)
    return order, rank


def _exact_scores(
    lb: np.ndarray,
    li: np.ndarray,
    right_vectors: np.ndarray,
    ri: np.ndarray,
) -> np.ndarray:
    """Exact fp32 dots for candidate pairs, gathered in bounded chunks."""
    out = np.empty(len(li), dtype=np.float32)
    chunk = max(256, _RERANK_CHUNK_BYTES // (8 * max(lb.shape[1], 1)))
    for c0 in range(0, len(li), chunk):
        c1 = min(c0 + chunk, len(li))
        out[c0:c1] = np.einsum(
            "ij,ij->i", lb[li[c0:c1]], right_vectors[ri[c0:c1]]
        )
    return out


def _select_above(
    block: np.ndarray,
    transposed: bool,
    cuts: np.ndarray | float,
    r0: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Prescreen one score block against per-query (or scalar) cut-offs.

    One broadcast SIMD compare plus a flat index scan; only the sparse
    survivors are gathered.  ``cuts`` broadcasts along the query axis —
    rows when ``transposed`` is false, columns otherwise.
    """
    if isinstance(cuts, np.ndarray):
        mask = block >= (cuts[None, :] if transposed else cuts[:, None])
    else:
        mask = block >= cuts
    flat = np.flatnonzero(mask)
    w = block.shape[1]
    rows = (flat // w).astype(np.int32)
    cols = (flat % w).astype(np.int32)
    sc = block[rows, cols]
    if transposed:
        li, ri = cols, rows + np.int32(r0)
    else:
        li, ri = rows, cols + np.int32(r0)
    return li, ri, sc


class _CandidatePool:
    """Bounded per-block candidate accumulator with compress-on-overflow.

    ``tau_rows`` holds each query row's admission gate: the scan compares
    whole score blocks against it in one broadcast pass, and compression
    tightens it as better candidates accumulate.
    """

    def __init__(self, n_rows: int, per_row: int) -> None:
        self.n_rows = n_rows
        self.per_row = per_row
        self.cap = max(POOL_FACTOR * n_rows * per_row, 4096)
        self._li: list[np.ndarray] = []
        self._ri: list[np.ndarray] = []
        self._sc: list[np.ndarray] = []
        self.size = 0
        self.tau_rows = np.full(n_rows, -np.inf, dtype=np.float32)

    def append(self, li: np.ndarray, ri: np.ndarray, sc: np.ndarray) -> None:
        if len(li) == 0:
            return
        self._li.append(li)
        self._ri.append(ri)
        self._sc.append(np.asarray(sc, dtype=np.float32))
        self.size += len(li)
        if self.size > self.cap:
            self.compress()

    def triples(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if not self._li:
            return (
                np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float32),
            )
        return (
            np.concatenate(self._li),
            np.concatenate(self._ri),
            np.concatenate(self._sc),
        )

    def compress(self) -> None:
        """Keep each row's best ``per_row`` candidates; tighten the gates."""
        li, ri, sc = self.triples()
        order, rank = _rank_within_rows(li, sc, ri)
        keep = order[rank < self.per_row]
        li, ri, sc = li[keep], ri[keep], sc[keep]
        self._li, self._ri, self._sc = [li], [ri], [sc]
        self.size = len(li)
        # A row's gate may only rise once it retains a full complement:
        # rows with fewer candidates must keep admitting everything.
        counts = np.bincount(li, minlength=self.n_rows)
        full = counts >= self.per_row
        if full.any():
            kth = np.full(self.n_rows, np.inf, dtype=np.float32)
            np.minimum.at(kth, li, sc)
            self.tau_rows[full] = np.maximum(self.tau_rows[full], kth[full])

    def nbytes(self) -> int:
        return self.size * CANDIDATE_BYTES


#: Gate sample safety factor: gates target rank ``GATE_SLACK * ck`` in the
#: full relation, so sampling noise almost never tightens a gate past a
#: row's true candidate set.
GATE_SLACK = 3

#: Sample rank the gate estimate sits at.  Order-statistic rank estimates
#: concentrate like ``1/sqrt(rank)``, so rank ~6 keeps a gate's effective
#: overall rank within roughly [ck, 6 * ck] — far above the top-k region.
GATE_SAMPLE_RANK = 6


def _sample_gates(
    store: QuantizedRelation,
    prepared,
    ck: int,
    chunk_width: int,
) -> np.ndarray | None:
    """Estimate per-row admission gates from a strided row sample.

    The ``r``-th best score within a stride-``n/s`` sample estimates the
    ``r * n / s``-th best overall; the sample is sized so the target rank
    ``GATE_SLACK * ck`` maps to sample rank :data:`GATE_SAMPLE_RANK`,
    keeping the gates statistically looser than each row's true
    ``ck``-th candidate — the subsequent full scan still admits (a
    superset of) the top-``ck`` while skipping the non-candidate bulk.
    The sample streams in budget-sized chunks, folding a per-row top-r
    running state.  Returns ``None`` when no informative sample exists
    (e.g. the exact-join degenerate case ``ck >= n_right / GATE_SLACK``)
    — the scan then admits everything.
    """
    n_right = len(store)
    target = max(GATE_SLACK * ck, 1)
    s = int(min(n_right, -(-GATE_SAMPLE_RANK * n_right // target)))
    r = int(round(target * s / n_right))
    if r < 1 or r >= s:
        return None
    rows = (np.arange(s, dtype=np.int64) * n_right) // s
    chunk = max(chunk_width, r + 1)
    running: np.ndarray | None = None
    for c0 in range(0, s, chunk):
        sub = store.scores_rows(prepared, rows[c0 : c0 + chunk])
        merged = (
            sub if running is None else np.concatenate([running, sub], axis=1)
        )
        w = merged.shape[1]
        if w > r:
            merged = np.partition(merged, w - r, axis=1)[:, w - r :]
        running = merged
    if running is None or running.shape[1] < r:
        return None
    # The running state holds each row's r best sample scores; its row
    # minimum is the r-th best.
    return running.min(axis=1).astype(np.float32)


def _quant_topk_block(
    lb: np.ndarray,
    l0: int,
    store: QuantizedRelation,
    condition: TopKCondition,
    br: int,
    ck: int,
) -> _QuantBlockPart:
    n_lb = lb.shape[0]
    n_right = len(store)
    part = _empty_part()
    prepared = store.prepare_queries(lb)
    pool = _CandidatePool(n_lb, ck)
    gates = _sample_gates(store, prepared, ck, br)
    if gates is not None:
        pool.tau_rows = gates
    for r0 in range(0, n_right, br):
        r1 = min(r0 + br, n_right)
        block, transposed = store.scores_block(prepared, r0, r1)
        part.batch_invocations += 1
        part.similarity_evaluations += block.size
        part.peak_intermediate_bytes = max(
            part.peak_intermediate_bytes, block.nbytes + pool.nbytes()
        )
        # Gates tighten between blocks as the pool compresses.
        li, ri, sc = _select_above(block, transposed, pool.tau_rows, r0)
        pool.append(li, ri, sc)
    pool.compress()
    li, ri, _ = pool.triples()
    li = li.astype(np.int64)
    exact = _exact_scores(lb, li, store.vectors, ri)
    part.rerank_candidates = len(exact)
    part.similarity_evaluations += len(exact)
    order, rank = _rank_within_rows(li, exact, ri)
    keep = order[rank < condition.k]
    li, ri, exact = li[keep], ri[keep], exact[keep]
    if condition.min_similarity is not None:
        mask = exact >= condition.min_similarity
        li, ri, exact = li[mask], ri[mask], exact[mask]
    part.left_ids = li + l0
    part.right_ids = ri.astype(np.int64)
    part.scores = exact.astype(np.float32)
    return part


def _quant_threshold_block(
    lb: np.ndarray,
    l0: int,
    store: QuantizedRelation,
    condition: ThresholdCondition,
    br: int,
    margin: float,
) -> _QuantBlockPart:
    n_right = len(store)
    part = _empty_part()
    prepared = store.prepare_queries(lb)
    # Scan scores omit the per-query bias, so the sound cut-off
    # ``threshold - margin`` shifts per row; the scalar prescreen uses the
    # loosest row's cut and the per-row stage refines the survivors.
    bias = store.query_bias(prepared)
    cut_rows = np.full(lb.shape[0], condition.threshold - margin, np.float32)
    if bias is not None:
        cut_rows = cut_rows - bias
    out_l: list[np.ndarray] = []
    out_r: list[np.ndarray] = []
    pooled = 0
    for r0 in range(0, n_right, br):
        r1 = min(r0 + br, n_right)
        block, transposed = store.scores_block(prepared, r0, r1)
        part.batch_invocations += 1
        part.similarity_evaluations += block.size
        # The margin makes the prescreen sound: any pair whose exact score
        # reaches the threshold has an approximate score above its cut.
        li, ri, _ = _select_above(block, transposed, cut_rows, r0)
        part.peak_intermediate_bytes = max(
            part.peak_intermediate_bytes,
            block.nbytes + (pooled + len(li)) * CANDIDATE_BYTES,
        )
        if len(li):
            out_l.append(li)
            out_r.append(ri)
            pooled += len(li)
    if not out_l:
        return part
    li = np.concatenate(out_l)
    ri = np.concatenate(out_r).astype(np.int64)
    exact = _exact_scores(lb, li, store.vectors, ri)
    part.rerank_candidates = len(exact)
    part.similarity_evaluations += len(exact)
    mask = exact >= condition.threshold
    li, ri, exact = li[mask], ri[mask], exact[mask]
    order = np.lexsort((ri, li))
    part.left_ids = li[order].astype(np.int64) + l0
    part.right_ids = ri[order]
    part.scores = exact[order].astype(np.float32)
    return part


def quantized_tensor_join(
    left,
    right,
    condition: JoinCondition,
    *,
    method: str | None = None,
    model: EmbeddingModel | None = None,
    rerank_multiple: int | None = None,
    batch_left: int | None = None,
    batch_right: int | None = None,
    buffer_budget_bytes: int | None = None,
    engine: ExecutionEngine | None = None,
    policy: BatchPolicy | None = None,
    quantizer: VectorQuantizer | None = None,
) -> JoinResult:
    """Quantized-code scan E-join with exact fp32 re-ranking.

    Args:
        left: ``(n, d)`` probe vectors or raw items with ``model``.
        right: ``(n, d)`` base vectors/items, or a pre-built
            :class:`QuantizedRelation` (so repeated joins amortize the
            fit/encode build exactly like an index build).
        condition: threshold or top-k join condition.
        method: ``"int8"`` or ``"pq"``; defaults to the configured
            ``default_precision`` when that is quantized, else ``"int8"``.
            Ignored (taken from the store) when ``right`` is pre-built.
        rerank_multiple: top-k candidate multiple — each left row re-ranks
            its best ``multiple * k`` approximate candidates in fp32.
            ``multiple * k >= |S|`` degenerates to the exact join.
        buffer_budget_bytes: Figure 7 budget covering the approximate
            score block, the per-row candidate pool (and PQ lookup
            tables); split across workers under a multi-threaded engine.

    Returns:
        :class:`JoinResult` with **exact** fp32 scores for every emitted
        pair.  Threshold joins contain every true match (the quantizer
        error bound makes the prescreen sound); top-k joins may miss a
        true neighbour only when it falls outside the candidate multiple.
    """
    validate_condition(condition)
    config = get_config()
    if isinstance(right, QuantizedRelation):
        store = right
        if method is not None and method != store.method:
            raise JoinError(
                f"method {method!r} conflicts with pre-built "
                f"{store.method!r} store"
            )
        method = store.method
    else:
        if method is None:
            method = (
                config.default_precision
                if config.default_precision in QUANT_METHODS
                else "int8"
            )
        store = None
    if method not in QUANT_METHODS:
        raise JoinError(
            f"unknown quantization method {method!r}; have {QUANT_METHODS}"
        )
    if rerank_multiple is None:
        rerank_multiple = config.default_rerank_multiple
    if rerank_multiple < 1:
        raise JoinError(f"rerank_multiple must be >= 1, got {rerank_multiple}")

    stats = JoinStats(strategy=f"tensor-{method}")
    start = time.perf_counter()
    left_m = _as_matrix(left, model, stats)
    if store is None:
        right_m = _as_matrix(right, model, stats)
        if left_m.shape[1] != right_m.shape[1]:
            raise DimensionalityError(
                f"dimensionality mismatch: {left_m.shape[1]} vs "
                f"{right_m.shape[1]}"
            )
        if right_m.shape[0] and right_m.shape[1]:
            store = QuantizedRelation.build(
                right_m, method, quantizer=quantizer
            )
            stats.extra["build_seconds"] = store.build_seconds
        n_right = right_m.shape[0]
    else:
        n_right = len(store)
    if left_m.shape[1] and store is not None and left_m.shape[1] != store.dim:
        raise DimensionalityError(
            f"dimensionality mismatch: {left_m.shape[1]} vs {store.dim}"
        )
    stats.n_left, stats.n_right = len(left_m), n_right
    if stats.n_left == 0 or stats.n_right == 0 or store is None:
        stats.seconds = time.perf_counter() - start
        return JoinResult.empty(stats)

    left_n = normalize_rows(left_m)
    stats.extra["bytes_per_code"] = store.quantizer.bytes_per_code
    stats.extra["operand_bytes"] = int(left_n.nbytes) + store.code_bytes

    if isinstance(condition, TopKCondition):
        ck = min(rerank_multiple * condition.k, n_right)
        margin = 0.0
    else:
        assert isinstance(condition, ThresholdCondition)
        ck = 0
        margin = store.quantizer.score_error_bound()
    stats.extra["candidate_multiple"] = rerank_multiple

    reserve = store.reserve_bytes_per_query(ck)
    if engine is not None:
        policy = engine.policy
    elif policy is None:
        policy = BatchPolicy(
            buffer_budget_bytes=config.default_buffer_budget_bytes
        )
    full_budget = (
        policy.buffer_budget_bytes
        if buffer_budget_bytes is None
        else buffer_budget_bytes
    )

    def _resolve(share: int) -> tuple[int, int]:
        eff = None if full_budget is None else max(full_budget // share, 1)
        bl_explicit = batch_left
        if bl_explicit is None and eff is not None:
            # Two self-imposed caps: spend at most half the budget on
            # per-row scan state (PQ LUT rows are large), and keep left
            # blocks moderate so right blocks grow wide — code-cast and
            # per-group selection overheads amortize over block width.
            cap = eff // (2 * reserve) if reserve > 4 else stats.n_left
            bl_explicit = max(
                1, min(stats.n_left, cap, _QUANT_LEFT_EDGE)
            )
        bl, br = policy.resolve(
            stats.n_left,
            stats.n_right,
            left_n.shape[1],
            batch_left=bl_explicit,
            batch_right=batch_right,
            buffer_budget_bytes=eff,
            reserve_bytes_per_left_row=reserve,
        )
        if (
            engine is not None
            and engine.n_threads > 1
            and batch_left is None
            and bl >= stats.n_left
        ):
            morsels = engine.morsels_for(stats.n_left)
            if len(morsels) > 1:
                bl = max(len(m) for m in morsels)
        return bl, br

    if engine is not None and engine.n_threads > 1:
        share = 1
        for _ in range(8):
            bl, br = _resolve(share)
            blocks = -(-stats.n_left // bl)
            new_share = min(engine.n_threads, blocks)
            if new_share <= share:
                break
            share = new_share
        else:
            bl, br = _resolve(engine.n_threads)
    else:
        bl, br = _resolve(1)
    stats.peak_buffer_elements = bl * br
    stats.extra["batch_shape"] = (bl, br)

    bounds = [
        (l0, min(l0 + bl, stats.n_left))
        for l0 in range(0, stats.n_left, bl)
    ]

    def block_task(span: tuple[int, int]) -> _QuantBlockPart:
        l0, l1 = span
        if isinstance(condition, TopKCondition):
            return _quant_topk_block(
                left_n[l0:l1], l0, store, condition, br, ck
            )
        assert isinstance(condition, ThresholdCondition)
        return _quant_threshold_block(
            left_n[l0:l1], l0, store, condition, br, margin
        )

    if engine is None or engine.n_threads == 1 or len(bounds) == 1:
        parts = [block_task(span) for span in bounds]
    else:
        parts = engine.run(
            [lambda span=span: block_task(span) for span in bounds]
        )

    rerank_total = 0
    for part in parts:
        stats.similarity_evaluations += part.similarity_evaluations
        stats.batch_invocations += part.batch_invocations
        rerank_total += part.rerank_candidates
        stats.extra["peak_intermediate_bytes"] = max(
            stats.extra.get("peak_intermediate_bytes", 0),
            part.peak_intermediate_bytes,
        )
    stats.extra["rerank_candidates"] = rerank_total
    populated = [p for p in parts if len(p.left_ids)]
    if not populated:
        result = JoinResult.empty(stats)
    else:
        result = JoinResult(
            np.concatenate([p.left_ids for p in populated]),
            np.concatenate([p.right_ids for p in populated]),
            np.concatenate([p.scores for p in populated]),
            stats,
        )
    stats.seconds = time.perf_counter() - start
    stats.pairs_emitted = len(result)
    return result


def quantized_eselect(
    relation,
    query: np.ndarray,
    condition: JoinCondition,
    *,
    method: str | None = None,
    model: EmbeddingModel | None = None,
    rerank_multiple: int | None = None,
    buffer_budget_bytes: int | None = None,
):
    """Quantized-scan E-selection: the one-query special case of the join.

    ``relation`` may be raw vectors or a pre-built
    :class:`QuantizedRelation`.  Returns a
    :class:`~repro.core.eselect.SelectionResult` with exact fp32 scores.
    """
    from .eselect import SelectionResult

    query = np.asarray(query, dtype=np.float32)
    if query.ndim != 1:
        raise DimensionalityError(
            f"query must be a 1-D vector, got ndim={query.ndim}"
        )
    result = quantized_tensor_join(
        query[None, :],
        relation,
        condition,
        method=method,
        model=model,
        rerank_multiple=rerank_multiple,
        buffer_budget_bytes=buffer_budget_bytes,
    )
    stats = result.stats
    stats.strategy = stats.strategy.replace("tensor-", "eselect/", 1)
    return SelectionResult(result.right_ids, result.scores, stats)
