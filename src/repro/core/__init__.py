"""Core contribution: context-enhanced join operators and cost model."""

from .calibration import CalibrationReport, calibrate, calibrated_params
from .conditions import JoinCondition, ThresholdCondition, TopKCondition
from .eselect import (
    PRESCREEN_MARGIN,
    TOPK_PRESCREEN_PAD,
    SelectionResult,
    eselect,
    eselect_index,
    exact_threshold_select,
    exact_topk_select,
)
from .precision import (
    PRECISIONS,
    join_with_precision,
    precision_error_bound,
    quantize_fp16,
    tensor_join_fp16,
)
from .cost_model import (
    AccessPathDecision,
    CostParams,
    PrecisionDecision,
    choose_access_path,
    choose_scan_precision,
    crossover_selectivity,
    e_selection_cost,
    index_join_cost,
    index_probe_cost,
    naive_nlj_cost,
    precision_code_bytes,
    prefetch_nlj_cost,
    quantized_recall_estimate,
    quantized_scan_join_cost,
    scan_join_cost_filtered,
    tensor_join_cost,
)
from .index_join import DEFAULT_PROBE_K, build_index_for_join, index_join
from .join import STRATEGIES, ejoin
from .nlj import naive_nlj, prefetch_nlj
from .parallel import parallel_join, partition_rows
from .quantized_join import (
    QUANT_METHODS,
    QuantizedRelation,
    quantized_eselect,
    quantized_tensor_join,
)
from .result import JoinResult, JoinStats
from .tensor_join import resolve_batch_shape, tensor_join, tensor_join_non_batched

__all__ = [
    "AccessPathDecision",
    "CalibrationReport",
    "CostParams",
    "PRECISIONS",
    "PRESCREEN_MARGIN",
    "SelectionResult",
    "TOPK_PRESCREEN_PAD",
    "exact_threshold_select",
    "exact_topk_select",
    "calibrate",
    "calibrated_params",
    "eselect",
    "eselect_index",
    "join_with_precision",
    "precision_error_bound",
    "quantize_fp16",
    "tensor_join_fp16",
    "DEFAULT_PROBE_K",
    "JoinCondition",
    "JoinResult",
    "JoinStats",
    "PrecisionDecision",
    "QUANT_METHODS",
    "QuantizedRelation",
    "choose_scan_precision",
    "precision_code_bytes",
    "quantized_eselect",
    "quantized_recall_estimate",
    "quantized_scan_join_cost",
    "quantized_tensor_join",
    "STRATEGIES",
    "ThresholdCondition",
    "TopKCondition",
    "build_index_for_join",
    "choose_access_path",
    "crossover_selectivity",
    "e_selection_cost",
    "ejoin",
    "index_join",
    "index_join_cost",
    "index_probe_cost",
    "naive_nlj",
    "naive_nlj_cost",
    "parallel_join",
    "partition_rows",
    "prefetch_nlj",
    "prefetch_nlj_cost",
    "resolve_batch_shape",
    "scan_join_cost_filtered",
    "tensor_join",
    "tensor_join_cost",
    "tensor_join_non_batched",
]
