"""Tensor-join formulation (Sections IV-C, V-B; Figures 6, 7, 11-14).

The join becomes a block-matrix dot product: normalize both relations once
(cosine == dot for unit vectors), partition **along tuple boundaries, not
dimensions**, and compute ``D = R @ S.T`` block-by-block with BLAS GEMM.
Each block's dense intermediate is pruned to qualifying offset pairs before
the next block runs, so peak memory is ``batch_left * batch_right`` floats
regardless of input size (the Figure 7 buffer budget).
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..embedding.base import EmbeddingModel
from ..errors import BufferBudgetError, DimensionalityError
from ..vector.norms import normalize_rows
from ..vector.topk import top_k_per_row
from .conditions import (
    JoinCondition,
    ThresholdCondition,
    TopKCondition,
    validate_condition,
)
from .nlj import _as_matrix
from .result import JoinResult, JoinStats

#: Bytes per FP32 score cell in the intermediate matrix.
_CELL_BYTES = 4


def resolve_batch_shape(
    n_left: int,
    n_right: int,
    *,
    batch_left: int | None = None,
    batch_right: int | None = None,
    buffer_budget_bytes: int | None = None,
) -> tuple[int, int]:
    """Derive mini-batch edges from explicit sizes or a buffer budget.

    With only a budget, the edges are chosen square-ish:
    ``batch_l * batch_r * 4 bytes <= budget``.
    """
    if n_left <= 0 or n_right <= 0:
        return max(n_left, 1), max(n_right, 1)
    if buffer_budget_bytes is not None:
        cells = buffer_budget_bytes // _CELL_BYTES
        if cells < 1:
            raise BufferBudgetError(
                f"buffer budget {buffer_budget_bytes}B cannot hold one FP32 cell"
            )
        edge = int(math.isqrt(cells))
        batch_left = batch_left or min(n_left, max(edge, 1))
        batch_right = batch_right or min(n_right, max(cells // max(batch_left, 1), 1))
    batch_left = n_left if batch_left is None else min(batch_left, n_left)
    batch_right = n_right if batch_right is None else min(batch_right, n_right)
    if batch_left < 1 or batch_right < 1:
        raise BufferBudgetError(
            f"invalid batch shape ({batch_left}, {batch_right})"
        )
    return batch_left, batch_right


def tensor_join(
    left,
    right,
    condition: JoinCondition,
    *,
    model: EmbeddingModel | None = None,
    batch_left: int | None = None,
    batch_right: int | None = None,
    buffer_budget_bytes: int | None = None,
    assume_normalized: bool = False,
) -> JoinResult:
    """Scan-based exact E-join via blocked GEMM.

    Args:
        left, right: ``(n, d)`` embedding matrices, or raw items with
            ``model`` (prefetch-embedded once).
        condition: threshold or top-k join condition.
        batch_left, batch_right: explicit mini-batch edges in tuples.
        buffer_budget_bytes: alternatively, a memory budget for the dense
            intermediate (Figure 7's ``Buffer``); batch edges are derived.
        assume_normalized: skip normalization when inputs are already unit
            rows (ablation: pre-normalized storage).

    Returns:
        Sparse offset-pair :class:`JoinResult`; ``stats`` records peak
        buffer cells and GEMM invocations for the Figure 13 trade-off.
    """
    validate_condition(condition)
    stats = JoinStats(strategy="tensor")
    start = time.perf_counter()

    left_m = _as_matrix(left, model, stats)
    right_m = _as_matrix(right, model, stats)
    if left_m.shape[1] != right_m.shape[1]:
        raise DimensionalityError(
            f"dimensionality mismatch: {left_m.shape[1]} vs {right_m.shape[1]}"
        )
    stats.n_left, stats.n_right = len(left_m), len(right_m)
    if stats.n_left == 0 or stats.n_right == 0:
        stats.seconds = time.perf_counter() - start
        return JoinResult.empty(stats)

    left_n = left_m if assume_normalized else normalize_rows(left_m)
    right_n = right_m if assume_normalized else normalize_rows(right_m)

    bl, br = resolve_batch_shape(
        stats.n_left,
        stats.n_right,
        batch_left=batch_left,
        batch_right=batch_right,
        buffer_budget_bytes=buffer_budget_bytes,
    )
    stats.peak_buffer_elements = bl * br
    stats.extra["batch_shape"] = (bl, br)

    if isinstance(condition, ThresholdCondition):
        result = _threshold_blocks(left_n, right_n, condition, bl, br, stats)
    else:
        assert isinstance(condition, TopKCondition)
        result = _topk_blocks(left_n, right_n, condition, bl, br, stats)
    stats.seconds = time.perf_counter() - start
    result.stats = stats
    stats.pairs_emitted = len(result)
    return result


def _threshold_blocks(
    left_n: np.ndarray,
    right_n: np.ndarray,
    condition: ThresholdCondition,
    bl: int,
    br: int,
    stats: JoinStats,
) -> JoinResult:
    out_l: list[np.ndarray] = []
    out_r: list[np.ndarray] = []
    out_s: list[np.ndarray] = []
    for l0 in range(0, left_n.shape[0], bl):
        lb = left_n[l0 : l0 + bl]
        for r0 in range(0, right_n.shape[0], br):
            rb = right_n[r0 : r0 + br]
            scores = lb @ rb.T  # dense GEMM block (Figure 6 step 1)
            stats.batch_invocations += 1
            stats.similarity_evaluations += scores.size
            li, ri = np.nonzero(scores >= condition.threshold)
            if len(li) == 0:
                continue
            # Map block-local offsets back via batch offsets (Fig. 6 step 2).
            out_l.append(li.astype(np.int64) + l0)
            out_r.append(ri.astype(np.int64) + r0)
            out_s.append(scores[li, ri].astype(np.float32))
    if not out_l:
        return JoinResult.empty(stats)
    return JoinResult(
        np.concatenate(out_l),
        np.concatenate(out_r),
        np.concatenate(out_s),
        stats,
    )


def _topk_blocks(
    left_n: np.ndarray,
    right_n: np.ndarray,
    condition: TopKCondition,
    bl: int,
    br: int,
    stats: JoinStats,
) -> JoinResult:
    k = condition.k
    out_l: list[np.ndarray] = []
    out_r: list[np.ndarray] = []
    out_s: list[np.ndarray] = []
    for l0 in range(0, left_n.shape[0], bl):
        lb = left_n[l0 : l0 + bl]
        n_lb = lb.shape[0]
        # Per-left-row candidate pool merged across right blocks.
        cand_ids: np.ndarray | None = None
        cand_scores: np.ndarray | None = None
        for r0 in range(0, right_n.shape[0], br):
            rb = right_n[r0 : r0 + br]
            scores = lb @ rb.T
            stats.batch_invocations += 1
            stats.similarity_evaluations += scores.size
            local = top_k_per_row(scores, k)
            local_scores = np.take_along_axis(scores, local, axis=1)
            local_ids = local.astype(np.int64) + r0
            if cand_ids is None:
                cand_ids, cand_scores = local_ids, local_scores
            else:
                cand_ids = np.concatenate([cand_ids, local_ids], axis=1)
                cand_scores = np.concatenate([cand_scores, local_scores], axis=1)
                keep = top_k_per_row(cand_scores, k)
                cand_ids = np.take_along_axis(cand_ids, keep, axis=1)
                cand_scores = np.take_along_axis(cand_scores, keep, axis=1)
        assert cand_ids is not None and cand_scores is not None
        kk = cand_ids.shape[1]
        li = np.repeat(np.arange(n_lb, dtype=np.int64) + l0, kk)
        ri = cand_ids.reshape(-1)
        sc = cand_scores.reshape(-1).astype(np.float32)
        if condition.min_similarity is not None:
            keep = sc >= condition.min_similarity
            li, ri, sc = li[keep], ri[keep], sc[keep]
        out_l.append(li)
        out_r.append(ri)
        out_s.append(sc)
    if not out_l:
        return JoinResult.empty(stats)
    return JoinResult(
        np.concatenate(out_l),
        np.concatenate(out_r),
        np.concatenate(out_s),
        stats,
    )


def tensor_join_non_batched(
    left,
    right,
    condition: JoinCondition,
    *,
    model: EmbeddingModel | None = None,
) -> JoinResult:
    """Figure 12's "Tensor-Non-Batched" strategy.

    One input stays fully batched; the other is streamed **one vector at a
    time** through the BLAS kernel.  Numerically identical to
    :func:`tensor_join`, but each matrix-vector call re-reads the batched
    operand — the redundant data movement the fully-batched formulation
    eliminates.
    """
    validate_condition(condition)
    stats = JoinStats(strategy="tensor-non-batched")
    start = time.perf_counter()
    left_m = _as_matrix(left, model, stats)
    right_m = _as_matrix(right, model, stats)
    if left_m.shape[1] != right_m.shape[1]:
        raise DimensionalityError(
            f"dimensionality mismatch: {left_m.shape[1]} vs {right_m.shape[1]}"
        )
    stats.n_left, stats.n_right = len(left_m), len(right_m)
    left_n = normalize_rows(left_m)
    right_n = normalize_rows(right_m)

    from .nlj import _emit_row  # row-wise condition evaluation

    out_l: list[np.ndarray] = []
    out_r: list[np.ndarray] = []
    out_s: list[np.ndarray] = []
    for i in range(left_n.shape[0]):
        row = right_n @ left_n[i]  # matrix-vector: right batched, left streamed
        stats.batch_invocations += 1
        stats.similarity_evaluations += row.shape[0]
        idx, picked = _emit_row(row, condition)
        if len(idx) == 0:
            continue
        out_l.append(np.full(len(idx), i, dtype=np.int64))
        out_r.append(idx.astype(np.int64))
        out_s.append(picked.astype(np.float32))
    stats.seconds = time.perf_counter() - start
    if not out_l:
        return JoinResult.empty(stats)
    return JoinResult(
        np.concatenate(out_l),
        np.concatenate(out_r),
        np.concatenate(out_s),
        stats,
    )
