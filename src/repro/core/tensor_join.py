"""Tensor-join formulation (Sections IV-C, V-B; Figures 6, 7, 11-14).

The join becomes a block-matrix dot product: normalize both relations once
(cosine == dot for unit vectors), partition **along tuple boundaries, not
dimensions**, and compute ``D = R @ S.T`` block-by-block with BLAS GEMM.
Each block's dense intermediate is pruned to qualifying offset pairs before
the next block runs, so peak memory is ``batch_left * batch_right`` floats
regardless of input size (the Figure 7 buffer budget).  Top-k conditions
stream every block through a bounded :class:`~repro.vector.topk.StreamingTopK`
merge, so the budget also covers the candidate state, end to end.

Left blocks are independent tasks; handing the join an
:class:`~repro.engine.ExecutionEngine` schedules them on its work-stealing
workers, with batch shapes resolved by the engine's (possibly calibrated)
:class:`~repro.engine.BatchPolicy`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..config import get_config
from ..embedding.base import EmbeddingModel
from ..engine import BatchPolicy, ExecutionEngine
from ..engine.adaptive import CELL_BYTES as _CELL_BYTES
from ..errors import DimensionalityError
from ..vector.norms import normalize_rows
from ..vector.topk import StreamingTopK
from .conditions import (
    JoinCondition,
    ThresholdCondition,
    TopKCondition,
    validate_condition,
)
from .nlj import _as_matrix
from .result import JoinResult, JoinStats


def resolve_batch_shape(
    n_left: int,
    n_right: int,
    *,
    batch_left: int | None = None,
    batch_right: int | None = None,
    buffer_budget_bytes: int | None = None,
) -> tuple[int, int]:
    """Derive mini-batch edges from explicit sizes or a buffer budget.

    With only a budget, the edges are chosen square-ish:
    ``batch_l * batch_r * 4 bytes <= budget``.  Thin wrapper over
    :meth:`repro.engine.BatchPolicy.resolve` (the single budget-to-shape
    implementation), kept as the stable core-layer entry point.
    """
    return BatchPolicy().resolve(
        n_left,
        n_right,
        1,  # dim only matters to calibrated policies
        batch_left=batch_left,
        batch_right=batch_right,
        buffer_budget_bytes=buffer_budget_bytes,
    )


@dataclass
class _BlockPart:
    """One left block's matches plus the counters it accumulated."""

    left_ids: np.ndarray
    right_ids: np.ndarray
    scores: np.ndarray
    similarity_evaluations: int = 0
    batch_invocations: int = 0
    peak_intermediate_bytes: int = 0


def tensor_join(
    left,
    right,
    condition: JoinCondition,
    *,
    model: EmbeddingModel | None = None,
    batch_left: int | None = None,
    batch_right: int | None = None,
    buffer_budget_bytes: int | None = None,
    assume_normalized: bool = False,
    engine: ExecutionEngine | None = None,
    policy: BatchPolicy | None = None,
) -> JoinResult:
    """Scan-based exact E-join via blocked GEMM.

    Args:
        left, right: ``(n, d)`` embedding matrices, or raw items with
            ``model`` (prefetch-embedded once).
        condition: threshold or top-k join condition.
        batch_left, batch_right: explicit mini-batch edges in tuples.
        buffer_budget_bytes: alternatively, a memory budget for the dense
            intermediate (Figure 7's ``Buffer``); batch edges are derived.
            Under a top-k condition the budget also covers the streaming
            merge state, and with a multi-threaded engine it is split
            evenly across workers — peak intermediate memory is bounded
            end to end, counting all concurrent blocks.
        assume_normalized: skip normalization when inputs are already unit
            rows (ablation: pre-normalized storage).
        engine: execution engine scheduling left blocks across its workers
            and resolving batch shapes via its calibrated policy.  ``None``
            runs blocks inline with policy defaults from the global config.
        policy: batch-shape policy for engine-less calls (e.g. per-morsel
            joins inside :func:`~repro.core.parallel.parallel_join`, which
            forwards its engine's calibrated policy); ignored when an
            ``engine`` is supplied.

    Returns:
        Sparse offset-pair :class:`JoinResult`; ``stats`` records peak
        buffer cells and GEMM invocations for the Figure 13 trade-off.
    """
    validate_condition(condition)
    stats = JoinStats(strategy="tensor")
    start = time.perf_counter()

    left_m = _as_matrix(left, model, stats)
    right_m = _as_matrix(right, model, stats)
    if left_m.shape[1] != right_m.shape[1]:
        raise DimensionalityError(
            f"dimensionality mismatch: {left_m.shape[1]} vs {right_m.shape[1]}"
        )
    stats.n_left, stats.n_right = len(left_m), len(right_m)
    if stats.n_left == 0 or stats.n_right == 0:
        stats.seconds = time.perf_counter() - start
        return JoinResult.empty(stats)

    left_n = left_m if assume_normalized else normalize_rows(left_m)
    right_n = right_m if assume_normalized else normalize_rows(right_m)

    if engine is not None:
        policy = engine.policy
    elif policy is None:
        policy = BatchPolicy(
            buffer_budget_bytes=get_config().default_buffer_budget_bytes
        )
    reserve = (
        StreamingTopK.state_bytes_per_row(condition.k)
        if isinstance(condition, TopKCondition)
        else 0
    )
    full_budget = (
        policy.buffer_budget_bytes
        if buffer_budget_bytes is None
        else buffer_budget_bytes
    )

    def _resolve(share: int) -> tuple[int, int]:
        eff = None if full_budget is None else max(full_budget // share, 1)
        bl, br = policy.resolve(
            stats.n_left,
            stats.n_right,
            left_n.shape[1],
            batch_left=batch_left,
            batch_right=batch_right,
            buffer_budget_bytes=eff,
            reserve_bytes_per_left_row=reserve,
        )
        if (
            engine is not None
            and engine.n_threads > 1
            and batch_left is None
            and bl >= stats.n_left
        ):
            # Neither the caller nor the (possibly generous) budget split
            # the left side: cap the left edge at the engine's morsel size
            # so the join actually parallelizes instead of degenerating to
            # one serial full-size block.
            morsels = engine.morsels_for(stats.n_left)
            if len(morsels) > 1:
                bl = max(len(m) for m in morsels)
        return bl, br

    if engine is not None and engine.n_threads > 1:
        # Split the budget by how many blocks are concurrently resident.
        # Shrinking the budget shrinks blocks and so *raises* the block
        # count, so iterate share = min(workers, blocks) to its fixed
        # point (monotone, bounded by n_threads); at the fixed point
        # holders * per-block <= budget.  A single-block join keeps the
        # whole budget instead of paying for concurrency it never gets.
        share = 1
        for _ in range(8):
            bl, br = _resolve(share)
            blocks = -(-stats.n_left // bl)
            new_share = min(engine.n_threads, blocks)
            if new_share <= share:
                break
            share = new_share
        else:
            bl, br = _resolve(engine.n_threads)  # conservative, always safe
    else:
        bl, br = _resolve(1)
    stats.peak_buffer_elements = bl * br
    stats.extra["batch_shape"] = (bl, br)

    parts = _run_left_blocks(left_n, right_n, condition, bl, br, engine)
    for part in parts:
        stats.similarity_evaluations += part.similarity_evaluations
        stats.batch_invocations += part.batch_invocations
        stats.extra["peak_intermediate_bytes"] = max(
            stats.extra.get("peak_intermediate_bytes", 0),
            part.peak_intermediate_bytes,
        )
    populated = [p for p in parts if len(p.left_ids)]
    if not populated:
        result = JoinResult.empty(stats)
    else:
        result = JoinResult(
            np.concatenate([p.left_ids for p in populated]),
            np.concatenate([p.right_ids for p in populated]),
            np.concatenate([p.scores for p in populated]),
            stats,
        )
    stats.seconds = time.perf_counter() - start
    stats.pairs_emitted = len(result)
    return result


def _run_left_blocks(
    left_n: np.ndarray,
    right_n: np.ndarray,
    condition: JoinCondition,
    bl: int,
    br: int,
    engine: ExecutionEngine | None,
) -> list[_BlockPart]:
    """Join every left block against the right relation.

    Each block is a self-contained task over shared read-only operands, so
    a multi-threaded engine schedules them on its work-stealing workers;
    results come back in block order, keeping output identical to the
    inline loop.
    """
    n = left_n.shape[0]
    bounds = [(l0, min(l0 + bl, n)) for l0 in range(0, n, bl)]

    def block_task(span: tuple[int, int]) -> _BlockPart:
        l0, l1 = span
        if isinstance(condition, ThresholdCondition):
            return _threshold_block(
                left_n[l0:l1], l0, right_n, condition, br
            )
        assert isinstance(condition, TopKCondition)
        return _topk_block(left_n[l0:l1], l0, right_n, condition, br)

    if engine is None or engine.n_threads == 1 or len(bounds) == 1:
        return [block_task(span) for span in bounds]
    return engine.run([lambda span=span: block_task(span) for span in bounds])


def _threshold_block(
    lb: np.ndarray,
    l0: int,
    right_n: np.ndarray,
    condition: ThresholdCondition,
    br: int,
) -> _BlockPart:
    out_l: list[np.ndarray] = []
    out_r: list[np.ndarray] = []
    out_s: list[np.ndarray] = []
    part = _BlockPart(
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.float32),
    )
    for r0 in range(0, right_n.shape[0], br):
        rb = right_n[r0 : r0 + br]
        scores = lb @ rb.T  # dense GEMM block (Figure 6 step 1)
        part.batch_invocations += 1
        part.similarity_evaluations += scores.size
        part.peak_intermediate_bytes = max(
            part.peak_intermediate_bytes, scores.size * _CELL_BYTES
        )
        li, ri = np.nonzero(scores >= condition.threshold)
        if len(li) == 0:
            continue
        # Map block-local offsets back via batch offsets (Fig. 6 step 2).
        out_l.append(li.astype(np.int64) + l0)
        out_r.append(ri.astype(np.int64) + r0)
        out_s.append(scores[li, ri].astype(np.float32))
    if out_l:
        part.left_ids = np.concatenate(out_l)
        part.right_ids = np.concatenate(out_r)
        part.scores = np.concatenate(out_s)
    return part


def _topk_block(
    lb: np.ndarray,
    l0: int,
    right_n: np.ndarray,
    condition: TopKCondition,
    br: int,
) -> _BlockPart:
    k = condition.k
    n_lb = lb.shape[0]
    part = _BlockPart(
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.float32),
    )
    merger = StreamingTopK(n_lb, k)
    state_bytes = n_lb * StreamingTopK.state_bytes_per_row(k)
    for r0 in range(0, right_n.shape[0], br):
        rb = right_n[r0 : r0 + br]
        scores = lb @ rb.T
        part.batch_invocations += 1
        part.similarity_evaluations += scores.size
        part.peak_intermediate_bytes = max(
            part.peak_intermediate_bytes,
            scores.size * _CELL_BYTES + state_bytes,
        )
        merger.update_block(scores, r0)
    cand_ids, cand_scores = merger.finalize()
    kk = cand_ids.shape[1]
    li = np.repeat(np.arange(n_lb, dtype=np.int64) + l0, kk)
    ri = cand_ids.reshape(-1)
    sc = cand_scores.reshape(-1).astype(np.float32)
    if condition.min_similarity is not None:
        keep = sc >= condition.min_similarity
        li, ri, sc = li[keep], ri[keep], sc[keep]
    part.left_ids, part.right_ids, part.scores = li, ri, sc
    return part


def tensor_join_non_batched(
    left,
    right,
    condition: JoinCondition,
    *,
    model: EmbeddingModel | None = None,
) -> JoinResult:
    """Figure 12's "Tensor-Non-Batched" strategy.

    One input stays fully batched; the other is streamed **one vector at a
    time** through the BLAS kernel.  Numerically identical to
    :func:`tensor_join`, but each matrix-vector call re-reads the batched
    operand — the redundant data movement the fully-batched formulation
    eliminates.
    """
    validate_condition(condition)
    stats = JoinStats(strategy="tensor-non-batched")
    start = time.perf_counter()
    left_m = _as_matrix(left, model, stats)
    right_m = _as_matrix(right, model, stats)
    if left_m.shape[1] != right_m.shape[1]:
        raise DimensionalityError(
            f"dimensionality mismatch: {left_m.shape[1]} vs {right_m.shape[1]}"
        )
    stats.n_left, stats.n_right = len(left_m), len(right_m)
    left_n = normalize_rows(left_m)
    right_n = normalize_rows(right_m)

    from .nlj import _emit_row  # row-wise condition evaluation

    out_l: list[np.ndarray] = []
    out_r: list[np.ndarray] = []
    out_s: list[np.ndarray] = []
    for i in range(left_n.shape[0]):
        row = right_n @ left_n[i]  # matrix-vector: right batched, left streamed
        stats.batch_invocations += 1
        stats.similarity_evaluations += row.shape[0]
        idx, picked = _emit_row(row, condition)
        if len(idx) == 0:
            continue
        out_l.append(np.full(len(idx), i, dtype=np.int64))
        out_r.append(idx.astype(np.int64))
        out_s.append(picked.astype(np.float32))
    stats.seconds = time.perf_counter() - start
    if not out_l:
        return JoinResult.empty(stats)
    return JoinResult(
        np.concatenate(out_l),
        np.concatenate(out_r),
        np.concatenate(out_s),
        stats,
    )
