"""Join conditions for the context-enhanced join.

The paper evaluates two condition families (Section VI-E):

* **range / threshold** — ``cos(r, s) >= threshold``; natural for scans,
  awkward for indexes (which are built around top-k retrieval),
* **top-k** — for each probe-side tuple, join with its ``k`` most similar
  base-side tuples; the native mode of a vector index.

A condition can also combine both (top-k with a minimum similarity), which
is how the Figure 17 "range" experiment drives an index: retrieve top-k,
then post-filter by threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import JoinError


@dataclass(frozen=True)
class JoinCondition:
    """Base marker for join conditions."""


@dataclass(frozen=True)
class ThresholdCondition(JoinCondition):
    """Match every pair with cosine similarity >= ``threshold``."""

    threshold: float

    def __post_init__(self) -> None:
        if not -1.0 <= self.threshold <= 1.0:
            raise JoinError(
                f"cosine threshold must be in [-1, 1], got {self.threshold}"
            )

    def __str__(self) -> str:
        return f"sim >= {self.threshold}"


@dataclass(frozen=True)
class TopKCondition(JoinCondition):
    """Match each left tuple with its ``k`` most similar right tuples.

    ``min_similarity`` optionally post-filters the retrieved matches — the
    index-side emulation of a range condition (Figure 17).
    """

    k: int
    min_similarity: float | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise JoinError(f"top-k requires k >= 1, got {self.k}")
        if self.min_similarity is not None and not -1.0 <= self.min_similarity <= 1.0:
            raise JoinError(
                f"min_similarity must be in [-1, 1], got {self.min_similarity}"
            )

    def __str__(self) -> str:
        extra = (
            f", sim >= {self.min_similarity}"
            if self.min_similarity is not None
            else ""
        )
        return f"top-{self.k}{extra}"


def validate_condition(condition: JoinCondition) -> JoinCondition:
    """Type-check a condition object (defensive entry-point validation)."""
    if not isinstance(condition, (ThresholdCondition, TopKCondition)):
        raise JoinError(
            f"unsupported join condition {condition!r}; use "
            "ThresholdCondition or TopKCondition"
        )
    return condition
