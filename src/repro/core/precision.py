"""Reduced-precision tensor join (paper Section V-A-2).

The paper points at AVX-512 FP16 and AMX as hardware directions: half-
precision halves the memory footprint of high-dimensional embeddings and
doubles SIMD lane count, at a small accuracy cost.  NumPy has no fast FP16
GEMM, so this module reproduces the *memory* half of the trade-off exactly
and the accuracy effect faithfully:

* operands are stored as float16 (half the bytes — measurable),
* blocks are upcast to float32 on entry to the GEMM (how real FP16 pipelines
  accumulate in FP32),
* scores therefore carry FP16 quantization error, quantified by
  :func:`precision_error_bound` and tested against it.
"""

from __future__ import annotations

import time

import numpy as np

from ..embedding.base import EmbeddingModel
from ..errors import DimensionalityError, JoinError
from ..vector.norms import normalize_rows
from .conditions import JoinCondition, validate_condition
from .nlj import _as_matrix
from .result import JoinResult, JoinStats
from .tensor_join import tensor_join

#: Supported storage precisions for the tensor join operands.  ``fp32`` /
#: ``fp16`` scan exactly at full/half operand width; ``int8`` / ``pq``
#: dispatch to the quantized access paths (approximate code scan plus
#: exact fp32 re-rank, :mod:`repro.core.quantized_join`).
PRECISIONS = ("fp32", "fp16", "int8", "pq")


def quantize_fp16(matrix: np.ndarray) -> np.ndarray:
    """Normalize then quantize unit rows to float16 storage."""
    return normalize_rows(np.asarray(matrix, dtype=np.float32)).astype(
        np.float16
    )


def precision_error_bound(dim: int) -> float:
    """Worst-case |cos_fp16 - cos_fp32| for unit vectors of ``dim``.

    Each FP16 component carries relative error <= 2^-11; a dot product of
    ``dim`` products of two quantized unit-vector components accumulates at
    most ``2 * 2^-11 * sqrt-ish`` error; we use the conservative linear
    bound ``2^-10 * sqrt(dim)`` which holds comfortably in practice.
    """
    return (2.0**-10) * float(np.sqrt(dim)) + 2.0**-10


def tensor_join_fp16(
    left,
    right,
    condition: JoinCondition,
    *,
    model: EmbeddingModel | None = None,
    batch_left: int | None = None,
    batch_right: int | None = None,
    buffer_budget_bytes: int | None = None,
    engine=None,
) -> JoinResult:
    """Tensor join with FP16-quantized operands.

    Results may differ from the FP32 join only for pairs whose similarity
    lies within :func:`precision_error_bound` of the decision boundary.
    ``stats.extra["operand_bytes"]`` records the (halved) operand footprint.
    """
    validate_condition(condition)
    stats = JoinStats(strategy="tensor-fp16")
    start = time.perf_counter()
    left_m = _as_matrix(left, model, stats)
    right_m = _as_matrix(right, model, stats)
    if left_m.shape[1] != right_m.shape[1]:
        raise DimensionalityError(
            f"dimensionality mismatch: {left_m.shape[1]} vs {right_m.shape[1]}"
        )
    left_h = quantize_fp16(left_m)
    right_h = quantize_fp16(right_m)
    stats.extra["operand_bytes"] = int(left_h.nbytes + right_h.nbytes)
    stats.n_left, stats.n_right = len(left_h), len(right_h)
    if stats.n_left == 0 or stats.n_right == 0:
        stats.seconds = time.perf_counter() - start
        return JoinResult.empty(stats)

    # Upcast block-by-block: storage stays FP16, accumulation is FP32.
    # Batch shapes are left to tensor_join's policy so buffer budgets
    # (explicit or configured) apply to FP16 joins too.
    inner = tensor_join(
        left_h.astype(np.float32),
        right_h.astype(np.float32),
        condition,
        batch_left=batch_left,
        batch_right=batch_right,
        buffer_budget_bytes=buffer_budget_bytes,
        assume_normalized=False,  # re-normalize: quantization perturbs norms
        engine=engine,
    )
    stats.peak_buffer_elements = inner.stats.peak_buffer_elements
    stats.batch_invocations = inner.stats.batch_invocations
    stats.similarity_evaluations = inner.stats.similarity_evaluations
    stats.seconds = time.perf_counter() - start
    return JoinResult(inner.left_ids, inner.right_ids, inner.scores, stats)


def join_with_precision(
    left,
    right,
    condition: JoinCondition,
    *,
    precision: str = "fp32",
    model: EmbeddingModel | None = None,
    batch_left: int | None = None,
    batch_right: int | None = None,
) -> JoinResult:
    """Dispatch a tensor join at the requested operand precision."""
    if precision not in PRECISIONS:
        raise JoinError(f"unknown precision {precision!r}; have {PRECISIONS}")
    if precision == "fp32":
        return tensor_join(
            left,
            right,
            condition,
            model=model,
            batch_left=batch_left,
            batch_right=batch_right,
        )
    if precision in ("int8", "pq"):
        from .quantized_join import quantized_tensor_join

        return quantized_tensor_join(
            left,
            right,
            condition,
            method=precision,
            model=model,
            batch_left=batch_left,
            batch_right=batch_right,
        )
    return tensor_join_fp16(
        left,
        right,
        condition,
        model=model,
        batch_left=batch_left,
        batch_right=batch_right,
    )
