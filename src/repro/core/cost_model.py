"""Abstract cost model for context-enhanced operators (Section IV-A/B).

The paper's cost model separates three per-tuple cost factors —

* ``A`` — data access,
* ``M`` — model (embedding) invocation,
* ``C`` — similarity computation (scales with vector dimensionality),

and parametrizes them "based on their mutually normalized relative
performance" for the target architecture.  This module encodes the four
cost equations of the paper, plus the scan-vs-probe access-path selector
of Section VI-E (extending Kester et al.'s access path selection to vector
data management).

Qualitative summary (paper Table I):

====================  =====================  ============================
Property              Scan (tensor) join     Index join
====================  =====================  ============================
Accuracy              Exact                  Approximate
Filtering             Full relational        Vector sim. & pre-filtering
Cost                  Compute & scan         Build & compute & probe
Flexibility           Any expression         Limited, build-time distance
====================  =====================  ============================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import JoinError


@dataclass
class CostParams:
    """Mutually-normalized relative cost factors.

    Defaults are calibrated for this repo's NumPy substrate: sequential
    access is the unit; a model call (hashing embedder) costs ~tens of
    accesses; per-dimension fused multiply-adds are cheap in GEMM and
    pricier in the row-at-a-time kernel.
    """

    access: float = 1.0
    model: float = 50.0
    compute_per_dim: float = 0.05
    #: GEMM processes a multiply-add this much more cheaply than the
    #: row-at-a-time vectorized kernel (cache-blocked BLAS, Section V-A-1).
    gemm_efficiency: float = 0.25
    #: Scalar (pure-Python) kernel slowdown versus the vectorized kernel.
    scalar_penalty: float = 100.0
    #: Index probe constants: per-hop cost and beam width multiplier.
    probe_hop: float = 8.0
    probe_beam: float = 1.0
    #: Fixed per-scan cost of fanning out to one shard worker process:
    #: task encode, pipe round-trip, heap merge.  Expressed in the same
    #: sequential-access units as everything else; calibrated so tables
    #: below ~10k rows never leave the process.
    shard_dispatch: float = 4000.0

    def validate(self) -> None:
        values = {
            "access": self.access,
            "model": self.model,
            "compute_per_dim": self.compute_per_dim,
            "gemm_efficiency": self.gemm_efficiency,
            "scalar_penalty": self.scalar_penalty,
            "probe_hop": self.probe_hop,
            "probe_beam": self.probe_beam,
            "shard_dispatch": self.shard_dispatch,
        }
        for name, v in values.items():
            if v <= 0:
                raise JoinError(f"cost parameter {name} must be positive, got {v}")


# ----------------------------------------------------------------------
# Paper cost equations
# ----------------------------------------------------------------------
def e_selection_cost(n: int, dim: int, params: CostParams) -> float:
    """E-Selection Cost: ``|R| * (A + M + C)``."""
    c = params.compute_per_dim * dim
    return n * (params.access + params.model + c)


def naive_nlj_cost(n_left: int, n_right: int, dim: int, params: CostParams) -> float:
    """E-NL Join Cost: ``|R|*|S|*(A + M + C)`` — quadratic model cost."""
    c = params.compute_per_dim * dim
    return n_left * n_right * (params.access + params.model + c)


def prefetch_nlj_cost(
    n_left: int,
    n_right: int,
    dim: int,
    params: CostParams,
    *,
    scalar_kernel: bool = False,
) -> float:
    """E-NLJ Prefetch Optimization: ``|R|*|S|*(A+C) + (|R|+|S|)*M``."""
    c = params.compute_per_dim * dim
    if scalar_kernel:
        c *= params.scalar_penalty
    pairwise = n_left * n_right * (params.access + c)
    model = (n_left + n_right) * params.model
    return pairwise + model


def tensor_join_cost(
    n_left: int, n_right: int, dim: int, params: CostParams
) -> float:
    """Tensor formulation: prefetch NLJ with GEMM-efficient compute."""
    c = params.compute_per_dim * dim * params.gemm_efficiency
    pairwise = n_left * n_right * (params.access + c)
    model = (n_left + n_right) * params.model
    return pairwise + model


def shard_fanout_cost(
    n_rows: int,
    n_queries: int,
    dim: int,
    n_shards: int,
    params: CostParams,
) -> float:
    """Cost of the coalesced scan fanned out across ``n_shards`` processes.

    The stacked GEMM over the shared column store parallelizes perfectly
    across disjoint row ranges, so scan compute divides by the fan-out;
    what does not divide is the fixed per-shard dispatch term (task
    encode, pipe round-trip, heap merge back at the front door).  With
    ``n_shards == 1`` this degenerates to the in-process scan cost.
    """
    c = params.compute_per_dim * dim * params.gemm_efficiency
    scan = n_queries * n_rows * (params.access + c)
    if n_shards <= 1:
        return scan
    return scan / n_shards + n_shards * params.shard_dispatch


def choose_shard_fanout(
    n_rows: int,
    n_queries: int,
    dim: int,
    n_shards: int,
    *,
    params: CostParams | None = None,
    min_rows: int = 0,
) -> int:
    """Shards worth using for one coalesced scan (``1`` means stay serial).

    Compares the fanned-out cost against the in-process scan and refuses
    to shard tables under ``min_rows`` outright — for tiny tables the
    dispatch overhead dominates any conceivable GEMM win, and the config
    floor saves computing the model at all.
    """
    params = params or CostParams()
    if n_shards <= 1 or n_rows < max(min_rows, 1):
        return 1
    serial = shard_fanout_cost(n_rows, n_queries, dim, 1, params)
    fanned = shard_fanout_cost(n_rows, n_queries, dim, n_shards, params)
    return n_shards if fanned < serial else 1


def index_probe_cost(
    n_base: int,
    k: int,
    dim: int,
    params: CostParams,
    *,
    ef_search: int = 64,
    selectivity: float = 1.0,
) -> float:
    """``I_probe(S)``: one HNSW probe against ``n_base`` stored vectors.

    Graph traversal visits ``O(ef * log n)`` nodes.  Under a relational
    pre-filter, the traversal still walks disallowed nodes while the result
    heap only admits allowed ones — so the effective work to surface ``k``
    allowed results grows as selectivity drops (Section IV-B).
    """
    if n_base <= 0:
        return 0.0
    sel = min(max(selectivity, 1.0 / max(n_base, 1)), 1.0)
    beam = max(ef_search, k) * params.probe_beam
    hops = beam * max(math.log2(n_base), 1.0)
    filter_penalty = 1.0 / math.sqrt(sel)
    c = params.compute_per_dim * dim
    return hops * (params.probe_hop + c) * filter_penalty


def index_join_cost(
    n_left: int,
    n_base: int,
    k: int,
    dim: int,
    params: CostParams,
    *,
    ef_search: int = 64,
    selectivity: float = 1.0,
) -> float:
    """E-Index Join Cost: ``|R| * I_probe(S) * (A + C)`` (model prefetched)."""
    probe = index_probe_cost(
        n_base, k, dim, params, ef_search=ef_search, selectivity=selectivity
    )
    model = n_left * params.model  # probe vectors are embedded once
    return n_left * probe + model


def scan_join_cost_filtered(
    n_left: int,
    n_base: int,
    dim: int,
    params: CostParams,
    *,
    selectivity: float = 1.0,
) -> float:
    """Tensor-join cost after relational pre-filtering shrinks the base side.

    A scan applies the relational filter *before* the similarity compute
    (full relational filtering, Table I): the effective inner cardinality is
    ``selectivity * n_base`` plus one cheap pass to evaluate the filter.
    """
    sel = min(max(selectivity, 0.0), 1.0)
    effective = int(round(sel * n_base))
    filter_pass = n_base * params.access
    return tensor_join_cost(n_left, effective, dim, params) + filter_pass


# ----------------------------------------------------------------------
# Quantized access paths (Section V-A-2 carried to int8/PQ)
# ----------------------------------------------------------------------
def precision_code_bytes(precision: str, dim: int, *, pq_m: int = 8) -> int:
    """Stored bytes per vector at each operand precision."""
    if precision == "fp32":
        return 4 * dim
    if precision == "fp16":
        return 2 * dim
    if precision == "int8":
        return dim
    if precision == "pq":
        return pq_m
    raise JoinError(f"unknown precision {precision!r}")


def quantized_scan_join_cost(
    n_left: int,
    n_base: int,
    dim: int,
    params: CostParams,
    *,
    bytes_per_code: int,
    rerank_k: int,
    lut_adds: int | None = None,
) -> float:
    """Quantized tensor-join cost: compressed scan plus exact re-rank.

    The pairwise access term scales with the code-to-fp32 byte ratio (the
    memory-traffic lever quantization pulls); the approximate compute term
    runs ``lut_adds`` fused adds per pair (``dim`` for int8's GEMM over
    codes, ``m`` for PQ's table lookups).  Each probe then re-ranks
    ``rerank_k`` candidates at full precision.
    """
    full_bytes = 4.0 * dim
    traffic = min(bytes_per_code / full_bytes, 1.0)
    adds = dim if lut_adds is None else lut_adds
    c_approx = params.compute_per_dim * adds * params.gemm_efficiency
    scan = n_left * n_base * (params.access * traffic + c_approx)
    c_full = params.compute_per_dim * dim
    rerank = n_left * rerank_k * (params.access + c_full)
    model = (n_left + n_base) * params.model
    return scan + rerank + model


def quantized_build_cost(
    n_base: int,
    dim: int,
    params: CostParams,
    *,
    precision: str,
    pq_ks: int = 256,
    kmeans_iters: int = 10,
) -> float:
    """One-time cost of fitting and encoding a quantized relation.

    int8 pays one elementwise pass over the relation (min/max fit plus
    affine encode); PQ additionally trains ``ks`` centroids per subspace
    with ``kmeans_iters`` GEMM-assignment sweeps.  Charged by the
    precision chooser whenever no pre-built store amortizes it — this is
    what keeps one-shot selections on the exact fp32 scan.
    """
    per_row = params.compute_per_dim * dim
    if precision == "pq":
        per_row += (
            kmeans_iters
            * pq_ks
            * params.compute_per_dim
            * dim
            * params.gemm_efficiency
        )
    return n_base * per_row


def quantized_recall_estimate(
    precision: str, *, rerank_multiple: int = 4
) -> float:
    """Heuristic recall@k estimate for a quantized scan with re-ranking.

    int8's score error is bounded by half the affine step norm — tiny
    against typical score gaps — while PQ's grows with the quantization
    residual; the candidate multiple recovers boundary misses roughly
    proportionally.  Constants calibrated against the ``fig_quant``
    embedding-like workload (int8 measures ~1.0, PQ ~0.97 at multiple 8).
    """
    base_miss = {"fp32": 0.0, "fp16": 0.002, "int8": 0.04, "pq": 0.2}
    if precision not in base_miss:
        raise JoinError(f"unknown precision {precision!r}")
    return 1.0 - base_miss[precision] / max(rerank_multiple, 1)


@dataclass(frozen=True)
class PrecisionDecision:
    """Outcome of quantized-vs-fp32 scan selection."""

    precision: str  # chosen operand precision for the scan
    fp32_cost: float
    quantized_cost: float
    estimated_recall: float


def choose_scan_precision(
    n_left: int,
    n_base: int,
    k: int,
    dim: int,
    *,
    precision: str | None = None,
    params: CostParams | None = None,
    rerank_multiple: int | None = None,
    min_recall: float | None = None,
    pq_m: int = 8,
    store_built: bool = False,
) -> PrecisionDecision:
    """Pick the scan's operand precision under an accuracy constraint.

    The configured (or requested) precision is adopted only when its
    estimated recall clears ``min_recall`` *and* its modelled cost beats
    the fp32 scan; otherwise the decision falls back to fp32.  ``None``
    arguments default from the process-wide config (the
    ``REPRO_PRECISION`` knob).  Unless ``store_built`` says a
    pre-encoded :class:`~repro.core.quantized_join.QuantizedRelation`
    already exists, the one-time fit/encode cost is charged too — a
    single probe over a cold relation should stay on the exact scan.
    """
    from ..config import get_config

    config = get_config()
    precision = config.default_precision if precision is None else precision
    rerank_multiple = (
        config.default_rerank_multiple
        if rerank_multiple is None
        else rerank_multiple
    )
    min_recall = (
        config.default_min_recall if min_recall is None else min_recall
    )
    params = params or CostParams()
    params.validate()
    fp32 = tensor_join_cost(n_left, n_base, dim, params)
    if precision not in ("int8", "pq"):
        return PrecisionDecision("fp32", fp32, math.inf, 1.0)
    recall = quantized_recall_estimate(
        precision, rerank_multiple=rerank_multiple
    )
    quantized = quantized_scan_join_cost(
        n_left,
        n_base,
        dim,
        params,
        bytes_per_code=precision_code_bytes(precision, dim, pq_m=pq_m),
        rerank_k=min(rerank_multiple * k, n_base),
        lut_adds=pq_m if precision == "pq" else None,
    )
    if not store_built:
        quantized += quantized_build_cost(
            n_base, dim, params, precision=precision
        )
    if recall >= min_recall and quantized < fp32:
        return PrecisionDecision(precision, fp32, quantized, recall)
    return PrecisionDecision("fp32", fp32, quantized, 1.0)


# ----------------------------------------------------------------------
# Access-path selection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AccessPathDecision:
    """Outcome of scan-vs-probe selection."""

    choice: str  # "scan" | "index"
    scan_cost: float
    index_cost: float

    @property
    def ratio(self) -> float:
        """index_cost / scan_cost (>1 means scan wins)."""
        if self.scan_cost == 0:
            return math.inf
        return self.index_cost / self.scan_cost


def choose_access_path(
    n_left: int,
    n_base: int,
    k: int,
    dim: int,
    *,
    selectivity: float = 1.0,
    params: CostParams | None = None,
    ef_search: int = 64,
    index_available: bool = True,
) -> AccessPathDecision:
    """Selectivity-driven scan-vs-index decision (Section VI-E takeaway).

    Low selectivity favours the scan (it filters cheaply and computes on
    the survivors); high selectivity with small ``k`` favours the index.
    """
    params = params or CostParams()
    params.validate()
    scan = scan_join_cost_filtered(
        n_left, n_base, dim, params, selectivity=selectivity
    )
    if not index_available:
        return AccessPathDecision("scan", scan, math.inf)
    index = index_join_cost(
        n_left,
        n_base,
        k,
        dim,
        params,
        ef_search=ef_search,
        selectivity=selectivity,
    )
    choice = "scan" if scan <= index else "index"
    return AccessPathDecision(choice, scan, index)


def crossover_selectivity(
    n_left: int,
    n_base: int,
    k: int,
    dim: int,
    *,
    params: CostParams | None = None,
    ef_search: int = 64,
    resolution: int = 100,
) -> float | None:
    """Lowest selectivity at which the index starts winning, if any.

    Mirrors the crossover points of Figures 15-16 (20-30% for top-1, ~80%
    for top-32/Lo at paper scale).
    """
    params = params or CostParams()
    for step in range(1, resolution + 1):
        sel = step / resolution
        decision = choose_access_path(
            n_left,
            n_base,
            k,
            dim,
            selectivity=sel,
            params=params,
            ef_search=ef_search,
        )
        if decision.choice == "index":
            return sel
    return None
