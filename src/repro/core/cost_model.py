"""Abstract cost model for context-enhanced operators (Section IV-A/B).

The paper's cost model separates three per-tuple cost factors —

* ``A`` — data access,
* ``M`` — model (embedding) invocation,
* ``C`` — similarity computation (scales with vector dimensionality),

and parametrizes them "based on their mutually normalized relative
performance" for the target architecture.  This module encodes the four
cost equations of the paper, plus the scan-vs-probe access-path selector
of Section VI-E (extending Kester et al.'s access path selection to vector
data management).

Qualitative summary (paper Table I):

====================  =====================  ============================
Property              Scan (tensor) join     Index join
====================  =====================  ============================
Accuracy              Exact                  Approximate
Filtering             Full relational        Vector sim. & pre-filtering
Cost                  Compute & scan         Build & compute & probe
Flexibility           Any expression         Limited, build-time distance
====================  =====================  ============================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import JoinError


@dataclass
class CostParams:
    """Mutually-normalized relative cost factors.

    Defaults are calibrated for this repo's NumPy substrate: sequential
    access is the unit; a model call (hashing embedder) costs ~tens of
    accesses; per-dimension fused multiply-adds are cheap in GEMM and
    pricier in the row-at-a-time kernel.
    """

    access: float = 1.0
    model: float = 50.0
    compute_per_dim: float = 0.05
    #: GEMM processes a multiply-add this much more cheaply than the
    #: row-at-a-time vectorized kernel (cache-blocked BLAS, Section V-A-1).
    gemm_efficiency: float = 0.25
    #: Scalar (pure-Python) kernel slowdown versus the vectorized kernel.
    scalar_penalty: float = 100.0
    #: Index probe constants: per-hop cost and beam width multiplier.
    probe_hop: float = 8.0
    probe_beam: float = 1.0

    def validate(self) -> None:
        values = {
            "access": self.access,
            "model": self.model,
            "compute_per_dim": self.compute_per_dim,
            "gemm_efficiency": self.gemm_efficiency,
            "scalar_penalty": self.scalar_penalty,
            "probe_hop": self.probe_hop,
            "probe_beam": self.probe_beam,
        }
        for name, v in values.items():
            if v <= 0:
                raise JoinError(f"cost parameter {name} must be positive, got {v}")


# ----------------------------------------------------------------------
# Paper cost equations
# ----------------------------------------------------------------------
def e_selection_cost(n: int, dim: int, params: CostParams) -> float:
    """E-Selection Cost: ``|R| * (A + M + C)``."""
    c = params.compute_per_dim * dim
    return n * (params.access + params.model + c)


def naive_nlj_cost(n_left: int, n_right: int, dim: int, params: CostParams) -> float:
    """E-NL Join Cost: ``|R|*|S|*(A + M + C)`` — quadratic model cost."""
    c = params.compute_per_dim * dim
    return n_left * n_right * (params.access + params.model + c)


def prefetch_nlj_cost(
    n_left: int,
    n_right: int,
    dim: int,
    params: CostParams,
    *,
    scalar_kernel: bool = False,
) -> float:
    """E-NLJ Prefetch Optimization: ``|R|*|S|*(A+C) + (|R|+|S|)*M``."""
    c = params.compute_per_dim * dim
    if scalar_kernel:
        c *= params.scalar_penalty
    pairwise = n_left * n_right * (params.access + c)
    model = (n_left + n_right) * params.model
    return pairwise + model


def tensor_join_cost(
    n_left: int, n_right: int, dim: int, params: CostParams
) -> float:
    """Tensor formulation: prefetch NLJ with GEMM-efficient compute."""
    c = params.compute_per_dim * dim * params.gemm_efficiency
    pairwise = n_left * n_right * (params.access + c)
    model = (n_left + n_right) * params.model
    return pairwise + model


def index_probe_cost(
    n_base: int,
    k: int,
    dim: int,
    params: CostParams,
    *,
    ef_search: int = 64,
    selectivity: float = 1.0,
) -> float:
    """``I_probe(S)``: one HNSW probe against ``n_base`` stored vectors.

    Graph traversal visits ``O(ef * log n)`` nodes.  Under a relational
    pre-filter, the traversal still walks disallowed nodes while the result
    heap only admits allowed ones — so the effective work to surface ``k``
    allowed results grows as selectivity drops (Section IV-B).
    """
    if n_base <= 0:
        return 0.0
    sel = min(max(selectivity, 1.0 / max(n_base, 1)), 1.0)
    beam = max(ef_search, k) * params.probe_beam
    hops = beam * max(math.log2(n_base), 1.0)
    filter_penalty = 1.0 / math.sqrt(sel)
    c = params.compute_per_dim * dim
    return hops * (params.probe_hop + c) * filter_penalty


def index_join_cost(
    n_left: int,
    n_base: int,
    k: int,
    dim: int,
    params: CostParams,
    *,
    ef_search: int = 64,
    selectivity: float = 1.0,
) -> float:
    """E-Index Join Cost: ``|R| * I_probe(S) * (A + C)`` (model prefetched)."""
    probe = index_probe_cost(
        n_base, k, dim, params, ef_search=ef_search, selectivity=selectivity
    )
    model = n_left * params.model  # probe vectors are embedded once
    return n_left * probe + model


def scan_join_cost_filtered(
    n_left: int,
    n_base: int,
    dim: int,
    params: CostParams,
    *,
    selectivity: float = 1.0,
) -> float:
    """Tensor-join cost after relational pre-filtering shrinks the base side.

    A scan applies the relational filter *before* the similarity compute
    (full relational filtering, Table I): the effective inner cardinality is
    ``selectivity * n_base`` plus one cheap pass to evaluate the filter.
    """
    sel = min(max(selectivity, 0.0), 1.0)
    effective = int(round(sel * n_base))
    filter_pass = n_base * params.access
    return tensor_join_cost(n_left, effective, dim, params) + filter_pass


# ----------------------------------------------------------------------
# Access-path selection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AccessPathDecision:
    """Outcome of scan-vs-probe selection."""

    choice: str  # "scan" | "index"
    scan_cost: float
    index_cost: float

    @property
    def ratio(self) -> float:
        """index_cost / scan_cost (>1 means scan wins)."""
        if self.scan_cost == 0:
            return math.inf
        return self.index_cost / self.scan_cost


def choose_access_path(
    n_left: int,
    n_base: int,
    k: int,
    dim: int,
    *,
    selectivity: float = 1.0,
    params: CostParams | None = None,
    ef_search: int = 64,
    index_available: bool = True,
) -> AccessPathDecision:
    """Selectivity-driven scan-vs-index decision (Section VI-E takeaway).

    Low selectivity favours the scan (it filters cheaply and computes on
    the survivors); high selectivity with small ``k`` favours the index.
    """
    params = params or CostParams()
    params.validate()
    scan = scan_join_cost_filtered(
        n_left, n_base, dim, params, selectivity=selectivity
    )
    if not index_available:
        return AccessPathDecision("scan", scan, math.inf)
    index = index_join_cost(
        n_left,
        n_base,
        k,
        dim,
        params,
        ef_search=ef_search,
        selectivity=selectivity,
    )
    choice = "scan" if scan <= index else "index"
    return AccessPathDecision(choice, scan, index)


def crossover_selectivity(
    n_left: int,
    n_base: int,
    k: int,
    dim: int,
    *,
    params: CostParams | None = None,
    ef_search: int = 64,
    resolution: int = 100,
) -> float | None:
    """Lowest selectivity at which the index starts winning, if any.

    Mirrors the crossover points of Figures 15-16 (20-30% for top-1, ~80%
    for top-32/Lo at paper scale).
    """
    params = params or CostParams()
    for step in range(1, resolution + 1):
        sel = step / resolution
        decision = choose_access_path(
            n_left,
            n_base,
            k,
            dim,
            selectivity=sel,
            params=params,
            ef_search=ef_search,
        )
        if decision.choice == "index":
            return sel
    return None
