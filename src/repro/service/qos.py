"""Tail-latency QoS primitives: deadlines, priorities, and estimators.

The serving gap this module closes is the one ``fig_service`` measures:
under heavy concurrency, queue wait dominates latency and p99 collapses
to ~46x the single-client value.  The QoS layer keeps tails flat by
making three decisions *before* work is executed, all of which need
cheap online estimates:

* **shed** — a query whose deadline is provably unmeetable (already
  expired, or the execution-time EWMA says even the cheapest path cannot
  finish in time) fails fast with
  :class:`~repro.errors.DeadlineExceededError` instead of occupying an
  execution slot it cannot use;
* **degrade** — when the caller states a recall floor, a query that
  cannot meet its deadline at full precision drops to an int8/PQ
  prescreen-only scan (cheaper by the compression ratio) and the
  response is explicitly flagged ``degraded`` — never silently;
* **adapt** — the coalescer's gather window is sized from an EWMA of
  observed arrival gaps, so an idle service pays no batching latency
  while a loaded one batches aggressively.

Everything here is mechanism, not policy: the classes are small,
thread-safe, and independently testable.  :class:`QueryService` and
:class:`~repro.service.async_front.AsyncQueryService` wire them together.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..relational.table import Table

#: Priority of a submission that did not ask for one.  Higher wins.
DEFAULT_PRIORITY = 0


class EWMA:
    """Exponentially weighted moving average with a sample counter.

    ``alpha`` is the weight of each new observation; the first
    observation seeds the average directly.  Thread-safety is the
    caller's job (the trackers below hold their own locks).
    """

    __slots__ = ("alpha", "value", "n")

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value: float | None = None
        self.n = 0

    def update(self, sample: float) -> float:
        sample = float(sample)
        self.value = (
            sample
            if self.value is None
            else self.value + self.alpha * (sample - self.value)
        )
        self.n += 1
        return self.value


class ExecTimeTracker:
    """Per-mode EWMA of observed execution seconds (queue wait excluded).

    Feeds the shed/degrade decision: ``estimate(mode)`` returns the
    safety-padded expected execution time, or ``None`` until at least
    ``min_samples`` observations exist — a cold tracker never sheds, so
    the first queries of a fresh service always run and seed it.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.2,
        safety: float = 1.5,
        min_samples: int = 5,
    ) -> None:
        self.safety = max(1.0, float(safety))
        self.min_samples = max(1, int(min_samples))
        self._ewmas: dict[str, EWMA] = {}
        self._alpha = alpha
        self._lock = threading.Lock()

    def observe(self, mode: str, seconds: float) -> None:
        """Record one completed execution of ``mode`` ("full"/"degraded")."""
        with self._lock:
            ewma = self._ewmas.get(mode)
            if ewma is None:
                ewma = self._ewmas[mode] = EWMA(self._alpha)
            ewma.update(max(0.0, seconds))

    def estimate(self, mode: str) -> float | None:
        """Safety-padded expected seconds for ``mode``, if warmed up."""
        with self._lock:
            ewma = self._ewmas.get(mode)
            if ewma is None or ewma.n < self.min_samples or ewma.value is None:
                return None
            return ewma.value * self.safety

    def snapshot(self) -> dict:
        with self._lock:
            return {
                mode: {"ewma_s": e.value, "n": e.n}
                for mode, e in self._ewmas.items()
            }


class ArrivalRateEstimator:
    """EWMA of inter-arrival gaps, for adaptive coalesce windows.

    ``window(target_extra, max_s, min_s)`` answers: "how long should a
    shared-scan group leader hold the group open to gather roughly
    ``target_extra`` more concurrent queries?"  Under heavy traffic the
    gap shrinks and so does the window (less added latency, same batch
    size); under light traffic the window collapses toward ``min_s``
    because the leader's companion early-exit (the in-flight probe) ends
    the wait anyway.
    """

    def __init__(self, alpha: float = 0.2) -> None:
        self._gap = EWMA(alpha)
        self._last: float | None = None
        self._lock = threading.Lock()

    def observe(self, now: float | None = None) -> None:
        """Record one arrival (call on every submission)."""
        now = time.perf_counter() if now is None else now
        with self._lock:
            if self._last is not None:
                self._gap.update(max(0.0, now - self._last))
            self._last = now

    def mean_gap(self) -> float | None:
        """EWMA of seconds between arrivals (``None`` before 2 arrivals)."""
        with self._lock:
            return self._gap.value

    def window(
        self, target_extra: int, max_s: float, min_s: float = 0.0
    ) -> float:
        """Gather window sized to absorb ``target_extra`` more arrivals."""
        gap = self.mean_gap()
        if gap is None:
            return max_s
        return min(max_s, max(min_s, gap * max(1, target_extra)))


@dataclass
class QoSParams:
    """Per-query quality-of-service contract.

    Attributes:
        deadline: absolute ``time.perf_counter()`` deadline, or ``None``.
        priority: larger values are scheduled (and admitted) first.
        min_recall: recall floor under which the service may *degrade*
            the query to a quantized prescreen-only scan instead of
            shedding it when the deadline is tight.  ``None`` forbids
            degradation: the query either runs at full precision or is
            shed.
    """

    deadline: float | None = None
    priority: int = DEFAULT_PRIORITY
    min_recall: float | None = None

    @classmethod
    def from_relative(
        cls,
        deadline_s: float | None,
        *,
        priority: int = DEFAULT_PRIORITY,
        min_recall: float | None = None,
        now: float | None = None,
    ) -> "QoSParams":
        """Build params from a deadline *relative to now* (seconds)."""
        now = time.perf_counter() if now is None else now
        deadline = None if deadline_s is None else now + float(deadline_s)
        return cls(deadline=deadline, priority=priority, min_recall=min_recall)

    def remaining(self, now: float | None = None) -> float | None:
        """Seconds until the deadline (negative if passed); None if unset."""
        if self.deadline is None:
            return None
        now = time.perf_counter() if now is None else now
        return self.deadline - now


@dataclass
class QueryResponse:
    """A service result plus the QoS metadata callers must see.

    ``table`` is the materialized result.  ``degraded`` is the explicit
    flag the exactness contract requires: ``False`` means the result is
    bit-identical to serial fp32 execution; ``True`` means the query ran
    on the quantized prescreen-only path under its stated recall floor
    (``precision`` says which codec).  Degraded responses are never
    cached and never silent.
    """

    table: Table
    degraded: bool = False
    precision: str = "fp32"
    latency_s: float = 0.0
    #: ``None`` when the query carried no deadline; otherwise whether the
    #: result was produced before it (a late result is still returned —
    #: shedding only happens *before* execution starts).
    deadline_met: bool | None = None
    cache_hit: bool = False
    #: Service-assigned id (``q<seq>``); set on every submission.
    query_id: str | None = None
    #: The query's :class:`~repro.obs.trace.Trace` when it was sampled
    #: (or forced via ``explain_analyze=True``); ``None`` otherwise.
    trace: object | None = None
    #: Rendered EXPLAIN ANALYZE tree; only set for ``explain_analyze=True``.
    explain: str | None = None


@dataclass
class QoSStats:
    """Counters for the deadline/priority/degradation machinery."""

    #: Submissions that carried a deadline.
    with_deadline: int = 0
    #: Shed because the deadline had already expired (at submission or
    #: while queued in the async front / admission queue).
    shed_expired: int = 0
    #: Shed because the execution-time estimate proved the deadline
    #: unmeetable even by the cheapest allowed path.
    shed_unmeetable: int = 0
    #: Queries executed on the degraded (quantized prescreen-only) path.
    degraded: int = 0
    #: Queries that completed before their deadline.
    deadline_met: int = 0
    #: Queries that completed after their deadline (late, not shed).
    deadline_missed: int = 0

    def snapshot(self) -> dict:
        return {
            "with_deadline": self.with_deadline,
            "shed_expired": self.shed_expired,
            "shed_unmeetable": self.shed_unmeetable,
            "degraded": self.degraded,
            "deadline_met": self.deadline_met,
            "deadline_missed": self.deadline_missed,
        }


def _mix(h: int, salt: int) -> int:
    """Cheap 32-bit integer mix (xorshift-multiply)."""
    x = (h ^ salt) & 0xFFFFFFFF
    x = (x * 0x9E3779B1) & 0xFFFFFFFF
    x ^= x >> 15
    x = (x * 0x85EBCA6B) & 0xFFFFFFFF
    x ^= x >> 13
    return x


class FrequencySketch:
    """Count-min sketch with periodic halving — TinyLFU's frequency memory.

    Estimates how often a key has been *asked for* recently, in O(depth)
    per record/estimate and a fixed few KiB of memory.  After
    ``sample_multiple * width`` recordings every counter halves, so stale
    popularity decays and the sketch tracks the current workload.

    Used by :class:`~repro.service.semantic_cache.SemanticResultCache`
    for cost-aware admission: a new entry only displaces the LRU victim
    when ``frequency * cost`` says it is worth more.
    """

    def __init__(
        self, width: int = 2048, depth: int = 4, sample_multiple: int = 8
    ) -> None:
        if width < 2 or depth < 1:
            raise ValueError("width must be >= 2 and depth >= 1")
        w = 1
        while w < width:
            w <<= 1
        self._table = np.zeros((depth, w), dtype=np.uint32)
        self._mask = w - 1
        self._salts = [
            _mix(0xB5297A4D * (i + 1), 0x68E31DA4) for i in range(depth)
        ]
        self._ops = 0
        self._sample = max(1, sample_multiple) * w
        self._lock = threading.Lock()

    @staticmethod
    def key_hash(key) -> int:
        """Stable-within-process 32-bit hash of any hashable key."""
        return hash(key) & 0xFFFFFFFF

    def record(self, h: int) -> None:
        """Count one access of the key hashed to ``h``."""
        with self._lock:
            for i, salt in enumerate(self._salts):
                self._table[i, _mix(h, salt) & self._mask] += 1
            self._ops += 1
            if self._ops >= self._sample:
                self._table >>= 1
                self._ops //= 2

    def estimate(self, h: int) -> int:
        """Approximate recent access count of the key hashed to ``h``."""
        with self._lock:
            return int(
                min(
                    self._table[i, _mix(h, salt) & self._mask]
                    for i, salt in enumerate(self._salts)
                )
            )
